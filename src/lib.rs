//! # population-protocols
//!
//! A production-quality Rust reproduction of
//! *"Logarithmic Expected-Time Leader Election in Population Protocol Model"*
//! (Sudo, Ooshita, Izumi, Kakugawa, Masuzawa; PODC 2019 / arXiv:1812.11309).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's contribution: the [`core::Pll`] protocol
//!   (O(log n) expected parallel time, O(log n) states) and its symmetric
//!   variant [`core::SymPll`] with totally independent fair coin flips.
//! * [`engine`] — the population-protocol model: protocols, schedulers, the
//!   per-agent and exact count-based simulation engines, and one-way
//!   epidemics.
//! * [`protocols`] — baseline protocols (\[Ang+06\] fratricide, an
//!   \[MST18\]-like unbounded lottery).
//! * [`verify`] — exhaustive model checking for small populations.
//! * [`stats`] — statistics, fits, and table rendering for experiments.
//! * [`sim`] — the experiment harness that regenerates every table and key
//!   lemma of the paper.
//! * [`rand`] — the deterministic PRNG substrate.
//!
//! # Quickstart
//!
//! Elect a leader among 10,000 agents in expected `O(log n)` parallel time:
//!
//! ```
//! use population_protocols::core::Pll;
//! use population_protocols::engine::{Simulation, UniformScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 10_000;
//! let protocol = Pll::for_population(n)?;
//! let scheduler = UniformScheduler::seed_from_u64(0xC0FFEE);
//! let mut sim = Simulation::new(protocol, n, scheduler)?;
//!
//! let outcome = sim.run_until_single_leader(200_000_000);
//! assert!(outcome.converged);
//! println!(
//!     "stabilized after {:.1} parallel time units",
//!     outcome.parallel_time(n)
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pp_core as core;
pub use pp_engine as engine;
pub use pp_protocols as protocols;
pub use pp_rand as rand;
pub use pp_sim as sim;
pub use pp_stats as stats;
pub use pp_verify as verify;
