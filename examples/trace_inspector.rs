//! Trace inspector: a narrated small-population run of `P_LL`, showing the
//! three-phase competition (QuickElimination → Tournament → BackUp), the
//! color clock, and the leader count collapsing to one.
//!
//! ```text
//! cargo run --release --example trace_inspector
//! ```

use population_protocols::core::{Pll, Status};
use population_protocols::engine::{Simulation, UniformScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let pll = Pll::for_population(n)?;
    let params = *pll.params();
    println!(
        "P_LL on n = {n}: m = {}, epochs change every ~{} parallel time (c_max/2)",
        params.m(),
        params.cmax() / 2
    );
    let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(2024))?;

    println!(
        "{:>10} {:>6} {:>8} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "steps", "par.t", "leaders", "X", "B", "epochs", "colors", "maxLvlQ"
    );
    let mut last_leaders = usize::MAX;
    let mut stabilized_at = None;
    for _ in 0..400 {
        sim.run((n / 2) as u64);
        let states = sim.states();
        let leaders = sim.leader_count();
        let pristine = states.iter().filter(|s| s.status == Status::X).count();
        let timers = states.iter().filter(|s| s.is_b()).count();
        let min_epoch = states.iter().map(|s| s.epoch).min().unwrap_or(0);
        let max_epoch = states.iter().map(|s| s.epoch).max().unwrap_or(0);
        let mut colors: Vec<u8> = states.iter().map(|s| s.color).collect();
        colors.sort_unstable();
        colors.dedup();
        let max_lq = states.iter().filter_map(|s| s.level_q()).max();
        if leaders != last_leaders || sim.steps() % (10 * n as u64) == 0 {
            println!(
                "{:>10} {:>6.1} {:>8} {:>7} {:>7} {:>8} {:>8} {:>8}",
                sim.steps(),
                sim.parallel_time(),
                leaders,
                pristine,
                timers,
                format!("{min_epoch}-{max_epoch}"),
                format!("{colors:?}"),
                max_lq.map_or("—".to_string(), |l| l.to_string()),
            );
            last_leaders = leaders;
        }
        if leaders == 1 && stabilized_at.is_none() {
            stabilized_at = Some(sim.parallel_time());
            break;
        }
    }
    match stabilized_at {
        Some(t) => println!("\nunique leader after {t:.1} parallel time units"),
        None => println!("\nstill racing — increase the step budget to watch the finish"),
    }
    Ok(())
}
