//! Election race: the Table 1 trade-off live — constant-space fratricide
//! (`Θ(n)` time), the unbounded lottery (`O(log n)` time, `O(n)` states),
//! and `P_LL` (`O(log n)` time, `O(log n)` states) across population sizes.
//!
//! ```text
//! cargo run --release --example election_race
//! ```

use population_protocols::core::Pll;
use population_protocols::engine::{LeaderElection, Simulation, UniformScheduler};
use population_protocols::protocols::{Fratricide, UnboundedLottery};
use population_protocols::rand::SeedSequence;
use population_protocols::stats::{Summary, Table};

fn race<P: LeaderElection>(make: impl Fn() -> P, n: usize, seeds: u64, master: u64) -> Summary {
    let seq = SeedSequence::new(master);
    (0..seeds)
        .map(|i| {
            let mut sim =
                Simulation::new(make(), n, UniformScheduler::seed_from_u64(seq.seed_at(i)))
                    .expect("n >= 2");
            sim.run_until_single_leader(u64::MAX).parallel_time(n)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = 10;
    let mut table = Table::new([
        "n",
        "Fratricide (par. time)",
        "UnboundedLottery (par. time)",
        "P_LL (par. time)",
    ]);
    for n in [256usize, 1024, 4096] {
        let frat = race(|| Fratricide, n, seeds, 1);
        let lottery = race(|| UnboundedLottery, n, seeds, 2);
        let pll = race(|| Pll::for_population(n).expect("n >= 2"), n, seeds, 3);
        table.push_row([
            n.to_string(),
            format!("{:.1} ± {:.1}", frat.mean(), frat.ci95()),
            format!("{:.1} ± {:.1}", lottery.mean(), lottery.ci95()),
            format!("{:.1} ± {:.1}", pll.mean(), pll.ci95()),
        ]);
        println!("n = {n} done");
    }
    println!();
    println!("{table}");
    println!("Fratricide grows linearly in n; the other two grow with lg n (Table 1's shape).");
    Ok(())
}
