//! Quickstart: elect a leader among 100,000 anonymous agents in `O(log n)`
//! expected parallel time with the paper's `P_LL` protocol.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use population_protocols::core::Pll;
use population_protocols::engine::{Simulation, UniformScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100_000;

    // P_LL needs a rough size knowledge m >= log2(n); `for_population`
    // derives the canonical m = ceil(log2 n).
    let protocol = Pll::for_population(n)?;
    println!(
        "protocol: {} agents, m = {}, l_max = {}, c_max = {}, Φ = {}",
        n,
        protocol.params().m(),
        protocol.params().lmax(),
        protocol.params().cmax(),
        protocol.params().phi(),
    );

    let scheduler = UniformScheduler::seed_from_u64(0xC0FFEE);
    let mut sim = Simulation::new(protocol, n, scheduler)?;

    let outcome = sim.run_until_single_leader(u64::MAX);
    println!(
        "stabilized: unique leader after {} interactions = {:.1} parallel time units \
         (≈ {:.1} × lg n)",
        outcome.steps,
        outcome.parallel_time(n),
        outcome.parallel_time(n) / (n as f64).log2(),
    );

    // Stabilization is permanent: the leader count never changes again.
    sim.run(1_000_000);
    assert_eq!(sim.leader_count(), 1);
    println!("still exactly one leader after 1,000,000 further interactions");
    Ok(())
}
