//! One-way epidemics (Lemma 2): watch an infection curve, compare the
//! completion tail against the paper's closed-form bound, and check the
//! protocol-level view (max propagation) agrees with the process-level view.
//!
//! ```text
//! cargo run --release --example epidemic_spread
//! ```

use population_protocols::engine::epidemic::{lemma2_horizon, Epidemic};
use population_protocols::engine::{Simulation, UniformScheduler};
use population_protocols::protocols::MaxValue;
use population_protocols::rand::{SeedSequence, Xoshiro256PlusPlus};
use population_protocols::stats::theory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10_000;

    // 1. One infection curve, printed as a sparkline of deciles.
    let mut ep = Epidemic::whole_population(n, 0)?;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
    let curve = ep.run_with_curve(&mut rng, u64::MAX).expect("completes");
    println!("epidemic over n = {n}: completed in {} steps", ep.steps());
    println!("decile crossing times (parallel):");
    for decile in 1..=10 {
        let target = n * decile / 10;
        let step = curve
            .iter()
            .find(|&&(_, count)| count >= target)
            .map(|&(s, _)| s)
            .expect("curve reaches n");
        println!("  {:>3}%: {:>8.2}", decile * 10, step as f64 / n as f64);
    }
    println!("(logistic shape: slow start, fast middle, slow finish)");
    println!();

    // 2. Empirical tail vs the Lemma 2 bound at t = (ln n + 2)·n.
    let t = ((n as f64).ln() + 2.0) * n as f64;
    let horizon = lemma2_horizon(n, n, t as u64);
    let trials = 200;
    let seq = SeedSequence::new(99);
    let mut failures = 0;
    for i in 0..trials {
        let mut ep = Epidemic::whole_population(n, 0)?;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seq.seed_at(i));
        if ep.run_to_completion(&mut rng, horizon).is_err() {
            failures += 1;
        }
    }
    println!(
        "Lemma 2 @ horizon {horizon}: empirical P[unfinished] = {:.4}, bound n·e^(−t/n) = {:.4}",
        failures as f64 / trials as f64,
        theory::epidemic_tail_bound(n as u64, t),
    );
    println!();

    // 3. The protocol view: max propagation is the same process.
    let mut states = vec![0u32; n];
    states[0] = 1;
    let mut sim = Simulation::from_states(MaxValue, states, UniformScheduler::seed_from_u64(3))?;
    let outcome = sim.run_until(64, u64::MAX, |sim| sim.states().iter().all(|&v| v == 1));
    println!(
        "MaxValue protocol spread the value to everyone in {:.2} parallel time \
         (same Markov chain as the epidemic above)",
        outcome.parallel_time(n)
    );
    Ok(())
}
