//! Exact vs. Monte-Carlo expected stabilization times.
//!
//! For small populations the configuration space is enumerable and the
//! *exact* expected stabilization time can be solved from the Markov chain —
//! ground truth for validating both the simulator and closed forms.
//!
//! ```text
//! cargo run --release --example exact_expectations
//! ```

use population_protocols::engine::{Simulation, UniformScheduler};
use population_protocols::protocols::{BoundedLottery, Fratricide};
use population_protocols::rand::SeedSequence;
use population_protocols::stats::Table;
use population_protocols::verify::MarkovChain;

fn monte_carlo<P>(protocol_for: impl Fn() -> P, n: usize, runs: u64) -> f64
where
    P: population_protocols::engine::LeaderElection,
{
    let seq = SeedSequence::new(5);
    let mut total = 0u64;
    for i in 0..runs {
        let mut sim = Simulation::new(
            protocol_for(),
            n,
            UniformScheduler::seed_from_u64(seq.seed_at(i)),
        )
        .expect("n >= 2");
        total += sim.run_until_single_leader(u64::MAX).steps;
    }
    total as f64 / runs as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs = 20_000;
    let mut table = Table::new([
        "protocol",
        "n",
        "exact E[steps] (chain solve)",
        "closed form",
        "Monte Carlo (20k runs)",
    ]);

    for n in [3usize, 5, 7] {
        let chain = MarkovChain::build(&Fratricide, n, 100_000)?;
        let exact = chain.expected_steps_to(|c| c.iter().filter(|&&l| l).count() == 1)?;
        table.push_row([
            "Fratricide".to_string(),
            n.to_string(),
            format!("{exact:.4}"),
            format!("{:.4} = (n−1)²", Fratricide::expected_steps(n)),
            format!("{:.2}", monte_carlo(|| Fratricide, n, runs)),
        ]);
    }

    for n in [3usize, 4] {
        let p = BoundedLottery::new(4);
        let chain = MarkovChain::build(&p, n, 500_000)?;
        let exact = chain.expected_steps_to(|c| c.iter().filter(|s| s.leader).count() == 1)?;
        table.push_row([
            "BoundedLottery(l_max=4)".to_string(),
            n.to_string(),
            format!("{exact:.4}"),
            "—".to_string(),
            format!("{:.2}", monte_carlo(|| BoundedLottery::new(4), n, runs)),
        ]);
    }

    println!("{table}");
    println!(
        "The chain solve agrees with the closed form to 1e-6 and with Monte Carlo to \
         sampling noise — the simulator, the verifier, and the theory describe one process."
    );
    Ok(())
}
