//! Section 4's symmetric machinery: run the symmetric `P_LL`, watch the
//! `#F0 = #F1` fairness invariant hold at every checkpoint, and compare the
//! stabilization cost against the asymmetric protocol.
//!
//! ```text
//! cargo run --release --example symmetric_coins
//! ```

use population_protocols::core::{Coin, Pll, SymPll};
use population_protocols::engine::{Simulation, UniformScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5_000;

    // Symmetric run with coin-pool accounting.
    let sym = SymPll::for_population(n)?;
    let mut sim = Simulation::new(sym, n, UniformScheduler::seed_from_u64(4))?;
    println!("symmetric P_LL on n = {n}: sampling coin pools every n/2 interactions");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>9}",
        "steps", "#F0", "#F1", "#J/#K", "leaders"
    );
    let mut checkpoints = 0;
    while sim.leader_count() > 1 {
        sim.run((n / 2) as u64);
        checkpoints += 1;
        let f0 = sim
            .states()
            .iter()
            .filter(|s| s.coin() == Some(Coin::F0))
            .count();
        let f1 = sim
            .states()
            .iter()
            .filter(|s| s.coin() == Some(Coin::F1))
            .count();
        let charging = sim
            .states()
            .iter()
            .filter(|s| matches!(s.coin(), Some(Coin::J) | Some(Coin::K)))
            .count();
        assert_eq!(f0, f1, "the fairness invariant #F0 = #F1 must never break");
        if checkpoints % 8 == 1 {
            println!(
                "{:>10} {:>8} {:>8} {:>8} {:>9}",
                sim.steps(),
                f0,
                f1,
                charging,
                sim.leader_count()
            );
        }
    }
    let sym_time = sim.parallel_time();
    println!(
        "symmetric stabilized at {sym_time:.1} parallel time; invariant held at every checkpoint"
    );
    println!();

    // Asymmetric comparison on the same population size.
    let mut asym = Simulation::new(
        Pll::for_population(n)?,
        n,
        UniformScheduler::seed_from_u64(4),
    )?;
    let outcome = asym.run_until_single_leader(u64::MAX);
    println!(
        "asymmetric P_LL stabilized at {:.1} parallel time → symmetric overhead ≈ {:.2}×",
        outcome.parallel_time(n),
        sym_time / outcome.parallel_time(n)
    );
    Ok(())
}
