#!/usr/bin/env python3
"""Validates the observability outputs of the experiments CLI.

Usage:
    python3 tools/check_obs.py METRICS_JSON EVENTS_JSONL [TRAJECTORY_CSV]

Checks, in order:

* the metrics report parses, declares the ``pp-sim-metrics/v1`` schema,
  embeds an engine block declaring ``pp-engine-metrics/v1``, and the
  engine's per-tier interaction usage sums exactly to its step count;
* the event log is non-empty, every line parses as a JSON object with an
  ``event`` kind and a ``step``, steps never decrease, and only known
  event kinds appear;
* when a trajectory CSV is given, its final row agrees with the metrics
  report's trajectory summary (same step count, same leader count), the
  leader column starts at ``n`` and the cumulative demotion total ends at
  ``n - 1`` on a converged run — the conservation law of leader election.

Exits non-zero with a message on the first violation (used by the CI
observability smoke job).
"""

import csv
import json
import sys

KNOWN_EVENTS = {
    "tier_transition",
    "jump_engage",
    "jump_disengage",
    "batch_engage",
    "batch_exit",
    "batch_episode",
    "compaction",
    "snapshot",
    "resumed",
    "lane_retired",
    "lane_spilled",
}


def fail(msg):
    sys.exit(f"check_obs: {msg}")


def check_metrics(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "pp-sim-metrics/v1":
        fail(f"{path}: unexpected report schema {report.get('schema')!r}")
    engine = report.get("engine")
    if not isinstance(engine, dict):
        fail(f"{path}: missing engine metrics block")
    if engine.get("schema") != "pp-engine-metrics/v1":
        fail(f"{path}: unexpected engine schema {engine.get('schema')!r}")
    for key in ("population", "steps", "tier_usage", "jump", "batch"):
        if key not in engine:
            fail(f"{path}: engine metrics missing {key!r}")
    usage = engine["tier_usage"]
    total = sum(usage[t] for t in ("reference", "compiled", "jump", "batch"))
    if total != engine["steps"]:
        fail(
            f"{path}: tier usage sums to {total}, "
            f"but the engine reports {engine['steps']} steps"
        )
    print(
        f"metrics ok: n={engine['population']}, {engine['steps']} steps, "
        f"tier usage {usage}"
    )
    return report


def check_events(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: event log is empty")
    last_step = 0
    kinds = {}
    for i, line in enumerate(lines, 1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: not valid JSON ({e})")
        if not isinstance(event, dict):
            fail(f"{path}:{i}: not a JSON object")
        kind = event.get("event")
        if kind not in KNOWN_EVENTS:
            fail(f"{path}:{i}: unknown event kind {kind!r}")
        step = event.get("step")
        if not isinstance(step, int) or step < 0:
            fail(f"{path}:{i}: bad step {step!r}")
        if step < last_step:
            fail(f"{path}:{i}: step {step} after step {last_step}")
        last_step = step
        kinds[kind] = kinds.get(kind, 0) + 1
    print(f"events ok: {len(lines)} events, kinds {kinds}")


def check_trajectory(path, report):
    summary = report.get("trajectory")
    if not isinstance(summary, dict):
        fail(f"{path}: metrics report has no trajectory summary to compare")
    with open(path) as f:
        rows = list(csv.DictReader(f))
    if not rows:
        fail(f"{path}: trajectory CSV has no data rows")
    for col in ("step", "leaders", "demotions_total"):
        if col not in rows[0]:
            fail(f"{path}: missing column {col!r}")
    if len(rows) != summary["rows"]:
        fail(
            f"{path}: {len(rows)} rows, but the metrics report "
            f"counts {summary['rows']}"
        )
    n = summary["n"]
    first, final = rows[0], rows[-1]
    if int(first["step"]) != 0 or int(float(first["leaders"])) != n:
        fail(f"{path}: first row must sample step 0 with {n} leaders")
    if int(final["step"]) != summary["steps"]:
        fail(
            f"{path}: final row at step {final['step']}, but the run "
            f"reports stabilization at step {summary['steps']}"
        )
    leaders = int(float(final["leaders"]))
    if leaders != summary["final_leaders"]:
        fail(
            f"{path}: final row has {leaders} leaders, but the run "
            f"reports {summary['final_leaders']}"
        )
    demoted = int(float(final["demotions_total"]))
    if summary["converged"]:
        if leaders != 1:
            fail(f"{path}: converged run must end with 1 leader, got {leaders}")
        if demoted != n - 1:
            fail(
                f"{path}: conservation violated — {demoted} demotions "
                f"attributed, expected n - 1 = {n - 1}"
            )
    print(
        f"trajectory ok: {len(rows)} rows, final step {final['step']}, "
        f"{leaders} leader(s), {demoted} demotions attributed"
    )


def main(argv):
    if len(argv) not in (3, 4):
        fail(f"usage: {argv[0]} METRICS_JSON EVENTS_JSONL [TRAJECTORY_CSV]")
    report = check_metrics(argv[1])
    check_events(argv[2])
    if len(argv) == 4:
        check_trajectory(argv[3], report)
    print("all observability checks passed")


if __name__ == "__main__":
    main(sys.argv)
