//! The constant-space leader election of Angluin et al. \[Ang+06\].

use pp_engine::{LeaderElection, Protocol, Role};

/// `L × L → L × F`: when two leaders meet, the responder yields.
///
/// Everyone starts as a leader; the expected number of interactions to get
/// from `k` to `k−1` leaders is `n(n−1) / (k(k−1))`, so the expected total is
/// `Σ_{k=2}^{n} n(n−1)/(k(k−1)) = n(n−1)(1 − 1/n) ≈ n²`, i.e. `Θ(n)`
/// parallel time — optimal for constant-space protocols by Doty &
/// Soloveichik \[DS18\] (Table 2, row 1).
///
/// # Example
///
/// ```
/// use pp_engine::{Simulation, UniformScheduler};
/// use pp_protocols::Fratricide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = Simulation::new(Fratricide, 100, UniformScheduler::seed_from_u64(4))?;
/// assert!(sim.run_until_single_leader(10_000_000).converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fratricide;

impl Fratricide {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self
    }

    /// Closed-form expected number of interactions to stabilize from the
    /// all-leader configuration of `n` agents.
    pub fn expected_steps(n: usize) -> f64 {
        let nf = n as f64;
        (2..=n as u64)
            .map(|k| nf * (nf - 1.0) / (k as f64 * (k as f64 - 1.0)))
            .sum()
    }
}

impl Protocol for Fratricide {
    type State = bool;
    type Output = Role;

    fn initial_state(&self) -> bool {
        true
    }

    fn transition(&self, initiator: &bool, responder: &bool) -> (bool, bool) {
        if *initiator && *responder {
            (true, false)
        } else {
            (*initiator, *responder)
        }
    }

    fn output(&self, state: &bool) -> Role {
        if *state {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn name(&self) -> String {
        "Fratricide[Ang+06]".to_string()
    }
}

impl LeaderElection for Fratricide {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{Simulation, UniformScheduler};
    use pp_rand::SeedSequence;

    #[test]
    fn rules_are_exactly_fratricide() {
        let p = Fratricide::new();
        assert_eq!(p.transition(&true, &true), (true, false));
        assert_eq!(p.transition(&true, &false), (true, false));
        assert_eq!(p.transition(&false, &true), (false, true));
        assert_eq!(p.transition(&false, &false), (false, false));
    }

    #[test]
    fn expected_steps_closed_form() {
        // n = 2: one meeting of the only pair: n(n-1)/2·1... k=2 term only:
        // 2·1/(2·1) = 1.
        assert!((Fratricide::expected_steps(2) - 1.0).abs() < 1e-12);
        // Telescoping: sum = n(n-1)(1 - 1/n) = (n-1)^2.
        for n in [3usize, 10, 100] {
            let expect = ((n - 1) * (n - 1)) as f64;
            assert!(
                (Fratricide::expected_steps(n) - expect).abs() < 1e-6,
                "n={n}"
            );
        }
    }

    #[test]
    fn empirical_mean_matches_closed_form() {
        let n = 50;
        let seeds = SeedSequence::new(8);
        let runs = 60;
        let mut total = 0u64;
        for i in 0..runs {
            let mut sim = Simulation::new(
                Fratricide,
                n,
                UniformScheduler::seed_from_u64(seeds.seed_at(i)),
            )
            .unwrap();
            total += sim.run_until_single_leader(u64::MAX).steps;
        }
        let mean = total as f64 / runs as f64;
        let theory = Fratricide::expected_steps(n);
        assert!(
            (mean / theory - 1.0).abs() < 0.2,
            "mean {mean} vs theory {theory}"
        );
    }

    #[test]
    fn linear_parallel_time_shape() {
        // Doubling n should roughly double parallel stabilization time.
        let seeds = SeedSequence::new(9);
        let mean = |n: usize| {
            let mut total = 0.0;
            for i in 0..20 {
                let mut sim = Simulation::new(
                    Fratricide,
                    n,
                    UniformScheduler::seed_from_u64(seeds.seed_at(i + n as u64)),
                )
                .unwrap();
                total += sim.run_until_single_leader(u64::MAX).parallel_time(n);
            }
            total / 20.0
        };
        let r = mean(128) / mean(64);
        assert!(r > 1.5 && r < 2.6, "ratio {r} not linear-ish");
    }
}
