//! An \[Ali+17\]-like bounded lottery: the standalone ancestor of `P_LL`'s
//! `QuickElimination()` module.

use pp_engine::{LeaderElection, Protocol, Role};

/// The state of one [`BoundedLottery`] agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoundedLotteryState {
    /// Whether the agent still outputs `L`.
    pub leader: bool,
    /// Lottery level, capped at the protocol's `l_max`.
    pub level: u32,
    /// Whether the level phase has finished (first tail seen).
    pub done: bool,
}

/// Snapshot codec: fields in declaration order, fixed-width little-endian.
impl pp_engine::SnapshotState for BoundedLotteryState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.leader.encode(out);
        self.level.encode(out);
        self.done.encode(out);
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some(Self {
            leader: bool::decode(bytes)?,
            level: u32::decode(bytes)?,
            done: bool::decode(bytes)?,
        })
    }
}

/// A bounded-level lottery election, the idea the paper credits to the
/// lottery protocol of \[Ali+17\] (§3.1.1) — implemented standalone:
///
/// * every agent counts initiator roles as heads until its first responder
///   role (tail), capping the level at `l_max = 5·m`;
/// * the maximum level spreads by one-way epidemic (followers carry) and
///   demotes smaller-level leaders;
/// * leaders with equal levels fall back to the simple election (responder
///   yields).
///
/// State space: `2 × 2 × (l_max + 1) = O(log n)` — between Fratricide's
/// `O(1)` and the unbounded lottery's `O(n)`. Expected time: the lottery
/// phase takes `O(log n)` parallel time, but ties (constant probability)
/// must be broken by pairwise meetings, so the tail costs `Θ(n)` — this is
/// precisely the gap `P_LL`'s `Tournament()` and `BackUp()` modules close,
/// and the comparison experiment makes it visible.
///
/// # Example
///
/// ```
/// use pp_engine::{Simulation, UniformScheduler};
/// use pp_protocols::BoundedLottery;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = BoundedLottery::for_population(500)?;
/// let mut sim = Simulation::new(p, 500, UniformScheduler::seed_from_u64(3))?;
/// assert!(sim.run_until_single_leader(u64::MAX).converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedLottery {
    lmax: u32,
}

impl BoundedLottery {
    /// Creates the protocol with an explicit level cap.
    ///
    /// # Panics
    ///
    /// Panics if `lmax == 0`.
    pub fn new(lmax: u32) -> Self {
        assert!(lmax > 0, "level cap must be positive");
        Self { lmax }
    }

    /// Creates the protocol with the `P_LL`-style cap `l_max = 5·⌈lg n⌉`.
    ///
    /// # Errors
    ///
    /// Returns a message when `n < 2`.
    pub fn for_population(n: usize) -> Result<Self, String> {
        if n < 2 {
            return Err(format!("population of {n} agents is too small"));
        }
        let m = (n as f64).log2().ceil().max(1.0) as u32;
        Ok(Self::new(5 * m))
    }

    /// The level cap.
    pub fn lmax(&self) -> u32 {
        self.lmax
    }
}

impl Protocol for BoundedLottery {
    type State = BoundedLotteryState;
    type Output = Role;

    fn initial_state(&self) -> BoundedLotteryState {
        BoundedLotteryState {
            leader: true,
            level: 0,
            done: false,
        }
    }

    fn transition(
        &self,
        initiator: &BoundedLotteryState,
        responder: &BoundedLotteryState,
    ) -> (BoundedLotteryState, BoundedLotteryState) {
        let mut s = [*initiator, *responder];
        // Role coins: initiator counts a head, responder sees its first tail.
        if !s[0].done {
            s[0].level = (s[0].level + 1).min(self.lmax);
        }
        if !s[1].done {
            s[1].done = true;
        }
        // Max-level epidemic among finished agents; smaller level is demoted
        // and carries the maximum.
        if s[0].done && s[1].done {
            use std::cmp::Ordering;
            match s[0].level.cmp(&s[1].level) {
                Ordering::Less => {
                    s[0].leader = false;
                    s[0].level = s[1].level;
                }
                Ordering::Greater => {
                    s[1].leader = false;
                    s[1].level = s[0].level;
                }
                Ordering::Equal => {
                    // Simple-election fallback on ties.
                    if s[0].leader && s[1].leader {
                        s[1].leader = false;
                    }
                }
            }
        }
        (s[0], s[1])
    }

    fn output(&self, state: &BoundedLotteryState) -> Role {
        if state.leader {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn name(&self) -> String {
        format!("BoundedLottery[Ali+17-like](lmax={})", self.lmax)
    }
}

impl LeaderElection for BoundedLottery {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{CountSimulation, Simulation, UniformScheduler};
    use pp_rand::{SeedSequence, Xoshiro256PlusPlus};

    #[test]
    fn snapshot_codec_roundtrips() {
        use pp_engine::SnapshotState;
        let s = BoundedLotteryState {
            leader: false,
            level: 17,
            done: true,
        };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut cursor = &buf[..];
        assert_eq!(BoundedLotteryState::decode(&mut cursor), Some(s));
        assert!(cursor.is_empty());
        assert_eq!(BoundedLotteryState::decode(&mut &buf[..4]), None);
    }

    #[test]
    fn roles_drive_the_level_phase() {
        let p = BoundedLottery::new(10);
        let (a, b) = p.transition(&p.initial_state(), &p.initial_state());
        assert_eq!(a.level, 1);
        assert!(!a.done);
        assert!(b.done);
        assert_eq!(b.level, 0);
    }

    #[test]
    fn level_saturates() {
        let p = BoundedLottery::new(3);
        let mut l = p.initial_state();
        l.level = 3;
        let f = BoundedLotteryState {
            leader: false,
            level: 0,
            done: true,
        };
        let (nl, _) = p.transition(&l, &f);
        assert_eq!(nl.level, 3);
    }

    #[test]
    fn max_level_demotes_and_propagates() {
        let p = BoundedLottery::new(10);
        let lo = BoundedLotteryState {
            leader: true,
            level: 2,
            done: true,
        };
        let hi = BoundedLotteryState {
            leader: true,
            level: 7,
            done: true,
        };
        let (nlo, nhi) = p.transition(&lo, &hi);
        assert!(!nlo.leader);
        assert_eq!(nlo.level, 7);
        assert!(nhi.leader);
        // Followers carry.
        let f = BoundedLotteryState {
            leader: false,
            level: 9,
            done: true,
        };
        let (nl, _) = p.transition(&hi, &f);
        assert!(!nl.leader);
        assert_eq!(nl.level, 9);
    }

    #[test]
    fn equal_levels_fall_back_to_simple_election() {
        let p = BoundedLottery::new(10);
        let l = BoundedLotteryState {
            leader: true,
            level: 4,
            done: true,
        };
        let (a, b) = p.transition(&l, &l);
        assert!(a.leader);
        assert!(!b.leader);
    }

    #[test]
    fn stabilizes_and_is_monotone() {
        for n in [2usize, 3, 64, 512] {
            let p = BoundedLottery::for_population(n).expect("n >= 2");
            let mut sim =
                Simulation::new(p, n, UniformScheduler::seed_from_u64(n as u64)).expect("n >= 2");
            let mut last = sim.leader_count();
            let mut steps = 0u64;
            while sim.leader_count() > 1 {
                sim.step();
                steps += 1;
                let now = sim.leader_count();
                assert!(now <= last && now >= 1);
                last = now;
                assert!(steps < 500_000_000, "n={n} too slow");
            }
            sim.run(10_000);
            assert_eq!(sim.leader_count(), 1);
        }
    }

    #[test]
    fn state_space_stays_logarithmic() {
        let distinct = |n: usize| {
            let p = BoundedLottery::for_population(n).expect("n >= 2");
            let rng = Xoshiro256PlusPlus::seed_from_u64(4);
            let mut sim = CountSimulation::new(p, n, rng).expect("n >= 2");
            sim.run_until_single_leader(u64::MAX);
            sim.distinct_states_seen()
        };
        let small = distinct(256);
        let large = distinct(4096);
        // Bounded by 4·(lmax+1); growth reflects lmax = 5·lg n only.
        assert!(large < small * 3, "states {small} -> {large}");
        let cap = 4 * (BoundedLottery::for_population(4096).unwrap().lmax() + 1) as usize;
        assert!(large <= cap, "{large} > theoretical cap {cap}");
    }

    #[test]
    fn faster_than_fratricide_slower_than_pll_shape() {
        // The tie tail: mean time should sit clearly below Θ(n) but above a
        // pure O(log n) protocol at moderate n. Just check it beats
        // fratricide's closed form.
        let n = 256;
        let seeds = SeedSequence::new(5);
        let mut total = 0.0;
        for i in 0..10 {
            let p = BoundedLottery::for_population(n).expect("n >= 2");
            let mut sim = Simulation::new(p, n, UniformScheduler::seed_from_u64(seeds.seed_at(i)))
                .expect("n >= 2");
            total += sim.run_until_single_leader(u64::MAX).parallel_time(n);
        }
        let mean = total / 10.0;
        let frat = crate::Fratricide::expected_steps(n) / n as f64;
        assert!(mean < frat, "lottery {mean} should beat fratricide {frat}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        BoundedLottery::new(0);
    }

    #[test]
    fn tiny_population_rejected() {
        assert!(BoundedLottery::for_population(1).is_err());
    }
}
