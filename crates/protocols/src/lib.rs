//! Baseline population protocols for the paper's comparison experiments.
//!
//! The paper's Table 1 spans a trade-off space between per-agent states and
//! expected stabilization time. Re-implementing all seven competitor papers
//! faithfully is out of scope (see `DESIGN.md`); instead this crate provides
//! the two corners that frame `P_LL`, plus a reusable building block:
//!
//! * [`Fratricide`] — the classic constant-space protocol of \[Ang+06\]:
//!   `L × L → L × F`. Two states, `Θ(n)` expected parallel time (optimal for
//!   constant space by \[DS18\], the first row of Table 2).
//! * [`BoundedLottery`] — the \[Ali+17\]-like bounded lottery the paper's
//!   `QuickElimination()` is based on (§3.1.1), standalone: `O(log n)`
//!   states, fast lottery phase but a `Θ(n)` tie-breaking tail — precisely
//!   the gap `P_LL`'s remaining modules close.
//! * [`UnboundedLottery`] — an \[MST18\]-like protocol with an *unbounded*
//!   level lottery plus unbounded tie-break bits: `O(n)`-ish state usage,
//!   `O(log n)` expected parallel time (the `\[MST18\]` row of Table 1).
//! * [`MaxValue`] — one-way max propagation, the protocol form of the
//!   one-way epidemic of \[AAE08\] (Lemma 2's subject).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bounded_lottery;
mod fratricide;
mod lottery;
mod max_value;

pub use bounded_lottery::{BoundedLottery, BoundedLotteryState};
pub use fratricide::Fratricide;
pub use lottery::{LotteryState, UnboundedLottery};
pub use max_value::MaxValue;
