//! An \[MST18\]-like leader election: unbounded lottery levels plus unbounded
//! tie-break bits — `O(log n)` expected parallel time at the cost of a state
//! space that grows with the population (the `O(n)`-states row of Table 1).

use pp_engine::{LeaderElection, Protocol, Role};

/// The state of one [`UnboundedLottery`] agent.
///
/// The `(level, bits, nbits)` triple orders agents lexicographically: first
/// by lottery level, then by the common prefix of tie-break bits. Followers
/// freeze their triple and act as epidemic carriers of the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LotteryState {
    /// Whether the agent still outputs `L`.
    pub leader: bool,
    /// Geometric lottery level: initiator roles count heads until the first
    /// responder role (tail).
    pub level: u32,
    /// Whether the level phase has finished (first tail seen).
    pub level_done: bool,
    /// Tie-break bits accumulated most-significant-first.
    pub bits: u64,
    /// Number of valid tie-break bits (≤ 64).
    pub nbits: u8,
}

impl LotteryState {
    /// The initial state: a leader at level 0 that has not seen a tail.
    pub fn initial() -> Self {
        Self {
            leader: true,
            level: 0,
            level_done: false,
            bits: 0,
            nbits: 0,
        }
    }

    /// Compares the comparable information of two agents:
    /// `Some(Ordering)` on levels when they differ, otherwise on the common
    /// prefix of tie-break bits (`None` when the prefixes agree).
    fn compare(&self, other: &Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        match self.level.cmp(&other.level) {
            Ordering::Equal => {}
            ord => return Some(ord),
        }
        let k = self.nbits.min(other.nbits);
        if k == 0 {
            return None;
        }
        let a = self.bits >> (self.nbits - k);
        let b = other.bits >> (other.nbits - k);
        match a.cmp(&b) {
            Ordering::Equal => None,
            ord => Some(ord),
        }
    }

    fn adopt(&mut self, winner: &Self) {
        self.level = winner.level;
        self.bits = winner.bits;
        self.nbits = winner.nbits;
        self.level_done = true;
        self.leader = false;
    }
}

impl Default for LotteryState {
    fn default() -> Self {
        Self::initial()
    }
}

/// Snapshot codec: fields in declaration order, fixed-width little-endian.
/// Decoding rejects `nbits > 64`, which no reachable state produces.
impl pp_engine::SnapshotState for LotteryState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.leader.encode(out);
        self.level.encode(out);
        self.level_done.encode(out);
        self.bits.encode(out);
        self.nbits.encode(out);
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let state = Self {
            leader: bool::decode(bytes)?,
            level: u32::decode(bytes)?,
            level_done: bool::decode(bytes)?,
            bits: u64::decode(bytes)?,
            nbits: u8::decode(bytes)?,
        };
        (state.nbits <= 64).then_some(state)
    }
}

/// An \[MST18\]-like leader election protocol.
///
/// Every agent plays the geometric lottery with *role coins*: at each
/// interaction, participating as initiator counts a head (`level += 1`),
/// participating as responder is the first tail and freezes the level. After
/// that, agents that are still leaders keep appending tie-break bits
/// (initiator = 0, responder = 1, up to 64); the lexicographic maximum
/// `(level, bit-prefix)` propagates through the population by one-way
/// epidemic, demoting every leader that sees a strictly larger value.
///
/// Differences from `P_LL` that this baseline makes visible:
///
/// * **no size knowledge** is needed, but
/// * the state space is unbounded (levels and 64-bit strings), i.e. `O(n)`
///   distinct states in practice — this is what Table 1 reports for
///   \[MST18\]; and
/// * role coins are anticorrelated within an interaction (the "naive"
///   simulation the paper points out in §3.1.1), which is fine for a
///   baseline but would invalidate `P_LL`'s exact survivor-count analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnboundedLottery;

impl UnboundedLottery {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for UnboundedLottery {
    type State = LotteryState;
    type Output = Role;

    fn initial_state(&self) -> LotteryState {
        LotteryState::initial()
    }

    fn transition(
        &self,
        initiator: &LotteryState,
        responder: &LotteryState,
    ) -> (LotteryState, LotteryState) {
        let mut s = [*initiator, *responder];

        // Phase 1: the geometric level lottery (role coins).
        if !s[0].level_done {
            s[0].level += 1; // head
        }
        if !s[1].level_done {
            s[1].level_done = true; // first tail
        }
        // Phase 2: leaders with frozen levels grow tie-break bits. The
        // loop index doubles as the appended bit (initiator = 0).
        #[allow(clippy::needless_range_loop)]
        for i in 0..2 {
            if s[i].leader && s[i].level_done && s[i].nbits < 64 {
                s[i].bits = (s[i].bits << 1) | i as u64;
                s[i].nbits += 1;
            }
        }
        // Phase 3: epidemic of the maximum (level, prefix) among agents with
        // frozen levels; strictly smaller agents are demoted and carry the
        // winner's value.
        if s[0].level_done && s[1].level_done {
            match s[0].compare(&s[1]) {
                Some(std::cmp::Ordering::Less) => {
                    let winner = s[1];
                    s[0].adopt(&winner);
                }
                Some(std::cmp::Ordering::Greater) => {
                    let winner = s[0];
                    s[1].adopt(&winner);
                }
                _ => {
                    // Identical comparable information. If both are leaders
                    // with saturated bit strings, fall back to the simple
                    // election to guarantee eventual uniqueness.
                    if s[0].leader && s[1].leader && s[0].nbits == 64 && s[1].nbits == 64 {
                        s[1].leader = false;
                    }
                }
            }
        }

        (s[0], s[1])
    }

    fn output(&self, state: &LotteryState) -> Role {
        if state.leader {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn name(&self) -> String {
        "UnboundedLottery[MST18-like]".to_string()
    }
}

impl LeaderElection for UnboundedLottery {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{CountSimulation, Simulation, UniformScheduler};
    use pp_rand::{SeedSequence, Xoshiro256PlusPlus};

    #[test]
    fn snapshot_codec_roundtrips_and_validates() {
        use pp_engine::SnapshotState;
        let s = LotteryState {
            leader: true,
            level: 9,
            level_done: true,
            bits: 0b1011,
            nbits: 4,
        };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut cursor = &buf[..];
        assert_eq!(LotteryState::decode(&mut cursor), Some(s));
        assert!(cursor.is_empty());
        // nbits > 64 is unreachable and must be rejected.
        *buf.last_mut().unwrap() = 65;
        assert_eq!(LotteryState::decode(&mut &buf[..]), None);
        assert_eq!(LotteryState::decode(&mut &buf[..3]), None, "truncated");
    }

    #[test]
    fn level_phase_counts_initiator_roles() {
        let p = UnboundedLottery::new();
        let a = LotteryState::initial();
        let b = LotteryState::initial();
        let (na, nb) = p.transition(&a, &b);
        assert_eq!(na.level, 1);
        assert!(!na.level_done);
        assert_eq!(nb.level, 0);
        assert!(nb.level_done, "responder saw its first tail");
        // The responder (now frozen, still leader) starts growing bits.
        assert_eq!(nb.nbits, 1);
        assert_eq!(nb.bits, 1);
    }

    #[test]
    fn comparison_demotes_smaller_level() {
        let p = UnboundedLottery::new();
        let mut lo = LotteryState::initial();
        lo.level = 1;
        lo.level_done = true;
        let mut hi = LotteryState::initial();
        hi.level = 4;
        hi.level_done = true;
        let (nlo, nhi) = p.transition(&lo, &hi);
        assert!(!nlo.leader);
        assert_eq!(nlo.level, nhi.level);
        assert!(nhi.leader);
    }

    #[test]
    fn prefix_comparison_ignores_extra_bits() {
        let a = LotteryState {
            leader: true,
            level: 3,
            level_done: true,
            bits: 0b10,
            nbits: 2,
        };
        let b = LotteryState {
            leader: true,
            level: 3,
            level_done: true,
            bits: 0b101,
            nbits: 3,
        };
        // Common prefix (2 bits): 10 vs 10 — equal, no comparison verdict.
        assert_eq!(a.compare(&b), None);
        let c = LotteryState { bits: 0b11, ..a };
        assert_eq!(c.compare(&b), Some(std::cmp::Ordering::Greater));
    }

    #[test]
    fn followers_never_grow_bits() {
        let p = UnboundedLottery::new();
        let f = LotteryState {
            leader: false,
            level: 2,
            level_done: true,
            bits: 0b1,
            nbits: 1,
        };
        let (nf, _) = p.transition(&f, &f.clone());
        assert_eq!(nf.nbits, 1, "followers' triples are frozen");
    }

    #[test]
    fn stabilizes_and_stays_stable() {
        for n in [2usize, 3, 16, 256] {
            let mut sim = Simulation::new(
                UnboundedLottery,
                n,
                UniformScheduler::seed_from_u64(100 + n as u64),
            )
            .unwrap();
            let o = sim.run_until_single_leader(100_000_000);
            assert!(o.converged, "n={n}");
            sim.run(20_000);
            assert_eq!(sim.leader_count(), 1, "n={n}");
        }
    }

    #[test]
    fn leader_count_monotone_positive() {
        let mut sim =
            Simulation::new(UnboundedLottery, 64, UniformScheduler::seed_from_u64(3)).unwrap();
        let mut last = sim.leader_count();
        for _ in 0..50_000 {
            sim.step();
            let now = sim.leader_count();
            assert!(now <= last && now >= 1);
            last = now;
        }
    }

    #[test]
    fn logarithmic_time_shape() {
        let seeds = SeedSequence::new(12);
        let mean = |n: usize| {
            let mut total = 0.0;
            for i in 0..10 {
                let mut sim = Simulation::new(
                    UnboundedLottery,
                    n,
                    UniformScheduler::seed_from_u64(seeds.seed_at(i + n as u64)),
                )
                .unwrap();
                total += sim.run_until_single_leader(u64::MAX).parallel_time(n);
            }
            total / 10.0
        };
        let r = mean(1024) / mean(256);
        // Logarithmic: ratio ≈ lg(1024)/lg(256) = 1.25; linear would be 4.
        assert!(r < 2.0, "ratio {r} too steep for O(log n)");
    }

    #[test]
    fn state_usage_grows_with_population() {
        let distinct = |n: usize| {
            let rng = Xoshiro256PlusPlus::seed_from_u64(5);
            let mut sim = CountSimulation::new(UnboundedLottery, n, rng).unwrap();
            sim.run_until_single_leader(u64::MAX);
            sim.distinct_states_seen()
        };
        let small = distinct(64);
        let large = distinct(1024);
        assert!(
            large as f64 > small as f64 * 2.0,
            "states {small} -> {large}: expected clear growth"
        );
    }
}
