//! One-way max propagation: the protocol form of the one-way epidemic.

use pp_engine::Protocol;

/// Max propagation: both participants adopt the larger value.
///
/// Starting from a configuration where one agent holds a distinguished
/// maximum, the set of agents holding it evolves *exactly* like the one-way
/// epidemic of \[AAE08\] (Lemma 2): an agent becomes "infected" the first time
/// it meets an infected agent. Used by the Lemma 2 experiments to check the
/// protocol-level and process-level epidemics agree, and by tests as the
/// simplest non-trivial protocol.
///
/// # Example
///
/// ```
/// use pp_engine::Protocol;
/// use pp_protocols::MaxValue;
///
/// let p = MaxValue::new();
/// assert_eq!(p.transition(&3, &7), (7, 7));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxValue;

impl MaxValue {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for MaxValue {
    type State = u32;
    type Output = u32;

    fn initial_state(&self) -> u32 {
        0
    }

    fn transition(&self, initiator: &u32, responder: &u32) -> (u32, u32) {
        let m = *initiator.max(responder);
        (m, m)
    }

    fn output(&self, state: &u32) -> u32 {
        *state
    }

    fn name(&self) -> String {
        "MaxValue".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::epidemic::Epidemic;
    use pp_engine::{Configuration, Simulation, UniformScheduler};
    use pp_rand::{Rng64, SeedSequence, Xoshiro256PlusPlus};

    #[test]
    fn transition_is_symmetric_and_idempotent() {
        let p = MaxValue::new();
        assert_eq!(p.transition(&5, &5), (5, 5));
        assert_eq!(p.transition(&0, &9), (9, 9));
        assert_eq!(p.transition(&9, &0), (9, 9));
    }

    #[test]
    fn max_spreads_to_everyone() {
        let n = 64;
        let mut states = vec![0u32; n];
        states[17] = 42;
        let mut sim =
            Simulation::from_states(MaxValue, states, UniformScheduler::seed_from_u64(2)).unwrap();
        let outcome = sim.run_until(64, 10_000_000, |sim| sim.states().iter().all(|&v| v == 42));
        assert!(outcome.converged);
    }

    #[test]
    fn spread_time_matches_epidemic_process() {
        // The same Markov chain two ways: MaxValue protocol vs the direct
        // Epidemic process. Mean completion steps should agree closely.
        let n = 128;
        let seeds = SeedSequence::new(4);
        let runs = 30;

        let mut proto_total = 0u64;
        for i in 0..runs {
            let mut states = vec![0u32; n];
            states[0] = 1;
            let mut sim = Simulation::from_states(
                MaxValue,
                states,
                UniformScheduler::seed_from_u64(seeds.seed_at(i)),
            )
            .unwrap();
            let o = sim.run_until(16, u64::MAX, |sim| sim.states().iter().all(|&v| v == 1));
            proto_total += o.steps;
        }

        let mut epi_total = 0u64;
        for i in 0..runs {
            let mut ep = Epidemic::whole_population(n, 0).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seeds.seed_at(1000 + i));
            epi_total += ep.run_to_completion(&mut rng, u64::MAX).unwrap();
        }

        let proto = proto_total as f64 / runs as f64;
        let epi = epi_total as f64 / runs as f64;
        assert!(
            (proto / epi - 1.0).abs() < 0.25,
            "protocol {proto} vs epidemic {epi}"
        );
    }

    #[test]
    fn configuration_semantics() {
        let mut c = Configuration::from_states(vec![1u32, 5, 3]).unwrap();
        c.apply(&MaxValue, pp_engine::Interaction::new(0, 2))
            .unwrap();
        assert_eq!(c.states(), &[3, 5, 3]);
        let counts = c.state_counts();
        assert_eq!(counts[&3], 2);
    }

    #[test]
    fn random_initial_values_converge_to_global_max() {
        let n = 50;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let states: Vec<u32> = (0..n).map(|_| rng.below(1000) as u32).collect();
        let maximum = *states.iter().max().unwrap();
        let mut sim =
            Simulation::from_states(MaxValue, states, UniformScheduler::seed_from_u64(78)).unwrap();
        let o = sim.run_until(32, u64::MAX, |sim| {
            sim.states().iter().all(|&v| v == maximum)
        });
        assert!(o.converged);
    }
}
