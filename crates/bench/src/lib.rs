//! Support code for the workspace's criterion benchmark suite.
//!
//! The benches mirror the experiment suite (`pp-sim`) at wall-clock level —
//! one bench target per paper artifact plus engine/RNG micro-benchmarks:
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `stabilization` | Tables 1/2, Theorem 1 — who wins, and how it scales |
//! | `epidemic` | Lemma 2 |
//! | `modules` | Lemma 7 (QuickElimination window), Lemma 12 (BackUp) |
//! | `sync` | Lemma 6 (CountUp color cycles) |
//! | `state_space` | Table 3 / Lemma 3 (count-engine interning) |
//! | `symmetric` | Section 4 |
//! | `ablation` | module-contribution ablation |
//! | `engine`, `rng` | substrate micro-benchmarks |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod common;

pub use common::fast_criterion;
