//! Shared bench configuration: short, CI-friendly measurement windows.

use criterion::Criterion;
use std::time::Duration;

/// A criterion instance tuned so `cargo bench --workspace` finishes in
/// minutes: small sample counts, sub-second warm-up.
pub fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
