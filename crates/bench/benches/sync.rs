//! **Lemma 6 at wall-clock level**: one full color cycle of the
//! count-up/color synchronization machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{Simulation, UniformScheduler};
use std::hint::black_box;

fn bench_color_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync/color_cycle");
    let mut seed = 0u64;
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let pll = Pll::for_population(n).expect("n >= 2");
                let mut sim =
                    Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
                // Run until some agent first leaves color 0 — one full
                // count-up period.
                let outcome = sim.run_until((n as u64 / 4).max(1), u64::MAX, |sim| {
                    sim.states().iter().any(|s| s.color != 0)
                });
                black_box(outcome.steps)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_color_cycle
}
criterion_main!(benches);
