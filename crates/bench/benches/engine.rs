//! Engine micro-benchmarks: interactions per second for the per-agent and
//! count-based engines, on the paper's protocol and on a trivial baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{CountSimulation, Simulation, UniformScheduler};
use pp_protocols::Fratricide;
use pp_rand::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/agent_steps");
    for &n in &[1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let pll = Pll::for_population(n).expect("n >= 2");
            let mut sim =
                Simulation::new(pll, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(1000);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            let mut sim =
                Simulation::new(Fratricide, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(1000);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

fn bench_count_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/count_steps");
    for &n in &[1024usize, 1 << 20] {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let pll = Pll::for_population(n).expect("n >= 2");
            let rng = Xoshiro256PlusPlus::seed_from_u64(1);
            let mut sim = CountSimulation::new(pll, n, rng).expect("n >= 2");
            b.iter(|| {
                sim.run(1000);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_agent_engine, bench_count_engine
}
criterion_main!(benches);
