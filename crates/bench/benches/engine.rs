//! Engine micro-benchmarks: interactions per second for the per-agent and
//! count-based engines, on the paper's protocol and on the Table-1 baseline
//! protocols.
//!
//! The count engine appears twice: `engine/count_steps` exercises the
//! default compiled-pair fast path, `engine/count_steps_reference` the same
//! workloads with the compiled cache disabled (per-step hashing, cloning,
//! and `Protocol::transition` calls) — the before/after pair that shows what
//! the compiled transition layer buys. All groups declare element
//! throughput, so the JSON emitted by the criterion stand-in (see
//! `BENCH_JSON_DIR`) reports interactions/sec directly; `BENCH_engine.json`
//! at the repo root snapshots those numbers per PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{CountSimulation, LeaderElection, Simulation, UniformScheduler};
use pp_protocols::{Fratricide, UnboundedLottery};
use pp_rand::Xoshiro256PlusPlus;
use std::hint::black_box;

/// Interactions per benchmark iteration.
const STEPS: u64 = 1000;

/// Count-engine population sizes: the count engine is `O(#states)` memory,
/// so it scales to populations the per-agent engine cannot touch.
const COUNT_NS: [usize; 4] = [1 << 10, 1 << 14, 1 << 20, 1 << 24];

fn bench_agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/agent_steps");
    group.throughput(Throughput::Elements(STEPS));
    for &n in &[1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let pll = Pll::for_population(n).expect("n >= 2");
            let mut sim =
                Simulation::new(pll, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            let mut sim =
                Simulation::new(Fratricide, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

fn count_sim<P: LeaderElection>(
    protocol: P,
    n: usize,
    compiled: bool,
) -> CountSimulation<P, Xoshiro256PlusPlus> {
    let rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut sim = CountSimulation::new(protocol, n, rng).expect("n >= 2");
    sim.set_compiled_cache(compiled);
    sim
}

fn bench_count_engine_at(group_name: &str, compiled: bool, c: &mut Criterion) {
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(STEPS));
    for &n in &COUNT_NS {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let mut sim = count_sim(Pll::for_population(n).expect("n >= 2"), n, compiled);
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            let mut sim = count_sim(Fratricide, n, compiled);
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("lottery", n), &n, |b, &n| {
            let mut sim = count_sim(UnboundedLottery, n, compiled);
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

fn bench_count_engine(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps", true, c);
}

fn bench_count_engine_reference(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps_reference", false, c);
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_agent_engine, bench_count_engine, bench_count_engine_reference
}
criterion_main!(benches);
