//! Engine micro-benchmarks: interactions per second for the per-agent and
//! count-based engines, on the paper's protocol and on the Table-1 baseline
//! protocols.
//!
//! The count engine appears five times — its four execution tiers plus the
//! auto-dispatching default: `engine/count_steps` is the full default path
//! (tier dispatch picks compiled/jump/batch per review),
//! `engine/count_steps_batch` the batch tier *pinned* via
//! `force_batch_mode` and measured inside a fixed mid-election
//! parallel-time window (see `WINDOW_FROM`/`WINDOW_TO`) so every row
//! reports genuine hypergeometric-round throughput in the regime heuristic
//! dispatch uses the tier in — including rows where forcing it is a loss,
//! `engine/count_steps_compiled` the compiled per-step cache with jump and
//! batch disabled, and `engine/count_steps_reference` the uncached per-step
//! fallback (hashing, cloning, and `Protocol::transition` calls every
//! step). `engine/count_steps_wide` runs the `WideSimulation` lane engine
//! on the batch group's workload at lane widths 1/4/8/16 with **per-seed**
//! element throughput, tracing the lane-scaling curve against the scalar
//! batch row (plus a `lawonly_lanes/8` row for the shared-round law-equal
//! wide mode). `engine/count_steps_round` pits the batch tier's three
//! round laws (`sequence` / `contingency` / `multiround`) against each
//! other in adjacent rows on a small-support workload (fratricide) and a
//! wide-support control (`P_LL`). `engine/count_steps_obs` prices the
//! observability layer: the pinned-batch workload with and without an
//! attached `EngineObserver`, adjacent rows the CI smoke gate holds to a
//! 2 % spread. The step groups run mid-election workloads where null
//! interactions never dominate — the regime the batch tier was built for
//! (`P_LL`'s timer ticks pin its null fraction near 0.56, so jumping never
//! engages there). The jump scheduler's own regime is measured by
//! `engine/election_*`, which times *entire* fratricide elections — a
//! `Θ(n²)`-interaction workload whose null tail the scheduler telescopes
//! into `O(n)` episodes (no per-step tier can finish those sizes inside any
//! reasonable bench budget). All step groups declare element throughput, so
//! the JSON emitted by the criterion stand-in (see `BENCH_JSON_DIR`)
//! reports interactions/sec directly; `BENCH_engine.json` at the repo root
//! snapshots those numbers per PR (regenerate with
//! `cargo run --release -p pp-sim --bin bench_snapshot`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{
    CountSimulation, EngineConfig, EngineObserver, LawMode, LeaderElection, Simulation,
    UniformScheduler, WideSimulation, WideTierPolicy,
};
use pp_protocols::{Fratricide, UnboundedLottery};
use pp_rand::{SeedSequence, Xoshiro256PlusPlus};
use std::hint::black_box;

/// Interactions per benchmark iteration.
const STEPS: u64 = 1000;

/// Count-engine population sizes: the count engine is `O(#states)` memory,
/// so it scales to populations the per-agent engine cannot touch.
const COUNT_NS: [usize; 4] = [1 << 10, 1 << 14, 1 << 20, 1 << 24];

fn bench_agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/agent_steps");
    group.throughput(Throughput::Elements(STEPS));
    for &n in &[1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let pll = Pll::for_population(n).expect("n >= 2");
            let mut sim =
                Simulation::new(pll, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            let mut sim =
                Simulation::new(Fratricide, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

/// The count engine's execution tiers (see the module docs).
#[derive(Clone, Copy)]
enum Tier {
    /// Full tier dispatch (compiled + jump + batch): the engine default.
    Default,
    /// Batch tier, pinned via `force_batch_mode` so every row measures
    /// hypergeometric rounds — never a silently disengaged fallback the
    /// regression gate would mistake for batch throughput.
    Batch,
    /// Compiled cache only: jump and batch disabled.
    Compiled,
    /// Uncached per-step fallback.
    Reference,
}

fn count_sim<P: LeaderElection>(
    protocol: P,
    n: usize,
    tier: Tier,
) -> CountSimulation<P, Xoshiro256PlusPlus> {
    let rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut sim = CountSimulation::new(protocol, n, rng).expect("n >= 2");
    match tier {
        Tier::Default => {}
        Tier::Batch => sim.force_batch_mode(),
        Tier::Compiled => {
            sim.set_jump_scheduler(false);
            sim.set_batch_tier(false);
        }
        Tier::Reference => sim.set_compiled_cache(false),
    }
    sim
}

/// Parallel-time window the pinned batch group measures inside. Elections at
/// these sizes stabilize around parallel time ~24 (`P_LL`) and the live
/// support peaks below ~130 states through parallel time ~136 — the regime
/// heuristic dispatch actually engages the batch tier in. A sim left running
/// for the whole multi-second measurement instead drifts into a
/// post-stabilization steady state (timer spread inflates the support past
/// the engage threshold) that no real sweep visits, so the batch rows warm
/// to `WINDOW_FROM·n` interactions and reset past `WINDOW_TO·n`; the
/// amortized reset cost stays inside the measured time (conservative).
const WINDOW_FROM: u64 = 8;
const WINDOW_TO: u64 = 136;

fn bench_count_engine_at(group_name: &str, tier: Tier, c: &mut Criterion) {
    let windowed = matches!(tier, Tier::Batch);
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(STEPS));
    for &n in &COUNT_NS {
        macro_rules! bench_protocol {
            ($label:literal, $make:expr) => {
                group.bench_with_input(BenchmarkId::new($label, n), &n, |b, &n| {
                    let make = $make;
                    let mut sim = count_sim(make(n), n, tier);
                    if windowed {
                        sim.run(WINDOW_FROM * n as u64);
                    }
                    b.iter(|| {
                        if windowed && sim.steps() > WINDOW_TO * n as u64 {
                            sim = count_sim(make(n), n, tier);
                            sim.run(WINDOW_FROM * n as u64);
                        }
                        sim.run(STEPS);
                        black_box(sim.steps())
                    });
                });
            };
        }
        bench_protocol!("pll", |n| Pll::for_population(n).expect("n >= 2"));
        bench_protocol!("fratricide", |_| Fratricide);
        bench_protocol!("lottery", |_| UnboundedLottery);
    }
    group.finish();
}

fn bench_count_engine(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps", Tier::Default, c);
}

fn bench_count_engine_batch(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps_batch", Tier::Batch, c);
}

fn bench_count_engine_compiled(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps_compiled", Tier::Compiled, c);
}

fn bench_count_engine_reference(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps_reference", Tier::Reference, c);
}

/// The batch tier's round laws measured against each other on the same
/// pinned-batch windowed workload: for each protocol the three
/// [`LawMode`] rows run back-to-back, so the contingency-vs-sequence
/// ratio — the figure the round-law refactor exists for — comes from
/// adjacent measurements (machine drift across a full bench run exceeds
/// the ratio; see the wide group's note). `fratricide` is the
/// small-support workload (two live states, so the per-ordered-pair table
/// has ≤ 4 cells and the contingency law skips the `O(√n)` responder
/// shuffle outright); `pll` is the wide-support control where the table
/// overflows its cap and the law falls back to expand-and-shuffle per
/// segment, bounding the overhead of the dispatch itself.
fn bench_count_engine_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/count_steps_round");
    group.throughput(Throughput::Elements(STEPS));
    let n = 1usize << 20;
    macro_rules! bench_laws {
        ($label:literal, $make:expr) => {
            for law in [
                LawMode::SequenceExpansion,
                LawMode::Contingency,
                LawMode::MultiRound,
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/{n}", $label), law),
                    &law,
                    |b, &law| {
                        let make_protocol = $make;
                        let config = EngineConfig {
                            law_mode: law,
                            ..EngineConfig::default()
                        };
                        let make = || {
                            let rng = Xoshiro256PlusPlus::seed_from_u64(1);
                            let mut sim =
                                CountSimulation::with_config(make_protocol(n), n, rng, config)
                                    .expect("n >= 2");
                            sim.force_batch_mode();
                            sim.run(WINDOW_FROM * n as u64);
                            sim
                        };
                        let mut sim = make();
                        b.iter(|| {
                            if sim.steps() > WINDOW_TO * n as u64 {
                                sim = make();
                            }
                            sim.run(STEPS);
                            black_box(sim.steps())
                        });
                    },
                );
            }
        };
    }
    bench_laws!("fratricide", |_| Fratricide);
    bench_laws!("pll", |n| Pll::for_population(n).expect("n >= 2"));
    group.finish();
}

/// The wide lane engine on the batch group's exact workload: `W` seeds of
/// `P_LL@2^20` advanced in lockstep through one shared pair cache, batch
/// rounds pinned, measured inside the same mid-election window. One element
/// is one interaction of one seed (an iteration advances every lane by
/// `STEPS`, declaring `W · STEPS` elements), so every row reports the
/// bundle's aggregate seed-interactions per second: `lanes/1` is directly
/// comparable to `engine/count_steps_batch/pll/1048576`, and the rise from
/// `lanes/1` through `lanes/16` is the lane-scaling win — interleaved
/// independent RNG streams filling the pipeline plus cache lookups, tier
/// reviews, and round setup amortized across the lane set.
///
/// The group also re-measures the scalar batch tier as `scalar_batch`,
/// back-to-back with `lanes/8`: the wide-vs-scalar per-seed ratio is the
/// figure this group exists for, and on a shared 1-vCPU container the
/// machine's throughput drifts by ±10 % across minutes — more than the
/// ratio itself — so the two sides of the comparison (the smoke-bench gate
/// and the `BENCH_engine.json` headline) must come from adjacent
/// measurements, not from rows minutes apart in different groups.
fn bench_count_engine_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/count_steps_wide");
    let n = 1usize << 20;

    group.throughput(Throughput::Elements(STEPS));
    group.bench_with_input(
        BenchmarkId::new(format!("pll/{n}"), "scalar_batch"),
        &n,
        |b, &n| {
            let make = || {
                let mut sim = count_sim(Pll::for_population(n).expect("n >= 2"), n, Tier::Batch);
                sim.run(WINDOW_FROM * n as u64);
                sim
            };
            let mut sim = make();
            b.iter(|| {
                if sim.steps() > WINDOW_TO * n as u64 {
                    sim = make();
                }
                sim.run(STEPS);
                black_box(sim.steps())
            });
        },
    );

    // One element = one interaction of one seed: an iteration advances
    // every lane by STEPS, so rates are aggregate across the bundle and
    // the scalar rows are the lanes = 1 baseline of the same metric. Row
    // order keeps the comparisons the gates read adjacent to the
    // scalar_batch row above: `lanes/8` (bit-identical lockstep) first,
    // then `lawonly_lanes/8` (the shared-round law-equal mode), then the
    // rest of the scaling curve.
    macro_rules! wide_row {
        ($id:expr, $lanes:expr, $policy:expr) => {
            group.throughput(Throughput::Elements(STEPS * $lanes as u64));
            group.bench_with_input(BenchmarkId::new($id, $lanes), &$lanes, |b, &lanes| {
                let make = || {
                    let mut sim = WideSimulation::with_config(
                        Pll::for_population(n).expect("n >= 2"),
                        n,
                        SeedSequence::new(1).rngs(lanes),
                        EngineConfig::default(),
                        $policy,
                    )
                    .expect("n >= 2");
                    sim.run(WINDOW_FROM * n as u64);
                    sim
                };
                let mut sim = make();
                b.iter(|| {
                    if sim.steps() > WINDOW_TO * n as u64 {
                        sim = make();
                    }
                    sim.run(STEPS);
                    black_box(sim.steps())
                });
            });
        };
    }
    wide_row!(
        format!("pll/{n}/lanes"),
        8usize,
        WideTierPolicy::PinnedBatch
    );
    wide_row!(
        format!("pll/{n}/lawonly_lanes"),
        8usize,
        WideTierPolicy::LawOnly
    );
    for &lanes in &[1usize, 4, 16] {
        wide_row!(format!("pll/{n}/lanes"), lanes, WideTierPolicy::PinnedBatch);
    }
    group.finish();
}

/// The observability layer's cost when attached but otherwise idle: the
/// pinned-batch windowed `P_LL@2^20` workload (the same one the batch
/// group measures) run twice back-to-back, `detached` with no observer and
/// `attached` with an [`EngineObserver`] recording events and per-tier
/// wall time. The contract is that observation touches the hot loop only
/// at episode and review boundaries — one branch plus an `Instant` read
/// when it fires — so the attached row must stay within a few percent of
/// the detached row; the CI smoke gate holds the pair to 2 %. Rows are
/// adjacent for the same drift reason as the wide group's scalar/lanes
/// pair.
fn bench_count_engine_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/count_steps_obs");
    group.throughput(Throughput::Elements(STEPS));
    let n = 1usize << 20;
    macro_rules! obs_row {
        ($id:literal, $observed:expr) => {
            group.bench_with_input(BenchmarkId::new(format!("pll/{n}"), $id), &n, |b, &n| {
                let make = || {
                    let mut sim =
                        count_sim(Pll::for_population(n).expect("n >= 2"), n, Tier::Batch);
                    if $observed {
                        sim.set_observer(EngineObserver::new());
                    }
                    sim.run(WINDOW_FROM * n as u64);
                    sim
                };
                let mut sim = make();
                b.iter(|| {
                    if sim.steps() > WINDOW_TO * n as u64 {
                        sim = make();
                    }
                    sim.run(STEPS);
                    black_box(sim.steps())
                });
            });
        };
    }
    obs_row!("detached", false);
    obs_row!("attached", true);
    group.finish();
}

/// Whole fratricide elections on the jump scheduler: `Θ(n²)` simulated
/// interactions per run (≈10¹² at `n = 2^20`) telescoped into `O(n)`
/// executed episodes. No per-step tier appears alongside because none could
/// finish one iteration inside the bench budget — that asymmetry *is* the
/// result; wall time per election is the figure of merit.
fn bench_election_jump(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/election_jump");
    let mut seed = 0u64;
    for &n in &[1usize << 16, 1 << 20] {
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                let mut sim = CountSimulation::new(Fratricide, n, rng).expect("n >= 2");
                let out = sim.run_until_single_leader(u64::MAX);
                assert!(out.converged);
                black_box(out.steps)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_agent_engine, bench_count_engine, bench_count_engine_batch,
        bench_count_engine_wide, bench_count_engine_round,
        bench_count_engine_obs, bench_count_engine_compiled,
        bench_count_engine_reference, bench_election_jump
}
criterion_main!(benches);
