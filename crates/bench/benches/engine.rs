//! Engine micro-benchmarks: interactions per second for the per-agent and
//! count-based engines, on the paper's protocol and on the Table-1 baseline
//! protocols.
//!
//! The count engine appears three times — its three execution tiers:
//! `engine/count_steps` is the full default path (compiled pair cache +
//! null-skipping jump scheduler), `engine/count_steps_compiled` the compiled
//! cache with the jump scheduler disabled, and
//! `engine/count_steps_reference` the uncached per-step fallback (hashing,
//! cloning, and `Protocol::transition` calls every step). The step groups
//! run mid-election workloads where null interactions never dominate, so
//! `count_steps` ≈ `count_steps_compiled` there; the jump scheduler's own
//! regime is measured by `engine/election_*`, which times *entire*
//! fratricide elections — a `Θ(n²)`-interaction workload whose null tail the
//! scheduler telescopes into `O(n)` episodes (the compiled tier cannot
//! finish those sizes inside any reasonable bench budget). All step groups
//! declare element throughput, so the JSON emitted by the criterion
//! stand-in (see `BENCH_JSON_DIR`) reports interactions/sec directly;
//! `BENCH_engine.json` at the repo root snapshots those numbers per PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{CountSimulation, LeaderElection, Simulation, UniformScheduler};
use pp_protocols::{Fratricide, UnboundedLottery};
use pp_rand::Xoshiro256PlusPlus;
use std::hint::black_box;

/// Interactions per benchmark iteration.
const STEPS: u64 = 1000;

/// Count-engine population sizes: the count engine is `O(#states)` memory,
/// so it scales to populations the per-agent engine cannot touch.
const COUNT_NS: [usize; 4] = [1 << 10, 1 << 14, 1 << 20, 1 << 24];

fn bench_agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/agent_steps");
    group.throughput(Throughput::Elements(STEPS));
    for &n in &[1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let pll = Pll::for_population(n).expect("n >= 2");
            let mut sim =
                Simulation::new(pll, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            let mut sim =
                Simulation::new(Fratricide, n, UniformScheduler::seed_from_u64(1)).expect("n >= 2");
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

/// The count engine's three execution tiers (see the module docs).
#[derive(Clone, Copy)]
enum Tier {
    /// Compiled cache + jump scheduler: the engine default.
    Jump,
    /// Compiled cache only.
    Compiled,
    /// Uncached per-step fallback.
    Reference,
}

fn count_sim<P: LeaderElection>(
    protocol: P,
    n: usize,
    tier: Tier,
) -> CountSimulation<P, Xoshiro256PlusPlus> {
    let rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut sim = CountSimulation::new(protocol, n, rng).expect("n >= 2");
    match tier {
        Tier::Jump => {}
        Tier::Compiled => sim.set_jump_scheduler(false),
        Tier::Reference => sim.set_compiled_cache(false),
    }
    sim
}

fn bench_count_engine_at(group_name: &str, tier: Tier, c: &mut Criterion) {
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(STEPS));
    for &n in &COUNT_NS {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            let mut sim = count_sim(Pll::for_population(n).expect("n >= 2"), n, tier);
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            let mut sim = count_sim(Fratricide, n, tier);
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
        group.bench_with_input(BenchmarkId::new("lottery", n), &n, |b, &n| {
            let mut sim = count_sim(UnboundedLottery, n, tier);
            b.iter(|| {
                sim.run(STEPS);
                black_box(sim.steps())
            });
        });
    }
    group.finish();
}

fn bench_count_engine(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps", Tier::Jump, c);
}

fn bench_count_engine_compiled(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps_compiled", Tier::Compiled, c);
}

fn bench_count_engine_reference(c: &mut Criterion) {
    bench_count_engine_at("engine/count_steps_reference", Tier::Reference, c);
}

/// Whole fratricide elections on the jump scheduler: `Θ(n²)` simulated
/// interactions per run (≈10¹² at `n = 2^20`) telescoped into `O(n)`
/// executed episodes. No per-step tier appears alongside because none could
/// finish one iteration inside the bench budget — that asymmetry *is* the
/// result; wall time per election is the figure of merit.
fn bench_election_jump(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/election_jump");
    let mut seed = 0u64;
    for &n in &[1usize << 16, 1 << 20] {
        group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                let mut sim = CountSimulation::new(Fratricide, n, rng).expect("n >= 2");
                let out = sim.run_until_single_leader(u64::MAX);
                assert!(out.converged);
                black_box(out.steps)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_agent_engine, bench_count_engine, bench_count_engine_compiled,
        bench_count_engine_reference, bench_election_jump
}
criterion_main!(benches);
