//! **Section 4 at wall-clock level**: symmetric vs. asymmetric `P_LL`
//! stabilization, and the symmetric transition function's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::{Pll, SymPll};
use pp_engine::{Protocol, Simulation, UniformScheduler};
use std::hint::black_box;

fn bench_symmetric_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric/stabilization");
    let mut seed = 0u64;
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("asymmetric", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let p = Pll::for_population(n).expect("n >= 2");
                let mut sim =
                    Simulation::new(p, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
                black_box(sim.run_until_single_leader(u64::MAX).steps)
            });
        });
        group.bench_with_input(BenchmarkId::new("symmetric", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let p = SymPll::for_population(n).expect("n >= 3");
                let mut sim =
                    Simulation::new(p, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
                black_box(sim.run_until_single_leader(u64::MAX).steps)
            });
        });
    }
    group.finish();
}

fn bench_symmetric_transition(c: &mut Criterion) {
    let p = SymPll::for_population(1024).expect("n >= 3");
    let init = p.initial_state();
    c.benchmark_group("symmetric/transition")
        .bench_function("initial_pair", |b| {
            b.iter(|| black_box(p.transition(&init, &init)))
        });
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_symmetric_stabilization, bench_symmetric_transition
}
criterion_main!(benches);
