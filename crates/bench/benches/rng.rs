//! RNG substrate micro-benchmarks: generator throughput, bounded sampling,
//! pair sampling, and weighted samplers.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_bench::fast_criterion;
use pp_rand::{AliasTable, FenwickSampler, Pcg32, Rng64, SplitMix64, Xoshiro256PlusPlus};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/next_u64");
    let mut xo = Xoshiro256PlusPlus::seed_from_u64(1);
    group.bench_function("xoshiro256pp", |b| b.iter(|| black_box(xo.next_u64())));
    let mut sm = SplitMix64::new(1);
    group.bench_function("splitmix64", |b| b.iter(|| black_box(sm.next_u64())));
    let mut pcg = Pcg32::new(1, 1);
    group.bench_function("pcg32", |b| b.iter(|| black_box(pcg.next_u64())));
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/sampling");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
    group.bench_function("below_1000", |b| b.iter(|| black_box(rng.below(1000))));
    group.bench_function("distinct_pair_n1024", |b| {
        b.iter(|| black_box(rng.distinct_pair(1024)))
    });
    group.bench_function("heads_run", |b| b.iter(|| black_box(rng.heads_run())));
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/weighted");
    let weights: Vec<u64> = (1..=512).collect();
    let fenwick = FenwickSampler::from_weights(&weights).expect("non-empty");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    group.bench_function("fenwick_sample_512", |b| {
        b.iter(|| black_box(fenwick.sample(&mut rng).expect("non-zero total")))
    });
    let alias = AliasTable::new(&(1..=512).map(|w| w as f64).collect::<Vec<_>>())
        .expect("non-empty weights");
    group.bench_function("alias_sample_512", |b| {
        b.iter(|| black_box(alias.sample(&mut rng)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_generators, bench_sampling, bench_weighted
}
criterion_main!(benches);
