//! **Tables 1/2 + Theorem 1 at wall-clock level**: time-to-stabilization for
//! each protocol across population sizes. The *shape* — who wins and how the
//! gap scales — mirrors the paper's Table 1 comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{Simulation, UniformScheduler};
use pp_protocols::{Fratricide, UnboundedLottery};
use std::hint::black_box;

fn bench_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilization");
    let mut seed = 0u64;
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("pll", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let pll = Pll::for_population(n).expect("n >= 2");
                let mut sim =
                    Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
                black_box(sim.run_until_single_leader(u64::MAX).steps)
            });
        });
        group.bench_with_input(BenchmarkId::new("lottery", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(UnboundedLottery, n, UniformScheduler::seed_from_u64(seed))
                        .expect("n >= 2");
                black_box(sim.run_until_single_leader(u64::MAX).steps)
            });
        });
        // Fratricide is Θ(n) parallel time = Θ(n²) steps: bench the smaller
        // sizes only so the suite stays fast.
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("fratricide", n), &n, |b, &n| {
                b.iter(|| {
                    seed += 1;
                    let mut sim =
                        Simulation::new(Fratricide, n, UniformScheduler::seed_from_u64(seed))
                            .expect("n >= 2");
                    black_box(sim.run_until_single_leader(u64::MAX).steps)
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_stabilization
}
criterion_main!(benches);
