//! **Module ablation at wall-clock level**: full `P_LL` vs. `−Tournament`
//! vs. BackUp-only — the contribution of each fast-path module.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::Pll;
use pp_engine::{Simulation, UniformScheduler};
use std::hint::black_box;

fn bench_module_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/modules");
    let n = 1024usize;
    let mut seed = 0u64;
    type MakePll = fn(usize) -> Pll;
    let variants: [(&str, MakePll); 3] = [
        ("full", |n| Pll::for_population(n).expect("n >= 2")),
        ("no_tournament", |n| {
            Pll::for_population(n).expect("n >= 2").without_tournament()
        }),
        ("backup_only", |n| {
            Pll::for_population(n)
                .expect("n >= 2")
                .without_quick_elimination()
                .without_tournament()
        }),
    ];
    for (name, make) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let mut sim = Simulation::new(make(n), n, UniformScheduler::seed_from_u64(seed))
                    .expect("n >= 2");
                black_box(sim.run_until_single_leader(u64::MAX).steps)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_module_ablation
}
criterion_main!(benches);
