//! **Table 3 / Lemma 3 at wall-clock level**: count-engine interning cost as
//! the `O(log n)` state space fills up, and the inventory computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::{inventory, Pll, PllParams};
use pp_engine::CountSimulation;
use pp_rand::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_space/count_engine_fill");
    for &m in &[8u32, 32, 128] {
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            b.iter(|| {
                let pll = Pll::new(PllParams::new(m).expect("m >= 1"));
                let rng = Xoshiro256PlusPlus::seed_from_u64(7);
                let mut sim = CountSimulation::new(pll, 1024, rng).expect("n >= 2");
                sim.run(50_000);
                black_box(sim.distinct_states_seen())
            });
        });
    }
    group.finish();
}

fn bench_inventory(c: &mut Criterion) {
    c.benchmark_group("state_space/inventory")
        .bench_function("table3_and_bound", |b| {
            let p = PllParams::for_population(1 << 20).expect("n >= 2");
            b.iter(|| {
                let rows = inventory::table3(&p);
                black_box((rows.len(), inventory::state_bound(&p)))
            });
        });
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_interning, bench_inventory
}
criterion_main!(benches);
