//! **Lemma 2 at wall-clock level**: one-way epidemic completion across
//! population and sub-population sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_engine::epidemic::Epidemic;
use pp_rand::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_epidemic(c: &mut Criterion) {
    let mut group = c.benchmark_group("epidemic/completion");
    let mut seed = 0u64;
    for &n in &[1024usize, 8192, 65536] {
        group.bench_with_input(BenchmarkId::new("whole", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let mut ep = Epidemic::whole_population(n, 0).expect("n >= 2");
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                black_box(ep.run_to_completion(&mut rng, u64::MAX).expect("completes"))
            });
        });
        group.bench_with_input(BenchmarkId::new("half", n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let members: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
                let mut ep = Epidemic::new(members, 0).expect("source is a member");
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                black_box(ep.run_to_completion(&mut rng, u64::MAX).expect("completes"))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_epidemic
}
criterion_main!(benches);
