//! **Lemma 7 / Lemma 12 at wall-clock level**: the `QuickElimination()`
//! window and `BackUp()` from adversarial configurations, plus the raw
//! transition-function cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::fast_criterion;
use pp_core::{Pll, PllState};
use pp_engine::{Protocol, Simulation, UniformScheduler};
use pp_stats::theory;
use std::hint::black_box;

fn bench_transition(c: &mut Criterion) {
    let pll = Pll::for_population(1024).expect("n >= 2");
    let leader = PllState::backup(true, 3);
    let follower = PllState::backup(false, 1);
    c.benchmark_group("modules/transition")
        .bench_function("backup_pair", |b| {
            b.iter(|| black_box(pll.transition(&leader, &follower)))
        })
        .bench_function("initial_pair", |b| {
            let init = PllState::initial();
            b.iter(|| black_box(pll.transition(&init, &init)))
        });
}

fn bench_quick_elimination_window(c: &mut Criterion) {
    // Lemma 7's measurement: run exactly ⌊21·n·ln n⌋ interactions.
    let mut group = c.benchmark_group("modules/qe_window");
    let mut seed = 0u64;
    for &n in &[256usize, 1024] {
        let horizon = theory::qe_horizon(n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                seed += 1;
                let pll = Pll::for_population(n).expect("n >= 2");
                let mut sim =
                    Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
                sim.run(horizon);
                black_box(sim.leader_count())
            });
        });
    }
    group.finish();
}

fn bench_backup_from_bstart(c: &mut Criterion) {
    // Lemma 12's measurement: election from a B_start-style configuration.
    let mut group = c.benchmark_group("modules/backup_bstart");
    let n = 1024usize;
    let mut seed = 0u64;
    for &k in &[2usize, 32] {
        group.bench_with_input(BenchmarkId::new("tied_leaders", k), &k, |b, &k| {
            b.iter(|| {
                seed += 1;
                let mut states = Vec::with_capacity(n);
                for i in 0..n {
                    if i < k {
                        states.push(PllState::backup(true, 0));
                    } else if i < n / 2 {
                        states.push(PllState::backup(false, 0));
                    } else {
                        let mut t = PllState::timer(0, 0);
                        t.epoch = 4;
                        t.init = 4;
                        states.push(t);
                    }
                }
                let mut sim = Simulation::from_states(
                    Pll::for_population(n).expect("n >= 2"),
                    states,
                    UniformScheduler::seed_from_u64(seed),
                )
                .expect("n >= 2");
                black_box(sim.run_until_single_leader(u64::MAX).steps)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_transition, bench_quick_elimination_window, bench_backup_from_bstart
}
criterion_main!(benches);
