//! Plain-text, markdown, and CSV table rendering for experiment output.

use std::fmt;

/// A simple column-oriented table: headers plus string rows.
///
/// # Example
///
/// ```
/// use pp_stats::Table;
///
/// let mut t = Table::new(["n", "time"]);
/// t.push_row(["256", "61.2"]);
/// t.push_row(["512", "68.9"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| n | time |"));
/// assert!(t.to_csv().starts_with("n,time\n"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for fields containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned plain-text table (what `Display` prints).
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = render_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_aligned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["protocol", "n", "time"]);
        t.push_row(["P_LL", "1024", "73.4"]);
        t.push_row(["Fratricide", "1024", "981.1"]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| protocol | n | time |");
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[2].contains("P_LL"));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["plain", "with,comma"]);
        t.push_row(["with\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn aligned_output_lines_up() {
        let txt = sample().to_aligned();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("protocol"));
        assert!(lines[1].starts_with("---"));
        // Display matches.
        assert_eq!(txt, sample().to_string());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.headers()[0], "protocol");
        assert_eq!(t.rows()[1][0], "Fratricide");
    }
}
