//! Closed-form reference curves from the paper and classic results.

/// The `n`-th harmonic number `H_n = Σ_{k=1}^{n} 1/k`.
pub fn harmonic(n: u64) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

/// The coupon-collector expectation `n·H_n`: the expected number of draws
/// to see all `n` coupons. Divided by `n` it is the `Ω(log n)` floor that
/// any leader-election protocol starting from a uniform configuration must
/// pay for every agent to interact at all (paper, introduction & \[SM19\]).
pub fn coupon_collector(n: u64) -> f64 {
    n as f64 * harmonic(n)
}

/// The paper's Section 3.1.1 lottery-game bound: the probability that
/// exactly `i ≥ 2` agents survive `QuickElimination()` is at most `2^{1−i}`.
pub fn lottery_survivor_bound(i: u32) -> f64 {
    if i < 2 {
        1.0
    } else {
        (2.0f64).powi(1 - i as i32)
    }
}

/// The exact fixed point of the paper's game recurrence,
/// `p_i = 1/(2^i − 1)`: the probability that a lottery that currently has
/// `i` co-leading agents ends with all `i` winning together.
pub fn lottery_survivor_exact(i: u32) -> f64 {
    1.0 / ((2.0f64).powi(i as i32) - 1.0)
}

/// Lemma 2's epidemic tail bound `min(1, n·e^{−t/n})` for the probability
/// that a sub-population epidemic is unfinished after `2⌈n/n'⌉·t` steps.
pub fn epidemic_tail_bound(n: u64, t: f64) -> f64 {
    (n as f64 * (-t / n as f64).exp()).min(1.0)
}

/// Multiplicative Chernoff upper-tail bound (Lemma 1, eq. 1):
/// `P[X ≥ (1+δ)μ] ≤ exp(−δ²μ/3)` for `0 ≤ δ ≤ 1`.
///
/// # Panics
///
/// Panics if `delta` is outside `[0, 1]` or `mu` is negative.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&delta), "delta must be in [0, 1]");
    assert!(mu >= 0.0, "mean must be non-negative");
    (-delta * delta * mu / 3.0).exp()
}

/// Multiplicative Chernoff lower-tail bound (Lemma 1, eq. 2):
/// `P[X ≤ (1−δ)μ] ≤ exp(−δ²μ/2)` for `0 < δ < 1`.
///
/// # Panics
///
/// Panics if `delta` is outside `(0, 1)` or `mu` is negative.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    assert!(mu >= 0.0, "mean must be non-negative");
    (-delta * delta * mu / 2.0).exp()
}

/// The paper's headline step horizon `⌊21·n·ln n⌋` (Lemmas 6 and 7): the
/// window within which `QuickElimination()` completes w.h.p.
pub fn qe_horizon(n: u64) -> u64 {
    (21.0 * n as f64 * (n as f64).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H_n ≈ ln n + γ.
        let approx = (1000f64).ln() + 0.577_215_664_9;
        assert!((harmonic(1000) - approx).abs() < 1e-3);
    }

    #[test]
    fn coupon_collector_grows_n_log_n() {
        let r = coupon_collector(2000) / coupon_collector(1000);
        // (2000 ln 2000)/(1000 ln 1000) ≈ 2.2.
        assert!(r > 2.0 && r < 2.4, "ratio {r}");
    }

    #[test]
    fn lottery_bounds_dominate_exact_values() {
        let mut total = 0.0;
        for i in 2..=20 {
            let exact = lottery_survivor_exact(i);
            let bound = lottery_survivor_bound(i);
            assert!(exact <= bound, "i={i}: {exact} > {bound}");
            total += bound;
        }
        // Σ_{i≥2} 2^{1-i} = 1.
        assert!(total <= 1.0 + 1e-9);
        assert_eq!(lottery_survivor_bound(0), 1.0);
        assert_eq!(lottery_survivor_bound(1), 1.0);
    }

    #[test]
    fn lottery_exact_fixed_point_identity() {
        // p_i satisfies p_i = 2^{-i} + 2^{-i} p_i.
        for i in 2..=10 {
            let p = lottery_survivor_exact(i);
            let rhs = (2.0f64).powi(-(i as i32)) * (1.0 + p);
            assert!((p - rhs).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn epidemic_tail_decays() {
        assert_eq!(epidemic_tail_bound(100, 0.0), 1.0);
        let a = epidemic_tail_bound(100, 600.0);
        let b = epidemic_tail_bound(100, 1200.0);
        assert!(b < a && a < 1.0);
    }

    #[test]
    fn chernoff_bounds_shrink_with_mu_and_delta() {
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(10.0, 0.5));
        assert!(chernoff_upper(100.0, 0.9) < chernoff_upper(100.0, 0.1));
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
        // The paper's Lemma 6 calculation: cmax = 41m ≥ 58 ln n gives
        // probability O(n^{-2}); sanity check the magnitude at n = 1024.
        let n = 1024f64;
        let mu = 42.0 * n.ln();
        let p = chernoff_upper(mu, 16.0 / 42.0);
        assert!(p < 1e-5, "p = {p}");
    }

    #[test]
    fn qe_horizon_formula() {
        assert_eq!(qe_horizon(100), (21.0 * 100.0 * (100f64).ln()) as u64);
        assert!(qe_horizon(1000) > qe_horizon(100));
    }
}
