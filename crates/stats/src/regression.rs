//! Least-squares fits for scaling-shape estimation.

/// The result of a simple least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// # Panics
///
/// Panics when fewer than two points are supplied or when all `x` are equal.
pub fn fit_against(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    assert!(sxx > 0.0, "x values must not all be equal");
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `y ≈ a·lg(n) + b` over `(n, y)` points — the shape test for the
/// paper's `O(log n)` claims. A good fit (high `R²`, stable slope) with a
/// near-zero power-law exponent (see [`fit_power_law`]) is the empirical
/// signature of logarithmic scaling.
///
/// # Panics
///
/// Panics when fewer than two points are supplied, on non-positive `n`, or
/// when all `n` are equal.
pub fn fit_log2(points: &[(f64, f64)]) -> LinearFit {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, y)| {
            assert!(n > 0.0, "population sizes must be positive");
            (n.log2(), y)
        })
        .collect();
    fit_against(&transformed)
}

/// Fits `y ≈ c·n^e` by least squares on `lg y` vs `lg n`, returning
/// `(exponent, lg c, R²)` as a [`LinearFit`] where `slope` is the exponent.
///
/// The exponent separates scaling regimes at a glance: ≈1 linear (Table 1's
/// \[Ang+06\]), ≈0 poly-logarithmic (`P_LL`).
///
/// # Panics
///
/// Panics when fewer than two points are supplied or on non-positive values.
pub fn fit_power_law(points: &[(f64, f64)]) -> LinearFit {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, y)| {
            assert!(n > 0.0 && y > 0.0, "power-law fit needs positive data");
            (n.log2(), y.log2())
        })
        .collect();
    fit_against(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|x| (x as f64, 3.0 * x as f64 - 2.0)).collect();
        let fit = fit_against(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_reasonable_r2() {
        let pts: Vec<(f64, f64)> = (1..=50)
            .map(|x| {
                let x = x as f64;
                // Deterministic "noise".
                (x, 2.0 * x + 1.0 + ((x * 7.3).sin()))
            })
            .collect();
        let fit = fit_against(&pts);
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn log2_fit_recovers_logarithmic_scaling() {
        // y = 12·lg n + 5.
        let pts: Vec<(f64, f64)> = (4..=16)
            .map(|k| {
                let n = (1u64 << k) as f64;
                (n, 12.0 * n.log2() + 5.0)
            })
            .collect();
        let fit = fit_log2(&pts);
        assert!((fit.slope - 12.0).abs() < 1e-9);
        assert!((fit.intercept - 5.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        // y = 0.5 · n^1.0 (linear).
        let linear: Vec<(f64, f64)> = (4..=14)
            .map(|k| {
                let n = (1u64 << k) as f64;
                (n, 0.5 * n)
            })
            .collect();
        assert!((fit_power_law(&linear).slope - 1.0).abs() < 1e-9);
        // y = 7·lg n: exponent tends to 0 over a dyadic range.
        let loggy: Vec<(f64, f64)> = (4..=14)
            .map(|k| {
                let n = (1u64 << k) as f64;
                (n, 7.0 * n.log2())
            })
            .collect();
        let e = fit_power_law(&loggy).slope;
        assert!(e < 0.35, "log data should look sub-power-law, got {e}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn too_few_points_panics() {
        fit_against(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must not all be equal")]
    fn degenerate_x_panics() {
        fit_against(&[(2.0, 1.0), (2.0, 5.0)]);
    }
}
