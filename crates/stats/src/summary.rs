//! Streaming sample summaries.

/// A streaming summary of a sample: count, mean, variance (Welford's
/// algorithm), extrema, and quantiles.
///
/// # Example
///
/// ```
/// use pp_stats::Summary;
///
/// let s: Summary = (1..=100).map(|x| x as f64).collect();
/// assert_eq!(s.count(), 100);
/// assert!((s.mean() - 50.5).abs() < 1e-12);
/// assert!((s.median() - 50.5).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN observations.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "summary cannot ingest NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.values.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation of order
    /// statistics; 0 for an empty summary.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The raw observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// FNV-1a 64 over the observation count and the exact bit pattern of
    /// every retained value, in insertion order.
    ///
    /// Two summaries share a checksum exactly when they hold the same
    /// observations in the same order — the cheap cross-process witness of
    /// the sweep fabric's merge contract: a shard-merged summary whose
    /// checksum matches the sequential sweep's reproduced its every
    /// observation bit-for-bit, not merely table cells that round the same
    /// way. (In-order [`merge`](Self::merge) preserves it; out-of-order
    /// merges, like different execution modes, are visible.)
    pub fn checksum(&self) -> u64 {
        fn eat(mut h: u64, word: u64) -> u64 {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
        let mut h = eat(0xcbf2_9ce4_8422_2325, self.count);
        for &x in &self.values {
            h = eat(h, x.to_bits());
        }
        h
    }

    /// Absorbs every observation of `other`, in `other`'s insertion order.
    ///
    /// Implemented by re-pushing the retained raw values, so merging partial
    /// summaries in insertion order reproduces the single-pass summary
    /// *exactly* — bit for bit, not just within floating-point tolerance.
    /// This is what lets a resumed experiment sweep aggregate shard results
    /// identically to an uninterrupted run. Merging in a different order
    /// keeps count, extrema, and quantiles exact; mean and variance agree to
    /// floating-point tolerance.
    pub fn merge(&mut self, other: &Summary) {
        for &x in other.values() {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_well_defined() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn mean_and_variance_match_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = xs.iter().copied().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s: Summary = (0..5).map(|x| x as f64).collect(); // 0 1 2 3 4
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.median(), 2.0);
        assert!((s.quantile(0.25) - 1.0).abs() < 1e-12);
        assert!((s.quantile(0.875) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Summary = (0..10).map(|x| (x % 5) as f64).collect();
        let large: Summary = (0..1000).map(|x| (x % 5) as f64).collect();
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn extend_appends() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.extend([3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn in_order_merge_is_bit_identical_to_single_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, 0.25, 3.5];
        let whole: Summary = xs.iter().copied().collect();
        for split in 0..=xs.len() {
            let mut merged: Summary = xs[..split].iter().copied().collect();
            let tail: Summary = xs[split..].iter().copied().collect();
            merged.merge(&tail);
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.mean().to_bits(), whole.mean().to_bits());
            assert_eq!(merged.variance().to_bits(), whole.variance().to_bits());
            assert_eq!(merged.values(), whole.values());
        }
    }

    #[test]
    fn out_of_order_merge_is_exact_on_count_and_extrema() {
        let a: Summary = [5.0, 1.0, 3.0].into_iter().collect();
        let b: Summary = [4.0, 2.0, 6.0].into_iter().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        assert_eq!(ab.median(), ba.median());
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert!((ab.variance() - ba.variance()).abs() < 1e-12);
    }

    #[test]
    fn checksum_witnesses_values_and_order() {
        let a: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let b: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(a.checksum(), b.checksum());
        // Order matters: a reordered merge must be visible.
        let reordered: Summary = [3.0, 2.0, 1.0].into_iter().collect();
        assert_ne!(a.checksum(), reordered.checksum());
        // So do values — down to a single ulp, invisible to any rounded
        // table cell.
        let ulp = f64::from_bits(3.0f64.to_bits() + 1);
        let nudged: Summary = [1.0, 2.0, ulp].into_iter().collect();
        assert_ne!(a.checksum(), nudged.checksum());
        // And the count alone (empty vs one zero observation).
        let empty = Summary::new();
        let zero: Summary = [0.0].into_iter().collect();
        assert_ne!(empty.checksum(), zero.checksum());
        // In-order merge preserves the checksum exactly.
        let mut merged: Summary = [1.0].into_iter().collect();
        merged.merge(&[2.0, 3.0].into_iter().collect());
        assert_eq!(a.checksum(), merged.checksum());
    }

    #[test]
    fn merging_an_empty_summary_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.values(), before.values());
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.values(), before.values());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn welford_agrees_with_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let s: Summary = xs.iter().copied().collect();
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        }

        #[test]
        fn quantiles_are_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let s: Summary = xs.iter().copied().collect();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
            for w in qs.windows(2) {
                prop_assert!(s.quantile(w[0]) <= s.quantile(w[1]) + 1e-12);
            }
            prop_assert_eq!(s.quantile(0.0), s.min());
            prop_assert_eq!(s.quantile(1.0), s.max());
        }
    }
}
