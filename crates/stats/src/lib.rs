//! Statistics for simulation experiments.
//!
//! Turning raw Monte-Carlo runs into the rows of the paper's tables needs a
//! small, dependable statistics layer:
//!
//! * [`Summary`] — streaming mean/variance (Welford), min/max, quantiles,
//!   and normal-approximation 95% confidence intervals.
//! * [`LinearFit`] / [`fit_against`] — least-squares fits used to estimate
//!   scaling shapes (`T(n) ≈ a·lg n + b`, power-law exponents on log-log
//!   axes).
//! * [`Histogram`] — integer histograms with tail sums, for survivor-count
//!   distributions (Lemma 7).
//! * [`chi_square_homogeneity`] / [`quantile_bins`] — Pearson homogeneity
//!   tests over shared quantile bins, used to pin the engines' execution
//!   paths (per-agent, compiled, jump-scheduled) to one stabilization law.
//! * [`theory`] — closed-form reference curves from the paper: the lottery
//!   game bound `2^{1−i}`, the Lemma 2 epidemic tail, coupon collector,
//!   harmonic numbers, and Chernoff evaluators.
//! * [`Table`] — plain-text/markdown/CSV rendering for experiment output.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binomial;
mod chisq;
mod histogram;
mod regression;
mod summary;
mod table;
pub mod theory;

pub use binomial::{wilson95, wilson_interval};
pub use chisq::{
    chi_square_critical, chi_square_homogeneity, chi_square_samples, quantile_bins, ChiSquare,
};
pub use histogram::Histogram;
pub use regression::{fit_against, fit_log2, fit_power_law, LinearFit};
pub use summary::Summary;
pub use table::Table;
