//! Pearson chi-square tests for comparing binned samples.
//!
//! Used by the engine-equivalence suites to pin different execution paths
//! to the *same law*: the stabilization-time histograms of the paths form
//! the rows of a contingency table, and the homogeneity statistic is
//! compared against an asymptotic critical value. The suites grew with the
//! engine — from the original three-way comparison (per-agent, compiled
//! count, jump-scheduled count) to the four-tier comparison that adds the
//! hypergeometric batch tier; [`chi_square_samples`] wraps the
//! quantile-binning + homogeneity pipeline those k-way suites share.

/// A computed chi-square homogeneity statistic with its degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The Pearson statistic `Σ (O − E)² / E`.
    pub statistic: f64,
    /// Degrees of freedom `(rows − 1) · (occupied columns − 1)`.
    pub df: usize,
}

impl ChiSquare {
    /// Whether the statistic stays below the asymptotic critical value at
    /// significance `alpha` (i.e. the samples are consistent with one law).
    ///
    /// A degenerate table with a single occupied column has `df = 0` and a
    /// statistic of exactly 0 (every observation equals its expectation);
    /// that is trivially homogeneous and accepted at any level.
    pub fn accepts(&self, alpha: f64) -> bool {
        if self.df == 0 {
            return true;
        }
        self.statistic < chi_square_critical(self.df, alpha)
    }
}

/// Pearson chi-square homogeneity statistic for an `r × c` contingency
/// table: `rows[i][j]` counts sample `i`'s observations in bin `j`. Columns
/// whose total is zero carry no information and are dropped (the degrees of
/// freedom shrink accordingly).
///
/// # Panics
///
/// Panics if fewer than two rows are given, rows disagree in length, or any
/// row is entirely empty.
///
/// # Example
///
/// ```
/// use pp_stats::chi_square_homogeneity;
///
/// // Two samples with identical distributions: statistic 0.
/// let c = chi_square_homogeneity(&[&[10, 20, 30], &[10, 20, 30]]);
/// assert_eq!(c.statistic, 0.0);
/// assert_eq!(c.df, 2);
/// ```
pub fn chi_square_homogeneity(rows: &[&[u64]]) -> ChiSquare {
    assert!(rows.len() >= 2, "homogeneity needs at least two samples");
    let bins = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == bins),
        "all samples must use the same bin edges"
    );
    let row_totals: Vec<u64> = rows.iter().map(|r| r.iter().sum()).collect();
    assert!(
        row_totals.iter().all(|&t| t > 0),
        "every sample must contain at least one observation"
    );
    let grand: u64 = row_totals.iter().sum();
    let mut statistic = 0.0;
    let mut occupied = 0usize;
    for j in 0..bins {
        let col: u64 = rows.iter().map(|r| r[j]).sum();
        if col == 0 {
            continue;
        }
        occupied += 1;
        for (i, row) in rows.iter().enumerate() {
            let expect = row_totals[i] as f64 * col as f64 / grand as f64;
            let o = row[j] as f64;
            statistic += (o - expect) * (o - expect) / expect;
        }
    }
    let df = (rows.len() - 1) * occupied.saturating_sub(1);
    ChiSquare { statistic, df }
}

/// Upper critical value of the chi-square distribution with `df` degrees of
/// freedom at significance `alpha ∈ {0.05, 0.01, 0.001}`: tabulated exactly
/// for `df ≤ 10` (where the tests in this workspace live and where cube
/// approximations are weakest), the Wilson–Hilferty cube beyond (accurate to
/// well under 1% there).
///
/// # Panics
///
/// Panics if `df == 0` or `alpha` is not one of the supported levels.
pub fn chi_square_critical(df: usize, alpha: f64) -> f64 {
    assert!(df > 0, "critical value undefined for df = 0");
    const TABLE_05: [f64; 10] = [
        3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307,
    ];
    const TABLE_01: [f64; 10] = [
        6.635, 9.210, 11.345, 13.277, 15.086, 16.812, 18.475, 20.090, 21.666, 23.209,
    ];
    const TABLE_001: [f64; 10] = [
        10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124, 27.877, 29.588,
    ];
    let (table, z): (&[f64; 10], f64) = if alpha == 0.05 {
        (&TABLE_05, 1.6448536269514722)
    } else if alpha == 0.01 {
        (&TABLE_01, 2.3263478740408408)
    } else if alpha == 0.001 {
        (&TABLE_001, 3.090232306167813)
    } else {
        panic!("unsupported alpha {alpha}; use 0.05, 0.01, or 0.001");
    };
    if df <= 10 {
        return table[df - 1];
    }
    let d = df as f64;
    let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
    d * t * t * t
}

/// Bins each sample of `samples` into `bins` equal-probability bins defined
/// by the pooled empirical quantiles, returning one histogram per sample.
///
/// Shared data-driven edges make the histograms directly comparable in
/// [`chi_square_homogeneity`] without choosing bin widths by hand; pooled
/// quantile edges keep every column populated in expectation, which is what
/// the asymptotic chi-square approximation needs.
///
/// # Panics
///
/// Panics if `bins < 2` or any sample is empty.
pub fn quantile_bins(samples: &[&[f64]], bins: usize) -> Vec<Vec<u64>> {
    assert!(bins >= 2, "need at least two bins");
    assert!(samples.iter().all(|s| !s.is_empty()), "empty sample");
    let mut pooled: Vec<f64> = samples.iter().flat_map(|s| s.iter().copied()).collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    // Interior edges at pooled quantiles k/bins, k = 1..bins−1.
    let edges: Vec<f64> = (1..bins)
        .map(|k| pooled[(k * pooled.len() / bins).min(pooled.len() - 1)])
        .collect();
    samples
        .iter()
        .map(|s| {
            let mut h = vec![0u64; bins];
            for &x in *s {
                let b = edges.partition_point(|&e| e <= x);
                h[b] += 1;
            }
            h
        })
        .collect()
}

/// One-call homogeneity test over raw (unbinned) samples: bins all samples
/// into `bins` shared pooled-quantile bins (see [`quantile_bins`]) and
/// returns the Pearson homogeneity statistic over the resulting `k × bins`
/// contingency table.
///
/// This is the k-way engine-tier comparison as a single call — e.g. the
/// 4-tier suite passes one stabilization-time sample per execution tier:
///
/// ```
/// use pp_stats::chi_square_samples;
///
/// let a: Vec<f64> = (0..200).map(|i| (i % 40) as f64).collect();
/// let b: Vec<f64> = (0..200).map(|i| ((i + 7) % 40) as f64).collect();
/// let c = chi_square_samples(&[&a, &b], 5);
/// assert!(c.accepts(0.001), "same law must be accepted");
/// ```
///
/// # Panics
///
/// Panics if fewer than two samples are given, any sample is empty, or
/// `bins < 2` (propagated from [`quantile_bins`] /
/// [`chi_square_homogeneity`]).
pub fn chi_square_samples(samples: &[&[f64]], bins: usize) -> ChiSquare {
    let hists = quantile_bins(samples, bins);
    let rows: Vec<&[u64]> = hists.iter().map(|h| h.as_slice()).collect();
    chi_square_homogeneity(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_score_zero() {
        let c = chi_square_homogeneity(&[&[5, 9, 2, 7], &[5, 9, 2, 7], &[5, 9, 2, 7]]);
        assert_eq!(c.statistic, 0.0);
        assert_eq!(c.df, 6);
        assert!(c.accepts(0.001));
    }

    #[test]
    fn hand_computed_two_by_two() {
        // O = [[10, 20], [20, 10]]; row totals 30/30, col totals 30/30,
        // E = 15 everywhere; statistic = 4 · 25/15 = 20/3.
        let c = chi_square_homogeneity(&[&[10, 20], &[20, 10]]);
        assert!((c.statistic - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.df, 1);
        assert!(!c.accepts(0.05));
    }

    #[test]
    fn empty_columns_are_dropped() {
        let a = chi_square_homogeneity(&[&[10, 0, 20], &[12, 0, 18]]);
        let b = chi_square_homogeneity(&[&[10, 20], &[12, 18]]);
        assert!((a.statistic - b.statistic).abs() < 1e-12);
        assert_eq!(a.df, b.df);
    }

    #[test]
    fn critical_values_match_tables() {
        // Tabulated range is exact; the Wilson–Hilferty tail must agree with
        // reference quantiles (Abramowitz & Stegun) to well under 1%.
        for (df, alpha, expect) in [
            (1, 0.05, 3.841),
            (5, 0.05, 11.070),
            (10, 0.05, 18.307),
            (5, 0.01, 15.086),
            (9, 0.001, 27.877),
            (20, 0.05, 31.410),
            (30, 0.01, 50.892),
            (24, 0.001, 51.179),
        ] {
            let got = chi_square_critical(df, alpha);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.005, "df={df} alpha={alpha}: {got} vs {expect}");
        }
    }

    #[test]
    fn quantile_bins_balance_pooled_mass() {
        let a: Vec<f64> = (0..100).map(f64::from).collect();
        let b: Vec<f64> = (0..100).map(|x| f64::from(x) + 0.5).collect();
        let hists = quantile_bins(&[&a, &b], 4);
        for h in &hists {
            assert_eq!(h.iter().sum::<u64>(), 100);
            for &c in h {
                assert!((20..=30).contains(&(c as i64)), "unbalanced bin {c}");
            }
        }
        let c = chi_square_homogeneity(&[&hists[0], &hists[1]]);
        assert!(c.accepts(0.05), "near-identical samples must be accepted");
    }

    #[test]
    fn single_occupied_column_is_trivially_homogeneous() {
        // All observations in one bin: df = 0, statistic 0 — accepted, not
        // a panic in chi_square_critical.
        let c = chi_square_homogeneity(&[&[0, 7, 0], &[0, 3, 0]]);
        assert_eq!(c.df, 0);
        assert_eq!(c.statistic, 0.0);
        assert!(c.accepts(0.05));
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        chi_square_homogeneity(&[&[1, 2]]);
    }

    #[test]
    fn samples_wrapper_matches_manual_pipeline() {
        let a: Vec<f64> = (0..300).map(|i| (i % 60) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| ((i * 7) % 60) as f64).collect();
        let c: Vec<f64> = (0..300).map(|i| ((i * 11) % 60) as f64).collect();
        let d: Vec<f64> = (0..300).map(|i| ((i * 13) % 60) as f64).collect();
        let direct = chi_square_samples(&[&a, &b, &c, &d], 6);
        let hists = quantile_bins(&[&a, &b, &c, &d], 6);
        let manual = chi_square_homogeneity(&[&hists[0], &hists[1], &hists[2], &hists[3]]);
        assert_eq!(direct.statistic, manual.statistic);
        assert_eq!(direct.df, manual.df);
        // Four samples of the same discrete-uniform law are homogeneous.
        assert!(direct.accepts(0.001));
    }

    #[test]
    fn samples_wrapper_detects_a_diverging_tier() {
        let same: Vec<f64> = (0..400).map(|i| (i % 50) as f64).collect();
        let shifted: Vec<f64> = (0..400).map(|i| (i % 50) as f64 + 30.0).collect();
        let c = chi_square_samples(&[&same, &same.clone(), &shifted], 5);
        assert!(!c.accepts(0.001), "a shifted law must be rejected");
    }
}
