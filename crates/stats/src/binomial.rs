//! Confidence intervals for binomial proportions.

/// The Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` bounds for the success probability given
/// `successes` out of `trials` at the given `z` score (1.96 ≈ 95%).
/// Unlike the normal approximation, Wilson behaves sensibly near 0 and 1 and
/// for small samples — exactly where the paper's w.h.p. experiments live.
///
/// # Panics
///
/// Panics if `trials == 0`, `successes > trials`, or `z` is not positive.
///
/// # Example
///
/// ```
/// use pp_stats::wilson_interval;
///
/// let (lo, hi) = wilson_interval(9, 10, 1.96);
/// assert!(lo > 0.5 && hi < 1.0);
/// assert!(lo < 0.9 && hi > 0.9);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "more successes than trials");
    assert!(z > 0.0, "z score must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The 95% Wilson interval.
pub fn wilson95(successes: u64, trials: u64) -> (f64, f64) {
    wilson_interval(successes, trials, 1.96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_the_point_estimate() {
        for (s, t) in [(0u64, 10u64), (5, 10), (10, 10), (500, 1000), (1, 1000)] {
            let p = s as f64 / t as f64;
            let (lo, hi) = wilson95(s, t);
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{s}/{t}: [{lo}, {hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn extreme_proportions_stay_inside_unit_interval() {
        let (lo, hi) = wilson95(0, 20);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25, "hi = {hi}");
        let (lo, hi) = wilson95(20, 20);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.75 && lo < 1.0, "lo = {lo}");
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let (lo1, hi1) = wilson95(50, 100);
        let (lo2, hi2) = wilson95(5000, 10_000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn higher_confidence_widens() {
        let (lo95, hi95) = wilson_interval(30, 100, 1.96);
        let (lo99, hi99) = wilson_interval(30, 100, 2.576);
        assert!(lo99 < lo95 && hi99 > hi95);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        wilson95(0, 0);
    }

    #[test]
    #[should_panic(expected = "more successes")]
    fn overflow_successes_panics() {
        wilson95(11, 10);
    }

    #[test]
    fn known_value_spot_check() {
        // Classic example: 9/10 at 95% → approximately (0.596, 0.982).
        let (lo, hi) = wilson95(9, 10);
        assert!((lo - 0.596).abs() < 0.01, "lo = {lo}");
        assert!((hi - 0.982).abs() < 0.01, "hi = {hi}");
    }
}
