//! Integer histograms for empirical distributions.

/// A histogram over non-negative integer outcomes (e.g. surviving-leader
/// counts in the Lemma 7 experiment).
///
/// # Example
///
/// ```
/// use pp_stats::Histogram;
///
/// let h: Histogram = [1u64, 1, 2, 3, 1].into_iter().collect();
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.count(1), 3);
/// assert!((h.probability(1) - 0.6).abs() < 1e-12);
/// assert!((h.tail_probability(2) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Largest observed value (`None` when empty).
    pub fn max_value(&self) -> Option<u64> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|idx| idx as u64)
    }

    /// Empirical probability `P[X = value]` (0 when empty).
    pub fn probability(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Empirical tail probability `P[X ≥ value]` (0 when empty).
    pub fn tail_probability(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let from = value as usize;
        let tail: u64 = self.counts.iter().skip(from).sum();
        tail as f64 / self.total as f64
    }

    /// Empirical mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        weighted as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs with positive counts.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.probability(1), 0.0);
        assert_eq!(h.tail_probability(0), 0.0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn counting_and_probabilities() {
        let h: Histogram = [0u64, 1, 1, 4].into_iter().collect();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.max_value(), Some(4));
        assert!((h.probability(4) - 0.25).abs() < 1e-12);
        assert!((h.tail_probability(1) - 0.75).abs() < 1e-12);
        assert!((h.tail_probability(5) - 0.0).abs() < 1e-12);
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tail_probabilities_are_monotone() {
        let h: Histogram = (0..100u64).map(|x| x % 7).collect();
        let mut last = 1.0 + 1e-12;
        for v in 0..10 {
            let t = h.tail_probability(v);
            assert!(t <= last);
            last = t;
        }
        assert!((h.tail_probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_skips_zeros() {
        let h: Histogram = [0u64, 5].into_iter().collect();
        let items: Vec<_> = h.iter().collect();
        assert_eq!(items, vec![(0, 1), (5, 1)]);
    }
}
