//! Leader-election-specific verification built on the reachability graph.

use crate::{ReachabilityGraph, VerifyError};
use pp_engine::{LeaderElection, Role};

/// The verdict of exhaustively checking a leader-election protocol on a
/// small population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElectionReport {
    /// Population size checked.
    pub n: usize,
    /// Number of reachable configurations.
    pub reachable: usize,
    /// Whether the whole space was explored (`false` = bounded check).
    pub complete: bool,
    /// No reachable configuration has zero leaders.
    pub never_leaderless: bool,
    /// The leader count never increases along any edge.
    pub monotone: bool,
    /// Number of *safe* configurations: exactly one leader and every
    /// configuration reachable from them keeps that one leader (the paper's
    /// `S_P`).
    pub safe_configs: usize,
    /// Every reachable configuration can reach a safe configuration — on a
    /// finite chain this is exactly "stabilizes with probability 1".
    pub always_stabilizes: bool,
}

impl ElectionReport {
    /// Whether the protocol is a correct leader-election protocol on this
    /// population (in the exhaustive, not probabilistic, sense).
    pub fn is_correct(&self) -> bool {
        self.never_leaderless && self.safe_configs > 0 && self.always_stabilizes
    }
}

/// Exhaustively verifies a leader-election protocol on `n` agents.
///
/// # Errors
///
/// Propagates [`VerifyError`] from exploration; on
/// [`VerifyError::TooManyConfigurations`] use a larger `limit` or interpret
/// the bounded variant via [`ReachabilityGraph::explore_bounded`] directly.
///
/// # Example
///
/// ```
/// use pp_protocols::Fratricide;
/// use pp_verify::verify_leader_election;
///
/// let report = verify_leader_election(&Fratricide, 5, 10_000)?;
/// assert!(report.is_correct());
/// assert!(report.monotone);
/// # Ok::<(), pp_verify::VerifyError>(())
/// ```
pub fn verify_leader_election<P>(
    protocol: &P,
    n: usize,
    limit: usize,
) -> Result<ElectionReport, VerifyError>
where
    P: LeaderElection,
    P::State: Ord,
{
    let g = ReachabilityGraph::explore_bounded(protocol, n, limit)?;
    let leaders = |c: &[P::State]| -> usize {
        c.iter()
            .filter(|s| protocol.output(s) == Role::Leader)
            .count()
    };

    let never_leaderless = g.check_invariant(|c| leaders(c) >= 1).is_none();

    let mut monotone = true;
    'outer: for id in 0..g.len() {
        let here = leaders(g.config(id));
        for &succ in g.successors(id) {
            if leaders(g.config(succ)) > here {
                monotone = false;
                break 'outer;
            }
        }
    }

    let stable = g.stable_set(|c| leaders(c) == 1);
    let safe_configs = stable.iter().filter(|&&s| s).count();
    let always_stabilizes = safe_configs > 0 && g.all_reach(&stable);

    Ok(ElectionReport {
        n,
        reachable: g.len(),
        complete: g.is_complete(),
        never_leaderless,
        monotone,
        safe_configs,
        always_stabilizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{LeaderElection, Protocol};

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {
        fn monotone_leaders(&self) -> bool {
            true
        }
    }

    #[test]
    fn fratricide_is_verified_correct() {
        for n in 2..=8 {
            let report = verify_leader_election(&Frat, n, 100_000).unwrap();
            assert!(report.is_correct(), "n={n}: {report:?}");
            assert!(report.monotone);
            assert!(report.complete);
            assert_eq!(report.reachable, n);
            assert_eq!(report.safe_configs, 1);
        }
    }

    /// A deliberately broken "election" that can eliminate every leader:
    /// L × L → F × F.
    #[derive(Debug, Clone, Copy)]
    struct MutualDestruction;

    impl Protocol for MutualDestruction {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (false, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for MutualDestruction {}

    #[test]
    fn broken_protocol_is_caught() {
        let report = verify_leader_election(&MutualDestruction, 4, 100_000).unwrap();
        assert!(!report.never_leaderless, "all leaders can die");
        assert!(!report.is_correct());
    }

    /// A protocol that flips leadership back and forth (non-monotone and
    /// never stabilizing): L × F → F × L.
    #[derive(Debug, Clone, Copy)]
    struct Swap;

    impl Protocol for Swap {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a != *b {
                (*b, *a)
            } else if *a && *b {
                (true, false)
            } else {
                (false, false)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Swap {}

    #[test]
    fn swapping_leadership_has_no_safe_configuration_issue() {
        // Swap keeps exactly one leader once reached, but outputs keep
        // moving between agents. In the *anonymous multiset* view the
        // 1-leader configuration is a single canonical config that maps to
        // itself, so it is still "safe" — this documents that the verifier
        // works up to agent identity, as the population model itself does.
        let report = verify_leader_election(&Swap, 3, 10_000).unwrap();
        assert!(report.safe_configs >= 1);
    }
}
