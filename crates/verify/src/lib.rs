//! Exhaustive verification of population protocols on small populations.
//!
//! Random simulation can estimate probabilities; it cannot prove safety. For
//! small `n`, however, the population-protocol model is a finite Markov
//! chain over *multisets* of states (agents are anonymous, the interaction
//! graph is complete), and its entire reachable space can be enumerated.
//! This crate does exactly that:
//!
//! * [`ReachabilityGraph`] — BFS over canonical (sorted) configurations,
//!   with invariant checking, greatest-fixpoint *stable sets*, and backward
//!   reachability.
//! * [`verify_leader_election`] — the paper's Section 2 definitions, checked
//!   exhaustively: never leaderless, monotone leader count, non-empty safe
//!   set `S_P`, and "every reachable configuration can reach `S_P`" (which on
//!   a finite chain is exactly stabilization with probability 1).
//!
//! The integration tests of the workspace run these checks against the
//! paper's `P_LL` (bounded exploration: its timer variables make the space
//! large) and against its symmetric coin machinery, where exhaustiveness
//! proves the `#F0 = #F1` fairness invariant over *all* reachable
//! configurations, not just sampled runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod election;
mod explorer;
mod hitting;

pub use election::{verify_leader_election, ElectionReport};
pub use explorer::{ReachabilityGraph, VerifyError};
pub use hitting::MarkovChain;
