//! Exhaustive reachability analysis over canonical configurations.

use pp_engine::Protocol;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The reachable configuration space exceeded the exploration budget.
    TooManyConfigurations {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// The population must have at least two agents.
    PopulationTooSmall {
        /// The offending population size.
        n: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooManyConfigurations { limit } => {
                write!(
                    f,
                    "reachable configuration space exceeds the limit of {limit}"
                )
            }
            VerifyError::PopulationTooSmall { n } => {
                write!(f, "population of {n} agents is too small; need at least 2")
            }
        }
    }
}

impl Error for VerifyError {}

/// The reachability graph of a protocol on a fixed population size.
///
/// Agents are anonymous and the interaction graph is complete, so a
/// configuration is canonically a sorted multiset of states. Nodes are
/// reachable canonical configurations; edges are the distinct one-interaction
/// successors.
///
/// # Example
///
/// ```
/// use pp_protocols::Fratricide;
/// use pp_verify::ReachabilityGraph;
///
/// let g = ReachabilityGraph::explore(&Fratricide, 4, 10_000)?;
/// // Fratricide on n agents reaches exactly n configurations
/// // (k leaders for k = n, …, 1).
/// assert_eq!(g.len(), 4);
/// # Ok::<(), pp_verify::VerifyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph<S> {
    configs: Vec<Vec<S>>,
    successors: Vec<Vec<usize>>,
    initial: usize,
    complete: bool,
}

impl<S: Clone + Ord + std::hash::Hash + std::fmt::Debug> ReachabilityGraph<S> {
    /// Explores every configuration reachable from the uniform initial
    /// configuration of `protocol` with `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::PopulationTooSmall`] when `n < 2`, and
    /// [`VerifyError::TooManyConfigurations`] if more than `limit`
    /// configurations are reachable (use
    /// [`explore_bounded`](ReachabilityGraph::explore_bounded) to keep the
    /// partial graph instead).
    pub fn explore<P>(protocol: &P, n: usize, limit: usize) -> Result<Self, VerifyError>
    where
        P: Protocol<State = S>,
    {
        let g = Self::explore_bounded(protocol, n, limit)?;
        if !g.complete {
            return Err(VerifyError::TooManyConfigurations { limit });
        }
        Ok(g)
    }

    /// Like [`explore`](ReachabilityGraph::explore), but on hitting the limit
    /// returns the partial graph (check [`is_complete`](ReachabilityGraph::is_complete)).
    /// Invariant violations found in a partial graph are still real
    /// violations; absence of violations is then only a bounded guarantee.
    pub fn explore_bounded<P>(protocol: &P, n: usize, limit: usize) -> Result<Self, VerifyError>
    where
        P: Protocol<State = S>,
    {
        if n < 2 {
            return Err(VerifyError::PopulationTooSmall { n });
        }
        let mut configs: Vec<Vec<S>> = Vec::new();
        let mut index: HashMap<Vec<S>, usize> = HashMap::new();
        let mut successors: Vec<Vec<usize>> = Vec::new();
        let mut complete = true;

        let initial = vec![protocol.initial_state(); n];
        configs.push(initial.clone());
        index.insert(initial, 0);
        successors.push(Vec::new());

        // Breadth-first order: bounded exploration then covers every
        // configuration within some interaction distance of the initial one,
        // which is the meaningful prefix to check invariants on.
        let mut frontier = std::collections::VecDeque::from([0usize]);
        while let Some(id) = frontier.pop_front() {
            let config = configs[id].clone();
            let mut succ: Vec<usize> = Vec::new();
            // Ordered pairs of *positions* (i, j), i ≠ j, deduplicated by the
            // resulting canonical configuration. Iterating positions rather
            // than distinct values keeps multiplicity handling trivial; the
            // dedup keeps the branching factor at the number of distinct
            // outcomes.
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let (a, b) = protocol.transition(&config[i], &config[j]);
                    let mut next = config.clone();
                    next[i] = a;
                    next[j] = b;
                    next.sort_unstable();
                    let next_id = match index.get(&next) {
                        Some(&id) => id,
                        None => {
                            if configs.len() >= limit {
                                complete = false;
                                continue;
                            }
                            let new_id = configs.len();
                            configs.push(next.clone());
                            index.insert(next, new_id);
                            successors.push(Vec::new());
                            frontier.push_back(new_id);
                            new_id
                        }
                    };
                    if !succ.contains(&next_id) {
                        succ.push(next_id);
                    }
                }
            }
            succ.sort_unstable();
            successors[id] = succ;
        }

        Ok(Self {
            configs,
            successors,
            initial: 0,
            complete,
        })
    }

    /// Number of reachable configurations found.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether no configurations were found (never true: the initial
    /// configuration is always present).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Whether the whole reachable space was explored (`false` = the limit
    /// was hit and the graph is a reachable *subset*).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The canonical initial configuration's id.
    pub fn initial_id(&self) -> usize {
        self.initial
    }

    /// The canonical configuration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn config(&self, id: usize) -> &[S] {
        &self.configs[id]
    }

    /// Iterates over all reachable canonical configurations.
    pub fn iter(&self) -> impl Iterator<Item = &[S]> {
        self.configs.iter().map(|c| c.as_slice())
    }

    /// The distinct successor ids of configuration `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.successors[id]
    }

    /// Checks `invariant` on every explored configuration; returns the first
    /// violating configuration, if any.
    pub fn check_invariant<F>(&self, mut invariant: F) -> Option<&[S]>
    where
        F: FnMut(&[S]) -> bool,
    {
        self.configs
            .iter()
            .find(|c| !invariant(c))
            .map(|c| c.as_slice())
    }

    /// The set of *stable* configurations under `property`: configurations
    /// from which every reachable configuration (including themselves)
    /// satisfies `property`. Computed as a greatest fixpoint.
    ///
    /// For leader election with `property` = "exactly one leader", this is
    /// the safe set `S_P` of the paper's Section 2.
    pub fn stable_set<F>(&self, mut property: F) -> Vec<bool>
    where
        F: FnMut(&[S]) -> bool,
    {
        let mut stable: Vec<bool> = self.configs.iter().map(|c| property(c)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..self.configs.len() {
                if stable[id] && self.successors[id].iter().any(|&s| !stable[s]) {
                    stable[id] = false;
                    changed = true;
                }
            }
        }
        stable
    }

    /// Whether every explored configuration can reach some configuration in
    /// `targets` (a membership mask). With `targets` closed under reachability
    /// (e.g. a [`stable_set`](ReachabilityGraph::stable_set)), this is
    /// exactly "the protocol converges with probability 1" on a finite
    /// chain under any uniformly random scheduler.
    pub fn all_reach(&self, targets: &[bool]) -> bool {
        assert_eq!(targets.len(), self.configs.len(), "mask length mismatch");
        // Backward reachability from targets.
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); self.configs.len()];
        for (id, succ) in self.successors.iter().enumerate() {
            for &t in succ {
                predecessors[t].push(id);
            }
        }
        let mut can_reach = targets.to_vec();
        let mut frontier: Vec<usize> = (0..self.configs.len()).filter(|&i| targets[i]).collect();
        while let Some(id) = frontier.pop() {
            for &p in &predecessors[id] {
                if !can_reach[p] {
                    can_reach[p] = true;
                    frontier.push(p);
                }
            }
        }
        can_reach.iter().all(|&r| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::Protocol;

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = bool;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> bool {
            *s
        }
    }

    fn leaders(c: &[bool]) -> usize {
        c.iter().filter(|&&l| l).count()
    }

    #[test]
    fn fratricide_reaches_exactly_n_configurations() {
        for n in 2..=7 {
            let g = ReachabilityGraph::explore(&Frat, n, 1000).unwrap();
            assert_eq!(g.len(), n, "k leaders for k = n..1");
            assert!(g.is_complete());
        }
    }

    #[test]
    fn fratricide_invariant_leader_positive() {
        let g = ReachabilityGraph::explore(&Frat, 6, 1000).unwrap();
        assert!(g.check_invariant(|c| leaders(c) >= 1).is_none());
        // A deliberately false invariant is reported with a witness.
        let violation = g.check_invariant(|c| leaders(c) >= 2);
        assert!(violation.is_some());
        assert_eq!(leaders(violation.unwrap()), 1);
    }

    #[test]
    fn fratricide_stable_set_is_single_leader() {
        let g = ReachabilityGraph::explore(&Frat, 5, 1000).unwrap();
        let stable = g.stable_set(|c| leaders(c) == 1);
        let stable_count = stable.iter().filter(|&&s| s).count();
        assert_eq!(stable_count, 1, "exactly the 1-leader configuration");
        assert!(g.all_reach(&stable), "every configuration can stabilize");
    }

    #[test]
    fn initial_configuration_is_all_initial_states() {
        let g = ReachabilityGraph::explore(&Frat, 4, 1000).unwrap();
        assert_eq!(g.config(g.initial_id()), &[true; 4]);
        assert!(!g.is_empty());
    }

    #[test]
    fn bounded_exploration_reports_incompleteness() {
        #[derive(Debug, Clone, Copy)]
        struct Counter;
        impl Protocol for Counter {
            type State = u64;
            type Output = u64;
            fn initial_state(&self) -> u64 {
                0
            }
            fn transition(&self, a: &u64, b: &u64) -> (u64, u64) {
                (a + 1, *b)
            }
            fn output(&self, s: &u64) -> u64 {
                *s
            }
        }
        assert!(matches!(
            ReachabilityGraph::explore(&Counter, 3, 50),
            Err(VerifyError::TooManyConfigurations { limit: 50 })
        ));
        let g = ReachabilityGraph::explore_bounded(&Counter, 3, 50).unwrap();
        assert!(!g.is_complete());
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn rejects_tiny_population() {
        assert!(matches!(
            ReachabilityGraph::explore(&Frat, 1, 100),
            Err(VerifyError::PopulationTooSmall { n: 1 })
        ));
    }

    #[test]
    fn error_display() {
        assert!(VerifyError::TooManyConfigurations { limit: 9 }
            .to_string()
            .contains('9'));
        assert!(VerifyError::PopulationTooSmall { n: 1 }
            .to_string()
            .contains("at least 2"));
    }

    /// Max-propagation: successors and stability behave as expected.
    #[derive(Debug, Clone, Copy)]
    struct Max;
    impl Protocol for Max {
        type State = u8;
        type Output = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }
        fn output(&self, s: &u8) -> u8 {
            *s
        }
    }

    #[test]
    fn silent_protocol_has_single_reachable_configuration() {
        // From all-zero, Max never changes anything.
        let g = ReachabilityGraph::explore(&Max, 4, 100).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.successors(0), &[0]);
    }
}
