//! Exact expected hitting times on the configuration Markov chain.
//!
//! Under the uniformly random scheduler, a population protocol on `n` agents
//! is a finite Markov chain over canonical configurations: each ordered
//! position pair fires with probability `1/(n(n−1))`. For small `n` the
//! chain can be built explicitly and the *exact* expected number of steps to
//! reach a target set solved numerically — ground truth against which
//! Monte-Carlo estimates and closed forms are validated.

use crate::VerifyError;
use pp_engine::Protocol;
use std::collections::HashMap;

/// The configuration Markov chain of a protocol on `n` agents, with exact
/// transition probabilities.
///
/// # Example
///
/// Fratricide's expected stabilization steps have the closed form
/// `Σ_{k=2}^{n} n(n−1)/(k(k−1)) = (n−1)²`:
///
/// ```
/// use pp_engine::Role;
/// use pp_protocols::Fratricide;
/// use pp_verify::MarkovChain;
///
/// let chain = MarkovChain::build(&Fratricide, 5, 10_000)?;
/// let expected = chain.expected_steps_to(|c| {
///     c.iter().filter(|&&leader| leader).count() == 1
/// })?;
/// assert!((expected - 16.0).abs() < 1e-6); // (5-1)^2
/// # Ok::<(), pp_verify::VerifyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChain<S> {
    configs: Vec<Vec<S>>,
    /// Per-config sparse transition row: (successor id, probability),
    /// including the self-loop.
    transitions: Vec<Vec<(usize, f64)>>,
}

impl<S: Clone + Ord + std::hash::Hash + std::fmt::Debug> MarkovChain<S> {
    /// Builds the chain reachable from the uniform initial configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::PopulationTooSmall`] when `n < 2` and
    /// [`VerifyError::TooManyConfigurations`] when more than `limit`
    /// configurations are reachable (the chain must be complete for hitting
    /// times to be exact).
    pub fn build<P>(protocol: &P, n: usize, limit: usize) -> Result<Self, VerifyError>
    where
        P: Protocol<State = S>,
    {
        if n < 2 {
            return Err(VerifyError::PopulationTooSmall { n });
        }
        let mut configs: Vec<Vec<S>> = Vec::new();
        let mut index: HashMap<Vec<S>, usize> = HashMap::new();
        let mut transitions: Vec<Vec<(usize, f64)>> = Vec::new();

        let initial = vec![protocol.initial_state(); n];
        configs.push(initial.clone());
        index.insert(initial, 0);
        transitions.push(Vec::new());

        let pair_prob = 1.0 / (n as f64 * (n as f64 - 1.0));
        let mut frontier = std::collections::VecDeque::from([0usize]);
        while let Some(id) = frontier.pop_front() {
            let config = configs[id].clone();
            let mut row: HashMap<usize, f64> = HashMap::new();
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let (a, b) = protocol.transition(&config[i], &config[j]);
                    let mut next = config.clone();
                    next[i] = a;
                    next[j] = b;
                    next.sort_unstable();
                    let next_id = match index.get(&next) {
                        Some(&id) => id,
                        None => {
                            if configs.len() >= limit {
                                return Err(VerifyError::TooManyConfigurations { limit });
                            }
                            let new_id = configs.len();
                            configs.push(next.clone());
                            index.insert(next, new_id);
                            transitions.push(Vec::new());
                            frontier.push_back(new_id);
                            new_id
                        }
                    };
                    *row.entry(next_id).or_insert(0.0) += pair_prob;
                }
            }
            let mut row: Vec<(usize, f64)> = row.into_iter().collect();
            row.sort_unstable_by_key(|&(id, _)| id);
            transitions[id] = row;
        }

        Ok(Self {
            configs,
            transitions,
        })
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the chain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The canonical configuration with the given id (0 = initial).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn config(&self, id: usize) -> &[S] {
        &self.configs[id]
    }

    /// The exact expected number of steps from the initial configuration to
    /// the first configuration satisfying `target`, solved by Gauss–Seidel
    /// iteration on the first-step equations
    /// `E[x] = 1 + Σ_y P(x→y)·E[y]` with `E ≡ 0` on the target set.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::TooManyConfigurations`] (reused as a
    /// no-convergence signal) if some reachable configuration cannot reach
    /// the target set, in which case the expectation is infinite.
    pub fn expected_steps_to<F>(&self, mut target: F) -> Result<f64, VerifyError>
    where
        F: FnMut(&[S]) -> bool,
    {
        let n = self.configs.len();
        let is_target: Vec<bool> = self.configs.iter().map(|c| target(c)).collect();

        // Infinite expectation check: every config must reach the target.
        let mut can_reach = is_target.clone();
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, row) in self.transitions.iter().enumerate() {
            for &(t, _) in row {
                if t != id {
                    predecessors[t].push(id);
                }
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| is_target[i]).collect();
        if stack.is_empty() {
            return Err(VerifyError::TooManyConfigurations { limit: 0 });
        }
        while let Some(id) = stack.pop() {
            for &p in &predecessors[id] {
                if !can_reach[p] {
                    can_reach[p] = true;
                    stack.push(p);
                }
            }
        }
        if can_reach.iter().any(|&r| !r) {
            return Err(VerifyError::TooManyConfigurations { limit: 0 });
        }

        // Gauss–Seidel with self-loop elimination:
        // E[x] = (1 + Σ_{y≠x} p_xy E[y]) / (1 − p_xx).
        let mut e = vec![0.0f64; n];
        let mut delta = f64::INFINITY;
        let mut iterations = 0u32;
        while delta > 1e-12 && iterations < 1_000_000 {
            delta = 0.0;
            for x in (0..n).rev() {
                if is_target[x] {
                    continue;
                }
                let mut acc = 1.0;
                let mut self_p = 0.0;
                for &(y, p) in &self.transitions[x] {
                    if y == x {
                        self_p = p;
                    } else {
                        acc += p * e[y];
                    }
                }
                let new = acc / (1.0 - self_p);
                delta = delta.max((new - e[x]).abs());
                e[x] = new;
            }
            iterations += 1;
        }
        Ok(e[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::Protocol;

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = bool;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> bool {
            *s
        }
    }

    fn single_leader(c: &[bool]) -> bool {
        c.iter().filter(|&&l| l).count() == 1
    }

    #[test]
    fn fratricide_matches_closed_form() {
        // E[steps] = (n-1)^2 exactly.
        for n in 2..=8 {
            let chain = MarkovChain::build(&Frat, n, 10_000).unwrap();
            assert_eq!(chain.len(), n);
            let e = chain.expected_steps_to(single_leader).unwrap();
            let expect = ((n - 1) * (n - 1)) as f64;
            assert!(
                (e - expect).abs() < 1e-6,
                "n={n}: exact {e} vs closed form {expect}"
            );
        }
    }

    #[test]
    fn target_already_satisfied_gives_zero() {
        let chain = MarkovChain::build(&Frat, 4, 10_000).unwrap();
        let e = chain.expected_steps_to(|_| true).unwrap();
        assert_eq!(e, 0.0);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let chain = MarkovChain::build(&Frat, 3, 10_000).unwrap();
        // Zero leaders is unreachable for fratricide.
        assert!(chain.expected_steps_to(|c| c.iter().all(|&l| !l)).is_err());
    }

    #[test]
    fn rejects_tiny_population_and_small_limit() {
        assert!(matches!(
            MarkovChain::build(&Frat, 1, 100),
            Err(VerifyError::PopulationTooSmall { n: 1 })
        ));
        assert!(matches!(
            MarkovChain::build(&Frat, 6, 3),
            Err(VerifyError::TooManyConfigurations { limit: 3 })
        ));
    }

    #[test]
    fn exact_time_agrees_with_monte_carlo() {
        use pp_engine::{LeaderElection, Role, Simulation, UniformScheduler};
        use pp_rand::SeedSequence;

        #[derive(Debug, Clone, Copy)]
        struct FratLe;
        impl Protocol for FratLe {
            type State = bool;
            type Output = Role;
            fn initial_state(&self) -> bool {
                true
            }
            fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
                if *a && *b {
                    (true, false)
                } else {
                    (*a, *b)
                }
            }
            fn output(&self, s: &bool) -> Role {
                if *s {
                    Role::Leader
                } else {
                    Role::Follower
                }
            }
        }
        impl LeaderElection for FratLe {
            fn monotone_leaders(&self) -> bool {
                true
            }
        }

        let n = 6;
        let chain = MarkovChain::build(&FratLe, n, 10_000).unwrap();
        let exact = chain
            .expected_steps_to(|c| c.iter().filter(|&&l| l).count() == 1)
            .unwrap();
        let seeds = SeedSequence::new(3);
        let runs = 2000;
        let mut total = 0u64;
        for i in 0..runs {
            let mut sim =
                Simulation::new(FratLe, n, UniformScheduler::seed_from_u64(seeds.seed_at(i)))
                    .unwrap();
            total += sim.run_until_single_leader(u64::MAX).steps;
        }
        let mc = total as f64 / runs as f64;
        assert!(
            (mc / exact - 1.0).abs() < 0.1,
            "Monte Carlo {mc} vs exact {exact}"
        );
    }
}
