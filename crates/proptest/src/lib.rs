//! Offline stand-in for the crates.io `proptest` property-testing crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be fetched. This crate reimplements the API
//! surface the workspace's test modules use — the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter_map`, range and tuple
//! strategies, [`prelude::any`], [`prelude::Just`], `proptest::collection::vec`,
//! and the `proptest!` / `prop_oneof!` / `prop_assert*!` / `prop_assume!`
//! macros — as a plain randomized test runner.
//!
//! Differences from the real crate, deliberately accepted for offline use:
//!
//! * **No shrinking.** A failing case reports the assertion message (which
//!   in this workspace's tests interpolates the offending values) but does
//!   not minimize the input.
//! * **Fixed deterministic seeding.** Each test derives its RNG seed from
//!   the test name, so runs are reproducible; `PROPTEST_CASES` still
//!   overrides the case count (default 256).
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest; no test source needs to change.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving value generation (SplitMix64; self-contained so
/// this crate has no dependencies, not even on `pp-rand`).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`). Modulo bias is irrelevant
    /// at test-generation scale.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` failed); it does not count
    /// toward the case budget.
    Reject,
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// A generator of test values; mirrors `proptest::strategy::Strategy`.
///
/// `generate` returns `None` when a strategy-level filter rejects the draw
/// (the runner retries with fresh randomness).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value, or `None` if this draw was filtered out.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Map generated values through `f`, rejecting draws where it returns
    /// `None`. `whence` labels the filter in rejection diagnostics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Strategy that always yields a clone of one value; mirrors
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Types with a canonical strategy, used by [`prelude::any`]; mirrors
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw a canonical "any value of this type".
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy form of [`Arbitrary`]; returned by [`prelude::any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // A full 64-bit domain wraps `hi - lo + 1` to 0; any u64
                // draw is then in range.
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return Some(rng.next_u64() as $t);
                }
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.unit() * (self.end - self.start))
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.clone().generate(rng)?;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn run_cases<S, F>(name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    // FNV-1a over the test name: distinct, reproducible per-test streams.
    let seed = name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut rng = TestRng::new(seed);
    let mut completed = 0u64;
    let mut rejected = 0u64;
    while completed < cases {
        if rejected > 65_536 {
            panic!("proptest stub: test `{name}` rejected too many cases ({rejected}); loosen the filters");
        }
        let Some(value) = strategy.generate(&mut rng) else {
            rejected += 1;
            continue;
        };
        match test(value) {
            Ok(()) => completed += 1,
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest stub: test `{name}` failed at case {completed}: {msg}")
            }
        }
    }
}

/// The usual imports; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy, TestCaseError,
    };

    /// Canonical strategy for "any value of `T`"; mirrors
    /// `proptest::prelude::any`.
    pub fn any<T: crate::Arbitrary>() -> crate::Any<T> {
        crate::Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Define property tests; mirrors `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `#[test]`-attributed function running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Choose uniformly among several strategies for the same value type;
/// mirrors `proptest::prop_oneof!`. Arms are boxed, so heterogeneous
/// strategy types are fine as long as the value types agree.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<$crate::BoxedStrategy<_>> =
            vec![$($crate::Strategy::boxed($strat)),+];
        $crate::OneOf { arms }
    }};
}

/// See [`prop_oneof!`].
pub struct OneOf<T> {
    /// The boxed alternatives; one is drawn uniformly per generation.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Fallible assertion inside `proptest!` bodies; mirrors
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

/// Fallible inequality assertion; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Reject the current case without failing; mirrors
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{Strategy, TestRng};

    proptest! {
        #[test]
        fn full_domain_inclusive_ranges_do_not_panic(
            a in 0u64..=u64::MAX,
            b in i64::MIN..=i64::MAX,
            c in 0usize..=usize::MAX,
        ) {
            // Any draw is in range by construction; the property under test
            // is that span arithmetic does not wrap to a zero divisor.
            let _ = (a, b, c);
        }

        #[test]
        fn bounded_ranges_respect_bounds(x in 10u32..20, y in -5i64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn filtered_strategies_retry_until_accepted() {
        let strat = (0u32..100).prop_filter_map("evens", |v| (v % 2 == 0).then_some(v));
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let mut v = None;
            while v.is_none() {
                v = strat.generate(&mut rng);
            }
            assert_eq!(v.expect("accepted") % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u32..1000, any::<bool>());
        let draw = |seed| {
            let mut rng = TestRng::new(seed);
            (0..32)
                .map(|_| strat.generate(&mut rng).expect("unfiltered"))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
