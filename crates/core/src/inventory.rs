//! State-space inventory: Table 3 of the paper and the `O(log n)` state
//! count of Lemma 3, computed programmatically from [`PllParams`].

use crate::PllParams;

/// One row of the paper's Table 3: a variable, its owning group, its domain
/// size, and its initial value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableSpec {
    /// The group of agents carrying the variable (`All agents`, `V_B`, …).
    pub group: &'static str,
    /// Variable name as in the paper.
    pub name: &'static str,
    /// Rendered domain, e.g. `{0,...,409}`.
    pub domain: String,
    /// Number of values the variable ranges over.
    pub domain_size: u64,
    /// Rendered initial value (`Undefined` for group variables).
    pub initial: &'static str,
}

/// The rows of Table 3 for the given parameters.
///
/// `tick` is included for fidelity to the paper even though the
/// implementation models it as a transient (see [`PllState`](crate::PllState)
/// docs).
pub fn table3(params: &PllParams) -> Vec<VariableSpec> {
    let lmax = params.lmax() as u64;
    let cmax = params.cmax() as u64;
    let phi = params.phi() as u64;
    vec![
        VariableSpec {
            group: "All agents",
            name: "leader",
            domain: "{false,true}".to_string(),
            domain_size: 2,
            initial: "true",
        },
        VariableSpec {
            group: "All agents",
            name: "tick",
            domain: "{false,true} (transient)".to_string(),
            domain_size: 2,
            initial: "false",
        },
        VariableSpec {
            group: "All agents",
            name: "status",
            domain: "{X,A,B}".to_string(),
            domain_size: 3,
            initial: "X",
        },
        VariableSpec {
            group: "All agents",
            name: "epoch",
            domain: "{1,2,3,4}".to_string(),
            domain_size: 4,
            initial: "1",
        },
        VariableSpec {
            group: "All agents",
            name: "init",
            domain: "{1,2,3,4}".to_string(),
            domain_size: 4,
            initial: "1",
        },
        VariableSpec {
            group: "All agents",
            name: "color",
            domain: "{0,1,2}".to_string(),
            domain_size: 3,
            initial: "0",
        },
        VariableSpec {
            group: "V_B",
            name: "count",
            domain: format!("{{0,...,{}}}", cmax - 1),
            domain_size: cmax,
            initial: "Undefined",
        },
        VariableSpec {
            group: "V_A ∩ V_1",
            name: "levelQ",
            domain: format!("{{0,...,{lmax}}}"),
            domain_size: lmax + 1,
            initial: "Undefined",
        },
        VariableSpec {
            group: "V_A ∩ V_1",
            name: "done",
            domain: "{false,true}".to_string(),
            domain_size: 2,
            initial: "Undefined",
        },
        VariableSpec {
            group: "V_A ∩ (V_2 ∪ V_3)",
            name: "rand",
            domain: format!("{{0,...,{}}}", (1u64 << phi) - 1),
            domain_size: 1u64 << phi,
            initial: "Undefined",
        },
        VariableSpec {
            group: "V_A ∩ (V_2 ∪ V_3)",
            name: "index",
            domain: format!("{{0,...,{phi}}}"),
            domain_size: phi + 1,
            initial: "Undefined",
        },
        VariableSpec {
            group: "V_A ∩ V_4",
            name: "levelB",
            domain: format!("{{0,...,{lmax}}}"),
            domain_size: lmax + 1,
            initial: "Undefined",
        },
    ]
}

/// An upper bound on the number of persistent states per agent, computed as
/// in Lemma 3: common variables (excluding the transient `tick`) times the
/// largest per-group additional domain, summed over groups.
///
/// The bound is `O(m) = O(log n)`: the dominant group is `V_B` with its
/// `c_max = 41m` timer values.
pub fn state_bound(params: &PllParams) -> u64 {
    let common = 2 * 4 * 4 * 3; // leader × epoch × init × color
    let lmax = params.lmax() as u64;
    let cmax = params.cmax() as u64;
    let phi = params.phi() as u64;
    let groups = 1 // V_X
        + cmax // V_B
        + (lmax + 1) * 2 // V_A ∩ V_1
        + (1u64 << phi) * (phi + 1) // V_A ∩ (V_2 ∪ V_3)
        + (lmax + 1); // V_A ∩ V_4
    common * groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_row_count_and_domains() {
        let p = PllParams::for_population(1024).unwrap(); // m = 10
        let rows = table3(&p);
        assert_eq!(rows.len(), 12);
        let count = rows.iter().find(|r| r.name == "count").unwrap();
        assert_eq!(count.domain_size, 410);
        assert_eq!(count.domain, "{0,...,409}");
        let rand = rows.iter().find(|r| r.name == "rand").unwrap();
        assert_eq!(rand.domain_size, 8); // 2^3
        let level_q = rows.iter().find(|r| r.name == "levelQ").unwrap();
        assert_eq!(level_q.domain_size, 51);
        let index = rows.iter().find(|r| r.name == "index").unwrap();
        assert_eq!(index.domain_size, 4); // {0..=3}
    }

    #[test]
    fn state_bound_grows_linearly_in_m_lemma3() {
        // Lemma 3: states per agent are O(log n), i.e. O(m). Doubling m
        // should roughly double the bound (the 2^Φ·(Φ+1) term grows like
        // m^{2/3} log m, strictly slower).
        let b16 = state_bound(&PllParams::new(16).unwrap()) as f64;
        let b32 = state_bound(&PllParams::new(32).unwrap()) as f64;
        let b64 = state_bound(&PllParams::new(64).unwrap()) as f64;
        let r1 = b32 / b16;
        let r2 = b64 / b32;
        assert!(r1 > 1.6 && r1 < 2.4, "ratio {r1}");
        assert!(r2 > 1.6 && r2 < 2.4, "ratio {r2}");
    }

    #[test]
    fn state_bound_dominated_by_timer_group() {
        let p = PllParams::new(64).unwrap();
        let bound = state_bound(&p);
        let common = 96;
        let timer_part = common * p.cmax() as u64;
        assert!(timer_part * 2 > bound, "V_B should dominate the bound");
    }

    #[test]
    fn empirical_distinct_states_stay_below_bound() {
        use crate::Pll;
        use pp_engine::CountSimulation;
        use pp_rand::Xoshiro256PlusPlus;
        let n = 512;
        let pll = Pll::for_population(n).unwrap();
        let bound = state_bound(pll.params());
        let rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut sim = CountSimulation::new(pll, n, rng).unwrap();
        sim.run(500_000);
        let seen = sim.distinct_states_seen() as u64;
        assert!(
            seen <= bound,
            "reached {seen} distinct states, bound is {bound}"
        );
        assert!(seen > 10, "sanity: execution explores many states");
    }
}
