//! The asymmetric `P_LL` protocol: Algorithms 1–5 of the paper.

use crate::{Extra, PllError, PllParams, PllState, Status};
use pp_engine::{LeaderElection, Protocol, Role};

/// `P_LL`: leader election in `O(log n)` expected parallel time with
/// `O(log n)` states per agent.
///
/// The protocol value carries the parameters derived from the size knowledge
/// `m` (see [`PllParams`]). An execution is a competition in three phases,
/// delimited by the epoch variable that the count-up/color machinery
/// advances roughly every `Θ(log n)` parallel time:
///
/// 1. **`QuickElimination()`** (epoch 1): every leader plays the geometric
///    lottery — the number of surviving leaders is `i` with probability at
///    most `2^{1−i}` (Lemma 7).
/// 2. **`Tournament()`** (epochs 2 and 3): surviving leaders draw `Φ`-bit
///    nonces; the maximum nonce wins, leaving a unique leader with
///    probability `1 − O(1/log n)` (Lemma 8).
/// 3. **`BackUp()`** (epoch 4): a slow but certain fallback that elects a
///    unique leader in `O(log² n)` expected parallel time from any reachable
///    configuration (Lemmas 9–12).
///
/// Followers never become leaders, each phase preserves at least one leader,
/// and thus the leader count is monotone non-increasing and positive — which
/// is also how the engines detect stabilization exactly.
///
/// # Example
///
/// ```
/// use pp_core::Pll;
/// use pp_engine::{Simulation, UniformScheduler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 2_000;
/// let pll = Pll::for_population(n)?;
/// let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(1))?;
/// let outcome = sim.run_until_single_leader(50_000_000);
/// assert!(outcome.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pll {
    params: PllParams,
    enable_quick_elimination: bool,
    enable_tournament: bool,
}

impl Pll {
    /// Creates `P_LL` from explicit parameters.
    pub fn new(params: PllParams) -> Self {
        Self {
            params,
            enable_quick_elimination: true,
            enable_tournament: true,
        }
    }

    /// Disables the `QuickElimination()` module (epoch 1 becomes a no-op
    /// wait). For the module-contribution ablation; correctness is preserved
    /// because `BackUp()` elects from any configuration.
    pub fn without_quick_elimination(mut self) -> Self {
        self.enable_quick_elimination = false;
        self
    }

    /// Disables the `Tournament()` module (epochs 2–3 become no-op waits).
    /// For the module-contribution ablation.
    pub fn without_tournament(mut self) -> Self {
        self.enable_tournament = false;
        self
    }

    /// Creates `P_LL` with the canonical size knowledge for `n` agents
    /// (`m = ⌈log₂ n⌉`).
    ///
    /// # Errors
    ///
    /// Returns [`PllError::PopulationTooSmall`] when `n < 2`.
    pub fn for_population(n: usize) -> Result<Self, PllError> {
        Ok(Self::new(PllParams::for_population(n)?))
    }

    /// The protocol parameters.
    pub fn params(&self) -> &PllParams {
        &self.params
    }
}

impl Protocol for Pll {
    type State = PllState;
    type Output = Role;

    fn initial_state(&self) -> PllState {
        PllState::initial()
    }

    fn transition(&self, initiator: &PllState, responder: &PllState) -> (PllState, PllState) {
        let mut s = [*initiator, *responder];
        let mut tick = [false, false];

        assign_status(&mut s);
        count_up(&mut s, &mut tick, &self.params);
        advance_epochs(&mut s, &tick);
        init_vars(&mut s);

        debug_assert_eq!(s[0].epoch, s[1].epoch, "epochs synchronized by line 10");
        match s[0].epoch {
            1 => {
                if self.enable_quick_elimination {
                    quick_elimination(&mut s, &self.params);
                }
            }
            2 | 3 => {
                if self.enable_tournament {
                    tournament(&mut s, &self.params);
                }
            }
            4 => back_up(&mut s, &tick, &self.params),
            e => unreachable!("epoch {e} out of range"),
        }

        (s[0], s[1])
    }

    fn output(&self, state: &PllState) -> Role {
        if state.leader {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn name(&self) -> String {
        let mut name = format!("P_LL(m={})", self.params.m());
        if !self.enable_quick_elimination {
            name.push_str("[-QE]");
        }
        if !self.enable_tournament {
            name.push_str("[-T]");
        }
        name
    }
}

impl LeaderElection for Pll {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

/// Algorithm 1, lines 1–6: status assignment at an agent's first interaction.
///
/// * Both pristine (`X × X`): the initiator becomes an `A` leader with fresh
///   `QuickElimination()` variables, the responder becomes a `B` timer
///   follower.
/// * One pristine: it becomes an `A` follower that never joins the lottery
///   (`done = true`).
fn assign_status(s: &mut [PllState; 2]) {
    match (s[0].status, s[1].status) {
        (Status::X, Status::X) => {
            s[0].status = Status::A;
            s[0].extra = Extra::Quick {
                level_q: 0,
                done: false,
            };
            s[0].leader = true;
            s[1].status = Status::B;
            s[1].extra = Extra::Timer { count: 0 };
            s[1].leader = false;
        }
        (Status::X, _) => {
            s[0].status = Status::A;
            s[0].extra = Extra::Quick {
                level_q: 0,
                done: true,
            };
            s[0].leader = false;
        }
        (_, Status::X) => {
            s[1].status = Status::A;
            s[1].extra = Extra::Quick {
                level_q: 0,
                done: true,
            };
            s[1].leader = false;
        }
        _ => {}
    }
}

/// Algorithm 2 (`CountUp()`): every `B` agent advances its timer; a wrap
/// yields a fresh color and a tick; newer colors propagate by one-way
/// epidemic, resetting adopters' timers and raising their ticks.
fn count_up(s: &mut [PllState; 2], tick: &mut [bool; 2], p: &PllParams) {
    // Lines 23–29: timers.
    for i in 0..2 {
        if s[i].status == Status::B {
            if let Extra::Timer { count } = &mut s[i].extra {
                *count += 1;
                if *count == p.cmax() {
                    *count = 0;
                    s[i].color = (s[i].color + 1) % 3;
                    tick[i] = true;
                }
            }
        }
    }
    // Lines 30–34: color adoption (at most one side can be "behind").
    for i in 0..2 {
        let other = 1 - i;
        if s[other].color == (s[i].color + 1) % 3 {
            s[i].color = s[other].color;
            tick[i] = true;
            if let Extra::Timer { count } = &mut s[i].extra {
                *count = 0;
            }
        }
    }
}

/// Algorithm 1, lines 9–10: ticks advance epochs (saturating at 4), then both
/// agents adopt the larger epoch.
fn advance_epochs(s: &mut [PllState; 2], tick: &[bool; 2]) {
    for i in 0..2 {
        if tick[i] {
            s[i].epoch = (s[i].epoch + 1).min(4);
        }
    }
    let e = s[0].epoch.max(s[1].epoch);
    s[0].epoch = e;
    s[1].epoch = e;
}

/// Algorithm 1, lines 11–15: on an epoch increase, `A` agents re-initialize
/// the additional variables of their new group; `B` agents keep their timer.
fn init_vars(s: &mut [PllState; 2]) {
    for agent in s.iter_mut() {
        if agent.epoch > agent.init {
            if agent.status == Status::A {
                agent.extra = match agent.epoch {
                    2 | 3 => Extra::Rand { rand: 0, index: 0 },
                    4 => Extra::Backup { level_b: 0 },
                    e => unreachable!("epoch {e} cannot exceed init here"),
                };
            }
            agent.init = agent.epoch;
        }
    }
}

/// Algorithm 3 (`QuickElimination()`), executed while both agents are in
/// epoch 1.
///
/// A leader that meets a follower flips a fair coin: as initiator it counts a
/// head (`levelQ += 1`, saturating at `l_max`); as responder it sees its
/// first tail and stops (`done`). Stopped `A` agents propagate the maximum
/// `levelQ`; observing a larger value demotes a leader.
fn quick_elimination(s: &mut [PllState; 2], p: &PllParams) {
    // Lines 35–38: the coin flip (at most one leader-follower pair matches).
    for i in 0..2 {
        let other = 1 - i;
        if s[i].leader && !s[other].leader {
            if let Extra::Quick { level_q, done } = &mut s[i].extra {
                if !*done {
                    if i == 0 {
                        *level_q = (*level_q + 1).min(p.lmax());
                    } else {
                        *done = true;
                    }
                }
            }
        }
    }
    // Lines 39–42: one-way epidemic of the maximum levelQ among done agents.
    if let (
        Extra::Quick {
            level_q: l0,
            done: true,
        },
        Extra::Quick {
            level_q: l1,
            done: true,
        },
    ) = (s[0].extra, s[1].extra)
    {
        debug_assert!(s[0].status == Status::A && s[1].status == Status::A);
        if l0 < l1 {
            s[0].leader = false;
            s[0].extra = Extra::Quick {
                level_q: l1,
                done: true,
            };
        } else if l1 < l0 {
            s[1].leader = false;
            s[1].extra = Extra::Quick {
                level_q: l0,
                done: true,
            };
        }
    }
}

/// Algorithm 4 (`Tournament()`), executed while both agents are in epoch 2 or
/// epoch 3.
///
/// A leader that meets a follower appends one uniform bit to its nonce
/// (`0` as initiator, `1` as responder) until `Φ` bits are collected; the
/// maximum completed nonce spreads through `V_A` and demotes smaller-nonce
/// leaders.
fn tournament(s: &mut [PllState; 2], p: &PllParams) {
    // Lines 43–46: append one bit.
    for i in 0..2 {
        let other = 1 - i;
        if s[i].leader && !s[other].leader {
            if let Extra::Rand { rand, index } = &mut s[i].extra {
                if *index < p.phi() {
                    *rand = 2 * *rand + i as u32;
                    *index += 1;
                }
            }
        }
    }
    // Lines 47–50: epidemic of the maximum completed nonce.
    //
    // Fidelity note: the printed pseudocode requires `index = Φ` of *both*
    // agents, but followers never flip coins, so under that literal reading
    // the epidemic would be confined to the few leaders and could not reach
    // "the whole sub-population V_A within O(log n) parallel time" as the
    // proof of Lemma 8 requires (via Lemma 2 with V' = V_A). We therefore
    // implement the analysis-consistent rule, mirroring `levelQ`/`levelB`:
    // an agent's nonce *competes* only once complete (`index = Φ`) if it is
    // a leader, while followers always participate as carriers (their
    // adopted value originates from completed leader nonces, so the leader
    // holding the maximum nonce can never be demoted).
    if let (
        Extra::Rand {
            rand: r0,
            index: i0,
        },
        Extra::Rand {
            rand: r1,
            index: i1,
        },
    ) = (s[0].extra, s[1].extra)
    {
        let participates0 = !s[0].leader || i0 == p.phi();
        let participates1 = !s[1].leader || i1 == p.phi();
        if participates0 && participates1 {
            if r0 < r1 {
                s[0].leader = false;
                s[0].extra = Extra::Rand {
                    rand: r1,
                    index: i0,
                };
            } else if r1 < r0 {
                s[1].leader = false;
                s[1].extra = Extra::Rand {
                    rand: r0,
                    index: i1,
                };
            }
        }
    }
}

/// Algorithm 5 (`BackUp()`), executed while both agents are in epoch 4.
///
/// A leader whose tick was raised *in this interaction* and who meets a
/// follower as initiator counts a head (`levelB += 1`, saturating). The
/// maximum `levelB` spreads through `V_A`, demoting leaders that observe a
/// larger value; finally, two equal-`levelB` leaders resolve by demoting the
/// responder (the simple election of \[Ang+06\]).
fn back_up(s: &mut [PllState; 2], tick: &[bool; 2], p: &PllParams) {
    // Lines 51–53: the tick-gated coin flip (initiator = head).
    if tick[0] && s[0].leader && !s[1].leader {
        if let Extra::Backup { level_b } = &mut s[0].extra {
            *level_b = (*level_b + 1).min(p.lmax());
        }
    }
    // Lines 54–57: epidemic of the maximum levelB.
    if let (Extra::Backup { level_b: l0 }, Extra::Backup { level_b: l1 }) = (s[0].extra, s[1].extra)
    {
        if l0 < l1 {
            s[0].extra = Extra::Backup { level_b: l1 };
            s[0].leader = false;
        } else if l1 < l0 {
            s[1].extra = Extra::Backup { level_b: l0 };
            s[1].leader = false;
        }
    }
    // Line 58: simple election between equal-level leaders.
    if s[0].leader && s[1].leader {
        s[1].leader = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PllParams {
        PllParams::for_population(1024).unwrap() // m=10, lmax=50, cmax=410, phi=3
    }

    fn pll() -> Pll {
        Pll::new(params())
    }

    fn apply(p: &Pll, a: PllState, b: PllState) -> (PllState, PllState) {
        p.transition(&a, &b)
    }

    // ---- status assignment (Algorithm 1, lines 1–6) ----

    #[test]
    fn first_interaction_assigns_a_and_b() {
        let p = pll();
        let (a, b) = apply(&p, PllState::initial(), PllState::initial());
        assert_eq!(a.status, Status::A);
        assert!(a.leader);
        // QuickElimination runs within the same interaction: the fresh
        // leader participates as initiator, which counts as its first head
        // ("the number of interactions it participates in as an initiator
        // until it interacts as a responder", §3.1.1).
        assert_eq!(
            a.extra,
            Extra::Quick {
                level_q: 1,
                done: false
            }
        );
        assert_eq!(b.status, Status::B);
        assert!(!b.leader);
        // CountUp ran within the same interaction: the fresh timer ticked once.
        assert_eq!(b.extra, Extra::Timer { count: 1 });
    }

    #[test]
    fn pristine_meeting_assigned_agent_becomes_a_follower() {
        let p = pll();
        let (a0, b0) = apply(&p, PllState::initial(), PllState::initial());
        // Pristine initiator meets the A leader.
        let (x, a1) = apply(&p, PllState::initial(), a0);
        assert_eq!(x.status, Status::A);
        assert!(!x.leader);
        // The leader (levelQ = 1 from its first head) saw a tail here and
        // stopped; both agents are then done, so the joiner immediately
        // adopts the maximum levelQ via the epidemic rule.
        assert_eq!(
            x.extra,
            Extra::Quick {
                level_q: 1,
                done: true
            }
        );
        assert!(a1.leader, "existing leader survives");
        // Pristine responder meets the B timer.
        let (b1, y) = apply(&p, b0, PllState::initial());
        assert_eq!(y.status, Status::A);
        assert!(!y.leader);
        assert!(b1.is_b());
    }

    #[test]
    fn statuses_are_permanent() {
        let p = pll();
        let (a, b) = apply(&p, PllState::initial(), PllState::initial());
        let (a2, b2) = apply(&p, a, b);
        assert_eq!(a2.status, Status::A);
        assert_eq!(b2.status, Status::B);
        let (b3, a3) = apply(&p, b2, a2);
        assert_eq!(a3.status, Status::A);
        assert_eq!(b3.status, Status::B);
    }

    // ---- CountUp (Algorithm 2) ----

    #[test]
    fn timer_increments_every_interaction() {
        let p = pll();
        let follower_a = {
            let (x, _) = apply(&p, PllState::initial(), PllState::timer(0, 0));
            x
        };
        let mut b = PllState::timer(0, 0);
        for expected in 1..=5u32 {
            let (nb, _) = apply(&p, b, follower_a);
            assert_eq!(nb.count(), Some(expected));
            b = nb;
        }
    }

    #[test]
    fn timer_wrap_changes_color_and_advances_epoch() {
        let p = pll();
        let b = PllState::timer(p.params().cmax() - 1, 0);
        let other = PllState::timer(0, 0);
        let (nb, nother) = apply(&p, b, other);
        assert_eq!(nb.count(), Some(0));
        assert_eq!(nb.color, 1);
        assert_eq!(nb.epoch, 2, "tick advanced the wrapping agent's epoch");
        // The partner adopted the newer color in the same interaction and
        // also ticked, so both end in epoch 2 (and epochs are synced anyway).
        assert_eq!(nother.color, 1);
        assert_eq!(nother.epoch, 2);
        assert_eq!(nother.count(), Some(0), "adoption resets the timer");
    }

    #[test]
    fn color_adoption_follows_cyclic_successor() {
        let p = pll();
        // color 2 meets color 0: 0 = 2+1 (mod 3) so the color-2 agent adopts.
        let mut behind = PllState::timer(5, 2);
        behind.epoch = 4;
        behind.init = 4;
        let mut ahead = PllState::backup(false, 0);
        ahead.color = 0;
        let (nb, na) = apply(&p, behind, ahead);
        assert_eq!(nb.color, 0);
        assert_eq!(nb.count(), Some(0));
        assert_eq!(na.color, 0, "ahead agent unchanged");
    }

    #[test]
    fn equal_colors_do_not_adopt() {
        let p = pll();
        let b = PllState::timer(3, 1);
        let mut a = PllState::backup(false, 0);
        a.color = 1;
        a.epoch = 4;
        let (nb, _) = apply(&p, b, a);
        // b's epoch jumps to 4 via max-sync, but color must be untouched.
        assert_eq!(nb.color, 1);
    }

    // ---- epoch synchronization & variable initialization ----

    #[test]
    fn epoch_max_propagates_and_reinitializes_group_vars() {
        let p = pll();
        // A-leader in epoch 1 meets a B agent already in epoch 3.
        let leader = {
            let (a, _) = apply(&p, PllState::initial(), PllState::initial());
            a
        };
        let mut b = PllState::timer(0, 0);
        b.epoch = 3;
        b.init = 3;
        let (nl, nb) = apply(&p, leader, b);
        assert_eq!(nl.epoch, 3);
        assert_eq!(nl.init, 3);
        assert_eq!(nb.epoch, 3);
        // The A agent entered V_2∪V_3 with fresh Tournament variables and,
        // still within this interaction, flipped its first nonce bit (0, as
        // initiator) against the B follower.
        assert_eq!(nl.extra, Extra::Rand { rand: 0, index: 1 });
        assert!(nl.leader, "epoch sync does not demote");
    }

    #[test]
    fn entering_epoch_4_initializes_level_b() {
        let p = pll();
        let mut a = PllState {
            leader: true,
            status: Status::A,
            epoch: 3,
            init: 3,
            color: 0,
            extra: Extra::Rand { rand: 7, index: 3 },
        };
        a.color = 0;
        let mut b = PllState::timer(1, 0);
        b.epoch = 4;
        b.init = 4;
        let (na, _) = apply(&p, a, b);
        assert_eq!(na.epoch, 4);
        assert_eq!(na.extra, Extra::Backup { level_b: 0 });
    }

    #[test]
    fn epoch_saturates_at_four() {
        let p = pll();
        let mut b = PllState::timer(p.params().cmax() - 1, 0);
        b.epoch = 4;
        b.init = 4;
        let mut other = PllState::backup(false, 0);
        other.color = 0;
        let (nb, _) = apply(&p, b, other);
        assert_eq!(nb.epoch, 4);
        assert_eq!(nb.color, 1, "color still cycles");
    }

    // ---- QuickElimination (Algorithm 3) ----

    fn qe_leader(level_q: u32, done: bool) -> PllState {
        PllState {
            leader: true,
            status: Status::A,
            epoch: 1,
            init: 1,
            color: 0,
            extra: Extra::Quick { level_q, done },
        }
    }

    fn qe_follower(level_q: u32, done: bool) -> PllState {
        PllState {
            leader: false,
            ..qe_leader(level_q, done)
        }
    }

    #[test]
    fn initiator_leader_counts_a_head() {
        let p = pll();
        let (l, _) = apply(&p, qe_leader(2, false), qe_follower(0, true));
        assert_eq!(l.level_q(), Some(3));
        assert!(l.leader);
    }

    #[test]
    fn responder_leader_sees_tail_and_stops() {
        let p = pll();
        let (_, l) = apply(&p, qe_follower(0, true), qe_leader(2, false));
        assert_eq!(
            l.extra,
            Extra::Quick {
                level_q: 2,
                done: true
            }
        );
    }

    #[test]
    fn leader_meeting_leader_does_not_flip() {
        let p = pll();
        let (l0, l1) = apply(&p, qe_leader(1, false), qe_leader(4, false));
        // No coin flip; neither is done, so no epidemic comparison either.
        assert_eq!(l0.level_q(), Some(1));
        assert_eq!(l1.level_q(), Some(4));
        assert!(l0.leader && l1.leader);
    }

    #[test]
    fn done_leader_stops_flipping() {
        let p = pll();
        let (l, _) = apply(&p, qe_leader(3, true), qe_follower(3, true));
        assert_eq!(
            l.extra,
            Extra::Quick {
                level_q: 3,
                done: true
            }
        );
        assert!(l.leader, "equal levels: no demotion");
    }

    #[test]
    fn level_q_saturates_at_lmax() {
        let p = pll();
        let lmax = p.params().lmax();
        let (l, _) = apply(&p, qe_leader(lmax, false), qe_follower(0, true));
        assert_eq!(l.level_q(), Some(lmax));
    }

    #[test]
    fn larger_level_q_demotes_and_propagates() {
        let p = pll();
        let (lo, hi) = apply(&p, qe_leader(2, true), qe_leader(5, true));
        assert!(!lo.leader, "smaller level loses");
        assert_eq!(lo.level_q(), Some(5), "loser adopts the maximum");
        assert!(hi.leader);
        // Also works leader vs follower: follower with larger level demotes.
        let (l, f) = apply(&p, qe_leader(1, true), qe_follower(9, true));
        assert!(!l.leader);
        assert_eq!(l.level_q(), Some(9));
        assert!(!f.leader);
    }

    #[test]
    fn not_done_agents_do_not_compare_levels() {
        let p = pll();
        // Leader not done with small level vs follower (done) with larger:
        // line 39 requires BOTH done, so no demotion. The flip still happens
        // (leader-as-initiator counts a head).
        let (l, _) = apply(&p, qe_leader(0, false), qe_follower(9, true));
        assert!(l.leader);
        assert_eq!(l.level_q(), Some(1));
    }

    #[test]
    fn b_agents_do_not_join_level_epidemic() {
        let p = pll();
        let (l, b) = apply(&p, qe_leader(0, true), PllState::timer(0, 0));
        assert!(l.leader, "timer agents carry no levelQ to compare");
        assert!(b.is_b());
    }

    // ---- Tournament (Algorithm 4) ----

    fn t_leader(rand: u32, index: u32, epoch: u8) -> PllState {
        PllState {
            leader: true,
            status: Status::A,
            epoch,
            init: epoch,
            color: 0,
            extra: Extra::Rand { rand, index },
        }
    }

    fn t_follower(rand: u32, index: u32, epoch: u8) -> PllState {
        PllState {
            leader: false,
            ..t_leader(rand, index, epoch)
        }
    }

    #[test]
    fn nonce_bits_follow_roles() {
        let p = pll();
        // Initiator appends 0.
        let (l, _) = apply(&p, t_leader(0b10, 2, 2), t_follower(0, 3, 2));
        assert_eq!(
            l.extra,
            Extra::Rand {
                rand: 0b100,
                index: 3
            }
        );
        // Responder appends 1.
        let (_, l) = apply(&p, t_follower(0, 3, 2), t_leader(0b10, 2, 2));
        assert_eq!(
            l.extra,
            Extra::Rand {
                rand: 0b101,
                index: 3
            }
        );
    }

    #[test]
    fn nonce_stops_at_phi_bits() {
        let p = pll();
        let phi = p.params().phi();
        let (l, _) = apply(&p, t_leader(0b101, phi, 2), t_follower(0, phi, 2));
        assert_eq!(l.rand(), Some(0b101), "no more bits appended");
    }

    #[test]
    fn completed_nonces_compete() {
        let p = pll();
        let phi = p.params().phi();
        let (lo, hi) = apply(&p, t_leader(2, phi, 3), t_leader(6, phi, 3));
        assert!(!lo.leader);
        assert_eq!(lo.rand(), Some(6));
        assert!(hi.leader);
    }

    #[test]
    fn incomplete_nonces_do_not_compete() {
        let p = pll();
        let phi = p.params().phi();
        // One leader still collecting bits: no comparison even though rands differ.
        let (l0, l1) = apply(&p, t_leader(0, 1, 2), t_leader(7, phi, 2));
        assert!(l0.leader && l1.leader);
    }

    #[test]
    fn followers_carry_the_nonce_epidemic() {
        let p = pll();
        let phi = p.params().phi();
        // A completed leader hands its nonce to a fresh follower…
        let (f, _) = apply(&p, t_follower(0, 0, 3), t_leader(6, phi, 3));
        assert_eq!(f.rand(), Some(6));
        // …which can then demote a smaller-nonce leader it meets later.
        let (l, _) = apply(&p, t_leader(2, phi, 3), f);
        assert!(!l.leader);
        assert_eq!(l.rand(), Some(6));
    }

    #[test]
    fn follower_zero_nonce_never_demotes_completed_leader() {
        let p = pll();
        let phi = p.params().phi();
        let (l, _) = apply(&p, t_leader(0, phi, 2), t_follower(0, 0, 2));
        assert!(l.leader, "equal rand 0: no demotion");
    }

    #[test]
    fn equal_nonces_both_survive_tournament() {
        let p = pll();
        let phi = p.params().phi();
        let (l0, l1) = apply(&p, t_leader(5, phi, 3), t_leader(5, phi, 3));
        assert!(l0.leader && l1.leader, "ties are resolved later by BackUp");
    }

    // ---- BackUp (Algorithm 5) ----

    #[test]
    fn backup_flip_requires_tick() {
        let p = pll();
        let l = PllState::backup(true, 0);
        let f = PllState::backup(false, 0);
        // No tick raised in this interaction: no increment; responder then
        // gets demoted by the simple election?? No: f is already follower.
        let (nl, _) = apply(&p, l, f);
        assert_eq!(nl.level_b(), Some(0));
    }

    #[test]
    fn backup_flip_on_tick_with_follower() {
        let p = pll();
        // Engineer a tick for the initiating leader: it is behind in color.
        let mut l = PllState::backup(true, 0);
        l.color = 0;
        let mut f = PllState::backup(false, 0);
        f.color = 1; // leader adopts color 1 -> tick raised
        let (nl, _) = apply(&p, l, f);
        assert_eq!(nl.level_b(), Some(1), "head counted on tick");
        assert_eq!(nl.color, 1);
        // As responder the leader would see a tail: no increment.
        let (_, nl2) = apply(&p, f, l);
        assert_eq!(nl2.level_b(), Some(0));
        assert_eq!(nl2.color, 1);
    }

    #[test]
    fn level_b_epidemic_demotes() {
        let p = pll();
        let (lo, hi) = apply(&p, PllState::backup(true, 1), PllState::backup(true, 4));
        assert!(!lo.leader);
        assert_eq!(lo.level_b(), Some(4));
        assert!(hi.leader);
        // Followers also adopt the max.
        let (f, _) = apply(&p, PllState::backup(false, 0), PllState::backup(true, 9));
        assert_eq!(f.level_b(), Some(9));
    }

    #[test]
    fn equal_level_leaders_resolve_by_simple_election() {
        let p = pll();
        let (l0, l1) = apply(&p, PllState::backup(true, 7), PllState::backup(true, 7));
        assert!(l0.leader);
        assert!(!l1.leader, "responder demoted (line 58)");
    }

    #[test]
    fn level_b_saturates_at_lmax() {
        let p = pll();
        let lmax = p.params().lmax();
        let mut l = PllState::backup(true, lmax);
        l.color = 0;
        let mut f = PllState::backup(false, lmax);
        f.color = 1;
        let (nl, _) = apply(&p, l, f);
        assert_eq!(nl.level_b(), Some(lmax));
    }

    // ---- protocol-level facts ----

    #[test]
    fn output_follows_leader_flag() {
        let p = pll();
        assert_eq!(p.output(&PllState::initial()), Role::Leader);
        assert_eq!(p.output(&PllState::timer(0, 0)), Role::Follower);
        assert!(p.monotone_leaders());
    }

    #[test]
    fn name_mentions_parameters() {
        assert_eq!(pll().name(), "P_LL(m=10)");
        assert_eq!(
            pll()
                .without_quick_elimination()
                .without_tournament()
                .name(),
            "P_LL(m=10)[-QE][-T]"
        );
    }

    #[test]
    fn ablated_epochs_are_inert() {
        let p = pll().without_quick_elimination();
        // The leader-follower meeting that would flip a coin does nothing.
        let (l, _) = apply(&p, qe_leader(2, false), qe_follower(0, true));
        assert_eq!(
            l.extra,
            Extra::Quick {
                level_q: 2,
                done: false
            }
        );
        let p = pll().without_tournament();
        let (l, _) = apply(&p, t_leader(0b10, 2, 2), t_follower(0, 3, 2));
        assert_eq!(
            l.extra,
            Extra::Rand {
                rand: 0b10,
                index: 2
            }
        );
    }

    #[test]
    fn backup_only_variant_still_elects() {
        use pp_engine::{Simulation, UniformScheduler};
        let p = Pll::for_population(64)
            .unwrap()
            .without_quick_elimination()
            .without_tournament();
        let mut sim = Simulation::new(p, 64, UniformScheduler::seed_from_u64(31)).unwrap();
        let o = sim.run_until_single_leader(500_000_000);
        assert!(o.converged);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_extra() -> impl Strategy<Value = Extra> {
        prop_oneof![
            Just(Extra::None),
            (0u32..410).prop_map(|count| Extra::Timer { count }),
            ((0u32..=50), any::<bool>()).prop_map(|(level_q, done)| Extra::Quick { level_q, done }),
            // Representation invariant: a nonce of `index` bits satisfies
            // rand < 2^index.
            (0u32..=3).prop_flat_map(|index| {
                (0u32..(1 << index), Just(index))
                    .prop_map(|(rand, index)| Extra::Rand { rand, index })
            }),
            (0u32..=50).prop_map(|level_b| Extra::Backup { level_b }),
        ]
    }

    /// States with *consistent* group structure (the shape the transition
    /// function actually maintains): X agents are pristine leaders; A agents
    /// carry the additional variables of their epoch's group; B agents carry
    /// timers.
    fn arb_consistent_state() -> impl Strategy<Value = PllState> {
        (any::<bool>(), 1u8..=4, 0u8..=2, arb_extra()).prop_filter_map(
            "group structure",
            |(leader, epoch, color, extra)| {
                let status = match extra {
                    Extra::None => Status::X,
                    Extra::Timer { .. } => Status::B,
                    _ => Status::A,
                };
                // Align extra variant with epoch for A agents.
                let extra_ok = matches!(
                    (status, epoch, extra),
                    (Status::X, 1, Extra::None)
                        | (Status::B, _, Extra::Timer { .. })
                        | (Status::A, 1, Extra::Quick { .. })
                        | (Status::A, 2..=3, Extra::Rand { .. })
                        | (Status::A, 4, Extra::Backup { .. })
                );
                if !extra_ok {
                    return None;
                }
                let leader = match status {
                    Status::X => true,  // pristine agents are leaders
                    Status::B => false, // timer agents never lead
                    Status::A => leader,
                };
                Some(PllState {
                    leader,
                    status,
                    epoch,
                    init: epoch,
                    color,
                    extra,
                })
            },
        )
    }

    proptest! {
        /// No follower is ever promoted back to leader.
        #[test]
        fn no_follower_promotion(a in arb_consistent_state(), b in arb_consistent_state()) {
            let p = Pll::new(PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            if !a.leader {
                prop_assert!(!na.leader, "{a:?} × {b:?} promoted the initiator");
            }
            if !b.leader {
                prop_assert!(!nb.leader, "{a:?} × {b:?} promoted the responder");
            }
        }

        /// The inductive step behind "no module ever eliminates all
        /// leaders": a demoted (assigned) leader always leaves behind either
        /// a leader partner (the duel case) or a partner carrying a
        /// *strictly greater* competition value than the leader brought to
        /// the comparison. Hence the leader holding the population maximum
        /// can never be demoted.
        ///
        /// (Pairwise, both participants can end up followers — e.g. an
        /// epoch-lagged leader meeting a follower that carries a higher
        /// `levelB` — but only because a strictly larger value, minted by
        /// some still-alive leader lineage, is present.)
        #[test]
        fn demotion_requires_strictly_greater_witness(
            a in arb_consistent_state(),
            b in arb_consistent_state(),
        ) {
            // The value an agent carries into a comparison at `epoch`,
            // accounting for the re-initialization of lagging agents.
            fn effective_value(s: &PllState, epoch: u8) -> Option<u64> {
                if s.status != Status::A {
                    return None;
                }
                if s.epoch < epoch {
                    return Some(0); // init_vars resets the group variables
                }
                match (epoch, s.extra) {
                    (1, Extra::Quick { level_q, .. }) => Some(level_q as u64),
                    (2..=3, Extra::Rand { rand, .. }) => Some(rand as u64),
                    (4, Extra::Backup { level_b }) => Some(level_b as u64),
                    _ => None,
                }
            }
            let p = Pll::new(PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            let epoch = na.epoch;
            for (pre, post, partner_post) in [(&a, &na, &nb), (&b, &nb, &na)] {
                if pre.leader && pre.status == Status::A && !post.leader {
                    if partner_post.leader {
                        continue; // duel: a leader survives in the pair
                    }
                    let mine = effective_value(pre, epoch)
                        .expect("assigned leaders carry a competition value");
                    let theirs = effective_value(partner_post, epoch)
                        .expect("only V_A partners can demote");
                    prop_assert!(
                        theirs > mine,
                        "leader {pre:?} demoted without a greater witness ({mine} vs {theirs}) in {a:?} × {b:?}"
                    );
                }
            }
        }

        /// The nonce representation invariant rand < 2^index is preserved.
        #[test]
        fn nonce_width_invariant(a in arb_consistent_state(), b in arb_consistent_state()) {
            let p = Pll::new(PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            for s in [na, nb] {
                if let Extra::Rand { rand, index } = s.extra {
                    // Followers may carry adopted full-width nonces; leaders
                    // under construction satisfy the width bound.
                    if s.leader {
                        prop_assert!(rand < (1 << index), "leader nonce too wide: {s:?}");
                    }
                }
            }
        }

        /// Statuses are permanent once assigned, and X never survives an
        /// interaction.
        #[test]
        fn statuses_permanent(a in arb_consistent_state(), b in arb_consistent_state()) {
            let p = Pll::new(PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            prop_assert_ne!(na.status, Status::X);
            prop_assert_ne!(nb.status, Status::X);
            if a.status != Status::X {
                prop_assert_eq!(na.status, a.status);
            }
            if b.status != Status::X {
                prop_assert_eq!(nb.status, b.status);
            }
        }

        /// Epochs never decrease, are equal after the interaction, and init
        /// tracks epoch.
        #[test]
        fn epochs_monotone_and_synced(a in arb_consistent_state(), b in arb_consistent_state()) {
            let p = Pll::new(PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            prop_assert!(na.epoch >= a.epoch);
            prop_assert!(nb.epoch >= b.epoch);
            prop_assert_eq!(na.epoch, nb.epoch);
            prop_assert!(na.init <= na.epoch);
            prop_assert!(nb.init <= nb.epoch);
            prop_assert!((1..=4).contains(&na.epoch));
        }

        /// Domain bounds of Table 3 are never violated.
        #[test]
        fn variables_stay_in_domain(a in arb_consistent_state(), b in arb_consistent_state()) {
            let params = PllParams::new(10).unwrap();
            let p = Pll::new(params);
            let (na, nb) = p.transition(&a, &b);
            for s in [na, nb] {
                prop_assert!(s.color <= 2);
                match s.extra {
                    Extra::None => {}
                    Extra::Timer { count } => prop_assert!(count < params.cmax()),
                    Extra::Quick { level_q, .. } => prop_assert!(level_q <= params.lmax()),
                    Extra::Rand { rand, index } => {
                        prop_assert!(rand < params.rand_space());
                        prop_assert!(index <= params.phi());
                    }
                    Extra::Backup { level_b } => prop_assert!(level_b <= params.lmax()),
                }
            }
        }

        /// The group structure (status ↔ extra-variant ↔ epoch) is preserved.
        #[test]
        fn group_structure_preserved(a in arb_consistent_state(), b in arb_consistent_state()) {
            let p = Pll::new(PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            for s in [na, nb] {
                let ok = match (s.status, s.epoch, s.extra) {
                    (Status::B, _, Extra::Timer { .. }) => true,
                    (Status::A, 1, Extra::Quick { .. }) => true,
                    (Status::A, 2..=3, Extra::Rand { .. }) => true,
                    (Status::A, 4, Extra::Backup { .. }) => true,
                    // An A agent that just jumped epochs re-initializes in
                    // init_vars, so init == epoch always holds for groups.
                    _ => false,
                };
                prop_assert!(ok, "inconsistent group: {s:?}");
            }
        }
    }
}

#[cfg(test)]
mod run_tests {
    use super::*;
    use pp_engine::{CountSimulation, Simulation, UniformScheduler};
    use pp_rand::{SeedSequence, Xoshiro256PlusPlus};

    #[test]
    fn stabilizes_to_single_leader_small() {
        for n in [2usize, 3, 4, 8, 64] {
            let pll = Pll::for_population(n).unwrap();
            let mut sim =
                Simulation::new(pll, n, UniformScheduler::seed_from_u64(n as u64)).unwrap();
            let outcome = sim.run_until_single_leader(200_000_000);
            assert!(outcome.converged, "n={n} did not converge");
            assert_eq!(sim.leader_count(), 1);
            // Stability: more steps never change the unique leader.
            sim.run(50_000);
            assert_eq!(sim.leader_count(), 1, "n={n} lost uniqueness");
        }
    }

    #[test]
    fn leader_count_is_monotone_and_positive() {
        let n = 128;
        let pll = Pll::for_population(n).unwrap();
        let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(7)).unwrap();
        let mut last = sim.leader_count();
        assert_eq!(last, n, "initially every agent outputs L");
        for _ in 0..200_000 {
            sim.step();
            let now = sim.leader_count();
            assert!(now <= last, "leader count increased {last} -> {now}");
            assert!(now >= 1, "all leaders eliminated");
            last = now;
        }
    }

    #[test]
    fn lemma4_population_split_invariants() {
        use crate::Status;
        let n = 256;
        let pll = Pll::for_population(n).unwrap();
        let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(3)).unwrap();
        // Run until every agent has been assigned a status.
        let outcome = sim.run_until(64, 10_000_000, |sim| {
            sim.states().iter().all(|s| s.status != Status::X)
        });
        assert!(outcome.converged);
        for _ in 0..10 {
            sim.run(1000);
            let a = sim.states().iter().filter(|s| s.is_a()).count();
            let b = sim.states().iter().filter(|s| s.is_b()).count();
            let f = sim.states().iter().filter(|s| !s.leader).count();
            assert!(a >= n / 2, "|V_A| = {a} < n/2");
            assert!(f >= n / 2, "|V_F| = {f} < n/2");
            assert!(b >= 1, "|V_B| empty");
        }
    }

    #[test]
    fn count_engine_agrees_with_agent_engine() {
        // Pll stabilization times are heavy-tailed (a failed Tournament()
        // falls through to the Θ(log² n) BackUp()), so comparing means needs
        // a sample large enough to absorb a tail event or two — 8 runs was
        // within the tolerance only by seed luck.
        let n = 512;
        let seeds = SeedSequence::new(42);
        let runs = 32;
        let mean_parallel = |count_engine: bool| -> f64 {
            let mut total = 0.0;
            for i in 0..runs {
                let pll = Pll::for_population(n).unwrap();
                let seed = seeds.seed_at(i + u64::from(count_engine) * 1000);
                let steps = if count_engine {
                    let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                    let mut sim = CountSimulation::new(pll, n, rng).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                } else {
                    let sched = UniformScheduler::seed_from_u64(seed);
                    let mut sim = Simulation::new(pll, n, sched).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                };
                total += steps as f64 / n as f64;
            }
            total / runs as f64
        };
        let agent = mean_parallel(false);
        let count = mean_parallel(true);
        // Identical Markov chains: means agree within Monte-Carlo noise.
        assert!(
            (agent / count - 1.0).abs() < 0.5,
            "agent {agent} vs count {count}"
        );
    }

    #[test]
    fn parallel_time_grows_sublinearly() {
        // T(4n)/T(n) for log growth is ~ (lg 4n)/(lg n) << 4.
        let seeds = SeedSequence::new(11);
        let mean = |n: usize| {
            let mut total = 0.0;
            for i in 0..6 {
                let pll = Pll::for_population(n).unwrap();
                let sched = UniformScheduler::seed_from_u64(seeds.seed_at(i + n as u64));
                let mut sim = Simulation::new(pll, n, sched).unwrap();
                let o = sim.run_until_single_leader(u64::MAX);
                total += o.parallel_time(n);
            }
            total / 6.0
        };
        let t_small = mean(256);
        let t_big = mean(1024);
        assert!(
            t_big / t_small < 2.5,
            "t(1024)={t_big} vs t(256)={t_small}: growing too fast for O(log n)"
        );
    }
}
