//! # `pp-core`: the `P_LL` protocol
//!
//! The primary contribution of *"Logarithmic Expected-Time Leader Election in
//! Population Protocol Model"* (Sudo, Ooshita, Izumi, Kakugawa, Masuzawa;
//! PODC 2019 / arXiv:1812.11309): the first leader-election protocol with
//! **O(log n) expected parallel stabilization time** and **O(log n) states
//! per agent**, given a size knowledge `m ≥ log₂ n`, `m = Θ(log n)`.
//!
//! * [`Pll`] — the asymmetric protocol exactly as in the paper's
//!   Algorithms 1–5 (main dispatch, `CountUp`, `QuickElimination`,
//!   `Tournament`, `BackUp`).
//! * [`SymPll`] — the symmetric variant of Section 4: the X/Y status dance
//!   and the J/K/F0/F1 follower coin statuses that realize *totally
//!   independent and fair* coin flips without initiator/responder asymmetry.
//! * [`PllParams`] — the parameters `m`, `l_max = 5m`, `c_max = 41m`,
//!   `Φ = ⌈⅔·lg m⌉` of Table 3.
//! * [`inventory`] — Table 3 and the Lemma 3 state-count bound, computed
//!   programmatically.
//!
//! Pseudocode-fidelity note: the paper writes `max(x+1, cap)` in saturating
//! increments (Algorithm 1 line 9, Algorithm 3 line 36, Algorithm 4 line 45,
//! Algorithm 5 line 52); the domains of Table 3 and the surrounding prose
//! make clear `min(x+1, cap)` is meant, and that is what this crate
//! implements.
//!
//! # Example
//!
//! Marked `no_run` (it still compiles) because a 5,000-agent election to
//! stabilization takes seconds unoptimized; the umbrella crate's quickstart
//! doctest executes this exact flow.
//!
//! ```no_run
//! use pp_core::Pll;
//! use pp_engine::{Simulation, UniformScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 5_000;
//! let pll = Pll::for_population(n)?;
//! let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(9))?;
//! let outcome = sim.run_until_single_leader(u64::MAX);
//! assert!(outcome.converged);
//! // O(log n): a few hundred parallel time units at this size.
//! assert!(outcome.parallel_time(n) < 2_000.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inventory;
pub mod metrics;
mod params;
mod protocol;
mod state;
mod symmetric;

pub use params::{PllError, PllParams};
pub use protocol::Pll;
pub use state::{Extra, PllState, Status};
pub use symmetric::{Coin, RoleVar, SymExtra, SymPll, SymPllState, SymStatus};
