//! Protocol parameters derived from the size knowledge `m`.

use std::error::Error;
use std::fmt;

/// Errors from constructing [`PllParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PllError {
    /// `m` must be at least 1.
    InvalidSizeKnowledge {
        /// The offending value of `m`.
        m: u32,
    },
    /// The requested population size was too small (`n < 2`).
    PopulationTooSmall {
        /// The offending population size.
        n: usize,
    },
    /// `m` does not satisfy `m ≥ log₂ n` for the target population.
    SizeKnowledgeTooSmall {
        /// The size knowledge provided.
        m: u32,
        /// The population it must cover.
        n: usize,
    },
}

impl fmt::Display for PllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PllError::InvalidSizeKnowledge { m } => {
                write!(f, "size knowledge m = {m} is invalid; need m >= 1")
            }
            PllError::PopulationTooSmall { n } => {
                write!(f, "population of {n} agents is too small; need at least 2")
            }
            PllError::SizeKnowledgeTooSmall { m, n } => {
                write!(
                    f,
                    "size knowledge m = {m} violates m >= log2(n) for n = {n} agents"
                )
            }
        }
    }
}

impl Error for PllError {}

/// The parameters of `P_LL` (paper, Table 3 and Section 3.2):
///
/// * `m` — the size knowledge, required to satisfy `m ≥ log₂ n` and
///   `m = Θ(log n)`;
/// * `l_max = 5m` — the cap of `levelQ` and `levelB`;
/// * `c_max = 41m` — the period of the count-up timers driving
///   synchronization;
/// * `Φ = ⌈⅔·lg m⌉` — the number of coin flips per `Tournament()` execution
///   (`rand ∈ {0, …, 2^Φ − 1}`).
///
/// # Example
///
/// ```
/// use pp_core::PllParams;
///
/// let p = PllParams::for_population(1024)?;
/// assert_eq!(p.m(), 10);
/// assert_eq!(p.lmax(), 50);
/// assert_eq!(p.cmax(), 410);
/// assert_eq!(p.phi(), 3); // ceil(2/3 * lg 10) = ceil(2.215)
/// # Ok::<(), pp_core::PllError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PllParams {
    m: u32,
    lmax: u32,
    cmax: u32,
    phi: u32,
}

impl PllParams {
    /// Creates parameters from an explicit size knowledge `m ≥ 1`.
    ///
    /// This constructor does not check `m` against any population size: the
    /// paper's guarantee needs `m ≥ log₂ n`, which
    /// [`for_population`](PllParams::for_population) enforces, but
    /// under-sized `m` is deliberately constructible for the ablation
    /// experiments.
    ///
    /// # Errors
    ///
    /// Returns [`PllError::InvalidSizeKnowledge`] when `m == 0`.
    pub fn new(m: u32) -> Result<Self, PllError> {
        if m == 0 {
            return Err(PllError::InvalidSizeKnowledge { m });
        }
        let phi = if m == 1 {
            0
        } else {
            (2.0 / 3.0 * (m as f64).log2()).ceil() as u32
        };
        Ok(Self {
            m,
            lmax: 5 * m,
            cmax: 41 * m,
            phi,
        })
    }

    /// Creates the canonical parameters for a population of `n` agents:
    /// `m = max(1, ⌈log₂ n⌉)`, the smallest valid size knowledge.
    ///
    /// # Errors
    ///
    /// Returns [`PllError::PopulationTooSmall`] when `n < 2`.
    pub fn for_population(n: usize) -> Result<Self, PllError> {
        if n < 2 {
            return Err(PllError::PopulationTooSmall { n });
        }
        let m = (n as f64).log2().ceil().max(1.0) as u32;
        Self::new(m)
    }

    /// Creates parameters with `m = max(1, ⌈factor·log₂ n⌉)` — used by the
    /// ablation experiments to study over- and under-sized size knowledge.
    ///
    /// # Errors
    ///
    /// Returns [`PllError::PopulationTooSmall`] when `n < 2` and
    /// [`PllError::InvalidSizeKnowledge`] when the scaled `m` underflows to 0.
    pub fn with_scaled_knowledge(n: usize, factor: f64) -> Result<Self, PllError> {
        if n < 2 {
            return Err(PllError::PopulationTooSmall { n });
        }
        let m = (factor * (n as f64).log2()).ceil().max(1.0) as u32;
        Self::new(m)
    }

    /// Validates the paper's precondition `m ≥ log₂ n` for population `n`.
    ///
    /// # Errors
    ///
    /// Returns [`PllError::SizeKnowledgeTooSmall`] when violated.
    pub fn check_covers(&self, n: usize) -> Result<(), PllError> {
        if (self.m as f64) < (n as f64).log2() {
            return Err(PllError::SizeKnowledgeTooSmall { m: self.m, n });
        }
        Ok(())
    }

    /// The size knowledge `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// `l_max = 5m`: the cap of `levelQ` and `levelB`.
    pub fn lmax(&self) -> u32 {
        self.lmax
    }

    /// `c_max = 41m`: the count-up timer period.
    pub fn cmax(&self) -> u32 {
        self.cmax
    }

    /// `Φ = ⌈⅔·lg m⌉`: coin flips per `Tournament()` execution.
    pub fn phi(&self) -> u32 {
        self.phi
    }

    /// `2^Φ`: the number of distinct `rand` nonces in `Tournament()`.
    pub fn rand_space(&self) -> u32 {
        1 << self.phi
    }

    /// Overrides `c_max` (default `41m`) — for the sensitivity ablation of
    /// the synchronization period called out in `DESIGN.md`. Values far
    /// below `41m` violate the Lemma 6 analysis and are expected to degrade
    /// the fast path (while `BackUp()` still guarantees correctness).
    ///
    /// # Panics
    ///
    /// Panics if `cmax == 0`.
    pub fn with_cmax(mut self, cmax: u32) -> Self {
        assert!(cmax > 0, "c_max must be positive");
        self.cmax = cmax;
        self
    }

    /// Overrides `l_max` (default `5m`) — for ablation experiments.
    ///
    /// # Panics
    ///
    /// Panics if `lmax == 0`.
    pub fn with_lmax(mut self, lmax: u32) -> Self {
        assert!(lmax > 0, "l_max must be positive");
        self.lmax = lmax;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_parameters_for_powers_of_two() {
        let p = PllParams::for_population(1 << 16).unwrap();
        assert_eq!(p.m(), 16);
        assert_eq!(p.lmax(), 80);
        assert_eq!(p.cmax(), 656);
        assert_eq!(p.phi(), 3); // ceil(2/3 * 4) = ceil(2.667)
        assert_eq!(p.rand_space(), 8);
    }

    #[test]
    fn m_is_at_least_log2_n() {
        for n in [2usize, 3, 7, 100, 1000, 4097, 1 << 20] {
            let p = PllParams::for_population(n).unwrap();
            assert!(
                p.m() as f64 >= (n as f64).log2(),
                "n={n}: m={} < lg n",
                p.m()
            );
            p.check_covers(n).unwrap();
        }
    }

    #[test]
    fn phi_formula_spot_checks() {
        assert_eq!(PllParams::new(1).unwrap().phi(), 0);
        assert_eq!(PllParams::new(2).unwrap().phi(), 1);
        assert_eq!(PllParams::new(4).unwrap().phi(), 2);
        assert_eq!(PllParams::new(8).unwrap().phi(), 2);
        assert_eq!(PllParams::new(10).unwrap().phi(), 3);
        assert_eq!(PllParams::new(64).unwrap().phi(), 4);
    }

    #[test]
    fn errors_are_raised() {
        assert!(matches!(
            PllParams::new(0),
            Err(PllError::InvalidSizeKnowledge { m: 0 })
        ));
        assert!(matches!(
            PllParams::for_population(1),
            Err(PllError::PopulationTooSmall { n: 1 })
        ));
        let small = PllParams::new(2).unwrap();
        assert!(matches!(
            small.check_covers(1 << 12),
            Err(PllError::SizeKnowledgeTooSmall { m: 2, .. })
        ));
    }

    #[test]
    fn scaled_knowledge_for_ablations() {
        let half = PllParams::with_scaled_knowledge(1024, 0.5).unwrap();
        assert_eq!(half.m(), 5);
        let double = PllParams::with_scaled_knowledge(1024, 2.0).unwrap();
        assert_eq!(double.m(), 20);
        // Tiny factor still yields a valid m >= 1.
        let tiny = PllParams::with_scaled_knowledge(4, 0.01).unwrap();
        assert_eq!(tiny.m(), 1);
    }

    #[test]
    fn error_display() {
        assert!(PllError::InvalidSizeKnowledge { m: 0 }
            .to_string()
            .contains("m >= 1"));
        assert!(PllError::SizeKnowledgeTooSmall { m: 3, n: 99 }
            .to_string()
            .contains("99"));
        assert!(PllError::PopulationTooSmall { n: 1 }
            .to_string()
            .contains("at least 2"));
    }
}
