//! The per-agent state of `P_LL` (paper, Table 3).

/// Agent status (common variable `status`): determines the agent's group.
///
/// `X` is the pristine initial status; the first interaction assigns `A`
/// ("leader candidate") or `B` ("timer agent") — paper Section 3.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Status {
    /// Initial status: no group assigned yet.
    X,
    /// Leader candidate: carries the per-epoch competition variables.
    A,
    /// Timer agent: carries the count-up timer driving synchronization.
    B,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Status::X => write!(f, "X"),
            Status::A => write!(f, "A"),
            Status::B => write!(f, "B"),
        }
    }
}

/// Group-specific additional variables (paper, Table 3).
///
/// Each agent carries *at most one* non-constant additional variable group,
/// which is what keeps the state space at `O(log n)` (Lemma 3):
///
/// | group | variables |
/// |---|---|
/// | `V_X` | none |
/// | `V_B` | `count ∈ {0, …, c_max−1}` |
/// | `V_A ∩ V_1` | `levelQ ∈ {0, …, l_max}`, `done ∈ {false, true}` |
/// | `V_A ∩ (V_2 ∪ V_3)` | `rand ∈ {0, …, 2^Φ−1}`, `index ∈ {0, …, Φ}` |
/// | `V_A ∩ V_4` | `levelB ∈ {0, …, l_max}` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Extra {
    /// `V_X`: no additional variables.
    None,
    /// `V_B`: the count-up timer.
    Timer {
        /// `count ∈ {0, …, c_max − 1}`.
        count: u32,
    },
    /// `V_A ∩ V_1`: the `QuickElimination()` variables.
    Quick {
        /// `levelQ ∈ {0, …, l_max}`: heads seen before the first tail.
        level_q: u32,
        /// `done`: whether this agent stopped flipping coins.
        done: bool,
    },
    /// `V_A ∩ (V_2 ∪ V_3)`: the `Tournament()` variables.
    Rand {
        /// `rand ∈ {0, …, 2^Φ − 1}`: the nonce built from coin flips.
        rand: u32,
        /// `index ∈ {0, …, Φ}`: how many coin flips contributed so far.
        index: u32,
    },
    /// `V_A ∩ V_4`: the `BackUp()` variable.
    Backup {
        /// `levelB ∈ {0, …, l_max}`.
        level_b: u32,
    },
}

/// The full state of one `P_LL` agent.
///
/// Fields are public: this is a passive record whose invariants are enforced
/// by the protocol's transition function, and the experiment suite needs to
/// construct adversarial configurations (e.g. the `B_start` configurations of
/// Lemma 12) directly.
///
/// The common variable `tick` of Table 3 is **not** stored: the paper resets
/// it at the start of every interaction (Algorithm 1, line 7) and notes it
/// "does not affect the transition at v's next interaction", so it is
/// transient and modeled as a local inside the transition function. This
/// halves the state count without changing the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PllState {
    /// Output variable: `true` ⇒ the agent outputs `L`.
    pub leader: bool,
    /// Common variable `status ∈ {X, A, B}`.
    pub status: Status,
    /// Common variable `epoch ∈ {1, 2, 3, 4}`.
    pub epoch: u8,
    /// Common variable `init ∈ {1, 2, 3, 4}`: last epoch whose additional
    /// variables have been initialized.
    pub init: u8,
    /// Common variable `color ∈ {0, 1, 2}`: the synchronization color.
    pub color: u8,
    /// Group-specific additional variables.
    pub extra: Extra,
}

impl PllState {
    /// The initial state `s_init`: leader with pristine status `X`
    /// (paper, Table 3 initial values).
    pub fn initial() -> Self {
        Self {
            leader: true,
            status: Status::X,
            epoch: 1,
            init: 1,
            color: 0,
            extra: Extra::None,
        }
    }

    /// A `V_B` timer agent (follower) with the given timer and color —
    /// convenience for adversarial test configurations.
    pub fn timer(count: u32, color: u8) -> Self {
        Self {
            leader: false,
            status: Status::B,
            epoch: 1,
            init: 1,
            color,
            extra: Extra::Timer { count },
        }
    }

    /// A fourth-epoch `V_A` agent with `levelB = level_b` — the building
    /// block of the `B_start` configurations of Lemma 12.
    pub fn backup(leader: bool, level_b: u32) -> Self {
        Self {
            leader,
            status: Status::A,
            epoch: 4,
            init: 4,
            color: 0,
            extra: Extra::Backup { level_b },
        }
    }

    /// Whether this agent belongs to `V_A`.
    pub fn is_a(&self) -> bool {
        self.status == Status::A
    }

    /// Whether this agent belongs to `V_B`.
    pub fn is_b(&self) -> bool {
        self.status == Status::B
    }

    /// The agent's `levelQ`, if it carries `QuickElimination()` variables.
    pub fn level_q(&self) -> Option<u32> {
        match self.extra {
            Extra::Quick { level_q, .. } => Some(level_q),
            _ => None,
        }
    }

    /// The agent's `levelB`, if it carries the `BackUp()` variable.
    pub fn level_b(&self) -> Option<u32> {
        match self.extra {
            Extra::Backup { level_b } => Some(level_b),
            _ => None,
        }
    }

    /// The agent's tournament nonce `rand`, if it carries `Tournament()`
    /// variables.
    pub fn rand(&self) -> Option<u32> {
        match self.extra {
            Extra::Rand { rand, .. } => Some(rand),
            _ => None,
        }
    }

    /// The agent's timer `count`, if it is a `V_B` agent.
    pub fn count(&self) -> Option<u32> {
        match self.extra {
            Extra::Timer { count } => Some(count),
            _ => None,
        }
    }

    /// Packs the state into a single `u64` (compact interning key; also a
    /// constructive witness that the state fits comfortably in one word).
    ///
    /// Layout (low to high): leader(1) status(2) epoch(3) init(3) color(2)
    /// variant(3) payload(34).
    pub fn pack(&self) -> u64 {
        let status = match self.status {
            Status::X => 0u64,
            Status::A => 1,
            Status::B => 2,
        };
        let (variant, payload): (u64, u64) = match self.extra {
            Extra::None => (0, 0),
            Extra::Timer { count } => (1, count as u64),
            Extra::Quick { level_q, done } => (2, ((level_q as u64) << 1) | u64::from(done)),
            Extra::Rand { rand, index } => (3, ((rand as u64) << 8) | index as u64),
            Extra::Backup { level_b } => (4, level_b as u64),
        };
        u64::from(self.leader)
            | (status << 1)
            | ((self.epoch as u64) << 3)
            | ((self.init as u64) << 6)
            | ((self.color as u64) << 9)
            | (variant << 11)
            | (payload << 14)
    }

    /// Reverses [`pack`](PllState::pack).
    ///
    /// # Panics
    ///
    /// Panics on a word that does not encode a valid state (unknown status or
    /// variant tag).
    pub fn unpack(word: u64) -> Self {
        let leader = word & 1 == 1;
        let status = match (word >> 1) & 0b11 {
            0 => Status::X,
            1 => Status::A,
            2 => Status::B,
            other => panic!("invalid packed status tag {other}"),
        };
        let epoch = ((word >> 3) & 0b111) as u8;
        let init = ((word >> 6) & 0b111) as u8;
        let color = ((word >> 9) & 0b11) as u8;
        let payload = word >> 14;
        let extra = match (word >> 11) & 0b111 {
            0 => Extra::None,
            1 => Extra::Timer {
                count: payload as u32,
            },
            2 => Extra::Quick {
                level_q: (payload >> 1) as u32,
                done: payload & 1 == 1,
            },
            3 => Extra::Rand {
                rand: (payload >> 8) as u32,
                index: (payload & 0xFF) as u32,
            },
            4 => Extra::Backup {
                level_b: payload as u32,
            },
            other => panic!("invalid packed extra tag {other}"),
        };
        Self {
            leader,
            status,
            epoch,
            init,
            color,
            extra,
        }
    }
}

impl Default for PllState {
    fn default() -> Self {
        Self::initial()
    }
}

/// Snapshot codec: a `P_LL` state is persisted as its packed word.
///
/// [`decode`](pp_engine::SnapshotState::decode) validates the status and
/// variant tags before unpacking ([`PllState::unpack`] panics on unknown
/// tags, which a codec for untrusted bytes must never do).
impl pp_engine::SnapshotState for PllState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pack().encode(out);
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let word = u64::decode(bytes)?;
        if (word >> 1) & 0b11 == 0b11 || (word >> 11) & 0b111 > 4 {
            return None;
        }
        Some(Self::unpack(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_matches_table3() {
        let s = PllState::initial();
        assert!(s.leader);
        assert_eq!(s.status, Status::X);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.init, 1);
        assert_eq!(s.color, 0);
        assert_eq!(s.extra, Extra::None);
        assert_eq!(s, PllState::default());
    }

    #[test]
    fn accessors_match_variants() {
        let t = PllState::timer(5, 2);
        assert!(t.is_b());
        assert_eq!(t.count(), Some(5));
        assert_eq!(t.level_q(), None);

        let b = PllState::backup(true, 7);
        assert!(b.is_a());
        assert_eq!(b.level_b(), Some(7));
        assert_eq!(b.rand(), None);

        let mut q = PllState::initial();
        q.extra = Extra::Quick {
            level_q: 3,
            done: false,
        };
        assert_eq!(q.level_q(), Some(3));

        let mut r = PllState::initial();
        r.extra = Extra::Rand { rand: 6, index: 2 };
        assert_eq!(r.rand(), Some(6));
    }

    #[test]
    fn pack_unpack_roundtrip_spot() {
        let states = [
            PllState::initial(),
            PllState::timer(409, 2),
            PllState::backup(true, 80),
            PllState {
                leader: true,
                status: Status::A,
                epoch: 3,
                init: 3,
                color: 1,
                extra: Extra::Rand { rand: 7, index: 3 },
            },
            PllState {
                leader: false,
                status: Status::A,
                epoch: 1,
                init: 1,
                color: 0,
                extra: Extra::Quick {
                    level_q: 80,
                    done: true,
                },
            },
        ];
        for s in states {
            assert_eq!(PllState::unpack(s.pack()), s, "roundtrip for {s:?}");
        }
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::X.to_string(), "X");
        assert_eq!(Status::A.to_string(), "A");
        assert_eq!(Status::B.to_string(), "B");
    }

    #[test]
    fn snapshot_decode_rejects_invalid_tags() {
        use pp_engine::SnapshotState;
        // Status tag 3 and variant tag 5 have no meaning; `unpack` would
        // panic on them, `decode` must reject them instead.
        for word in [0b11u64 << 1, 0b101u64 << 11] {
            let mut buf = Vec::new();
            word.encode(&mut buf);
            assert_eq!(PllState::decode(&mut &buf[..]), None);
        }
        assert_eq!(PllState::decode(&mut &[0u8; 4][..]), None, "truncated");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_extra() -> impl Strategy<Value = Extra> {
        prop_oneof![
            Just(Extra::None),
            (0u32..100_000).prop_map(|count| Extra::Timer { count }),
            ((0u32..100_000), any::<bool>())
                .prop_map(|(level_q, done)| Extra::Quick { level_q, done }),
            ((0u32..1 << 20), (0u32..200)).prop_map(|(rand, index)| Extra::Rand { rand, index }),
            (0u32..100_000).prop_map(|level_b| Extra::Backup { level_b }),
        ]
    }

    pub(crate) fn arb_state() -> impl Strategy<Value = PllState> {
        (
            any::<bool>(),
            prop_oneof![Just(Status::X), Just(Status::A), Just(Status::B)],
            1u8..=4,
            1u8..=4,
            0u8..=2,
            arb_extra(),
        )
            .prop_map(|(leader, status, epoch, init, color, extra)| PllState {
                leader,
                status,
                epoch,
                init,
                color,
                extra,
            })
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(s in arb_state()) {
            prop_assert_eq!(PllState::unpack(s.pack()), s);
        }

        #[test]
        fn snapshot_codec_roundtrip(s in arb_state()) {
            use pp_engine::SnapshotState;
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let mut cursor = &buf[..];
            prop_assert_eq!(PllState::decode(&mut cursor), Some(s));
            prop_assert!(cursor.is_empty());
        }

        #[test]
        fn pack_is_injective(a in arb_state(), b in arb_state()) {
            if a != b {
                prop_assert_ne!(a.pack(), b.pack());
            }
        }
    }
}
