//! The symmetric variant of `P_LL` (paper, Section 4).
//!
//! A protocol is *symmetric* when equal inputs produce equal outputs:
//! `T(p, p) = (p', p')` — it cannot exploit the initiator/responder
//! distinction on equal states (relevant e.g. for chemical reaction
//! networks). The asymmetric `P_LL` breaks symmetry in exactly two places:
//! status assignment and coin flips. Section 4 sketches the fixes, which
//! this module implements in full:
//!
//! * **Status dance** — a fourth status `Y` with rules `X×X → Y×Y`,
//!   `Y×Y → X×X`, `X×Y → A×B`; an `X`/`Y` agent meeting an `A`/`B` agent
//!   becomes an `A` follower.
//! * **Totally independent and fair coins** — every follower carries a coin
//!   status in `{J, K, F0, F1}` (`J` on follower creation). Two followers
//!   update by `J×J → K×K`, `K×K → J×J`, `J×K → F0×F1`, so the numbers of
//!   `F0` and `F1` followers are *always equal*. A leader flips by meeting a
//!   follower whose coin status is `F0` (head) or `F1` (tail): conditioned on
//!   hitting the equal-sized `F0`/`F1` pools, each flip is exactly
//!   `Bernoulli(½)` and independent of all previous flips.
//!
//! Two details the paper leaves open are completed here and documented in
//! `DESIGN.md`:
//!
//! 1. An `X`/`Y` agent can now reach a later epoch *before* getting a status
//!    (it keeps exchanging colors), so status assignment initializes the
//!    group variables of the agent's **current** epoch, not epoch 1.
//! 2. The simple election of Algorithm 5 line 58 ("responder becomes
//!    follower") is asymmetric. Instead, leaders carry a *parity bit*
//!    re-randomized by every coin observation; two equal-`levelB` leaders
//!    with different parities demote the parity-one leader, while equal
//!    parities toggle together (preserving `T(p,p) = (p',p')`).
//!
//! Symmetric protocols provably cannot elect a leader for `n = 2` (equal
//! states evolve to equal states forever), so [`SymPll`] requires `n ≥ 3`.

use crate::{Extra, PllError, PllParams};
use pp_engine::{LeaderElection, Protocol, Role};

/// Agent status in the symmetric variant: `X`/`Y` pristine dance states plus
/// the `A`/`B` groups of the asymmetric protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymStatus {
    /// First pristine status (initial).
    X,
    /// Second pristine status (from `X×X`).
    Y,
    /// Leader candidate.
    A,
    /// Timer agent.
    B,
}

/// A follower's coin status.
///
/// `J`/`K` are "charging" states; `J×K` meetings mint one `F0` and one `F1`,
/// keeping `#F0 = #F1` invariant forever — the source of exact fairness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Coin {
    /// Charging state (assigned at follower creation).
    J,
    /// Charging state (from `J×J`).
    K,
    /// A usable coin showing *head*.
    F0,
    /// A usable coin showing *tail*.
    F1,
}

/// Role-specific auxiliary state: leaders carry a tie-break parity bit,
/// followers carry a coin status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RoleVar {
    /// A leader and its parity bit (used only by the symmetric simple
    /// election in `BackUp()`).
    Leader {
        /// Tie-break parity, re-randomized by every coin observation.
        parity: bool,
    },
    /// A follower and its coin status.
    Follower {
        /// The follower's coin status.
        coin: Coin,
    },
}

/// Group-specific additional variables — identical to the asymmetric
/// protocol's [`Extra`].
pub type SymExtra = Extra;

/// The full state of one symmetric `P_LL` agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymPllState {
    /// Leader/follower role with its auxiliary variable.
    pub role: RoleVar,
    /// Status `∈ {X, Y, A, B}`.
    pub status: SymStatus,
    /// Epoch `∈ {1, 2, 3, 4}`.
    pub epoch: u8,
    /// Last epoch whose group variables were initialized.
    pub init: u8,
    /// Synchronization color `∈ {0, 1, 2}`.
    pub color: u8,
    /// Group-specific additional variables.
    pub extra: SymExtra,
}

impl SymPllState {
    /// The initial state: a pristine `X` leader.
    pub fn initial() -> Self {
        Self {
            role: RoleVar::Leader { parity: false },
            status: SymStatus::X,
            epoch: 1,
            init: 1,
            color: 0,
            extra: Extra::None,
        }
    }

    /// Whether the agent currently outputs `L`.
    pub fn is_leader(&self) -> bool {
        matches!(self.role, RoleVar::Leader { .. })
    }

    /// The agent's coin status, if it is a follower.
    pub fn coin(&self) -> Option<Coin> {
        match self.role {
            RoleVar::Follower { coin } => Some(coin),
            RoleVar::Leader { .. } => None,
        }
    }

    /// Demotes a leader to a follower with a fresh `J` coin. A no-op on
    /// agents that are already followers (their coin must be preserved, or
    /// the `#F0 = #F1` invariant would break).
    fn demote(&mut self) {
        if self.is_leader() {
            self.role = RoleVar::Follower { coin: Coin::J };
        }
    }
}

impl Default for SymPllState {
    fn default() -> Self {
        Self::initial()
    }
}

/// The symmetric `P_LL` protocol (paper, Section 4).
///
/// Same phase structure, parameters, and asymptotics as [`Pll`](crate::Pll);
/// all role asymmetry is replaced by the status dance and the follower-coin
/// machinery described in the module-level documentation above.
///
/// # Example
///
/// ```
/// use pp_core::SymPll;
/// use pp_engine::{check_symmetry, Protocol, Simulation, UniformScheduler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 500;
/// let pll = SymPll::for_population(n)?;
/// // The defining property: equal states map to equal states.
/// assert!(check_symmetry(&pll, [pll.initial_state()]).is_none());
/// let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(2))?;
/// assert!(sim.run_until_single_leader(u64::MAX).converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymPll {
    params: PllParams,
}

impl SymPll {
    /// Creates the symmetric protocol from explicit parameters.
    pub fn new(params: PllParams) -> Self {
        Self { params }
    }

    /// Creates the symmetric protocol with canonical parameters for `n`
    /// agents.
    ///
    /// # Errors
    ///
    /// Returns [`PllError::PopulationTooSmall`] when `n < 3` — symmetric
    /// protocols cannot break the symmetry of a two-agent population.
    pub fn for_population(n: usize) -> Result<Self, PllError> {
        if n < 3 {
            return Err(PllError::PopulationTooSmall { n });
        }
        Ok(Self::new(PllParams::for_population(n)?))
    }

    /// The protocol parameters.
    pub fn params(&self) -> &PllParams {
        &self.params
    }
}

impl Protocol for SymPll {
    type State = SymPllState;
    type Output = Role;

    fn initial_state(&self) -> SymPllState {
        SymPllState::initial()
    }

    fn transition(
        &self,
        initiator: &SymPllState,
        responder: &SymPllState,
    ) -> (SymPllState, SymPllState) {
        let mut s = [*initiator, *responder];
        let mut tick = [false, false];

        assign_status(&mut s);
        count_up(&mut s, &mut tick, &self.params);
        advance_epochs(&mut s, &tick);
        init_vars(&mut s);
        coin_dance(&mut s);

        debug_assert_eq!(s[0].epoch, s[1].epoch);
        match s[0].epoch {
            1 => quick_elimination(&mut s, &self.params),
            2 | 3 => tournament(&mut s, &self.params),
            4 => back_up(&mut s, &tick, &self.params),
            e => unreachable!("epoch {e} out of range"),
        }

        (s[0], s[1])
    }

    fn output(&self, state: &SymPllState) -> Role {
        if state.is_leader() {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn name(&self) -> String {
        format!("SymP_LL(m={})", self.params.m())
    }
}

impl LeaderElection for SymPll {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

/// Group variables for an agent freshly assigned status `A` in `epoch`.
fn fresh_a_extra(epoch: u8, follower: bool) -> Extra {
    match epoch {
        1 => Extra::Quick {
            level_q: 0,
            done: follower,
        },
        2 | 3 => Extra::Rand { rand: 0, index: 0 },
        4 => Extra::Backup { level_b: 0 },
        e => unreachable!("epoch {e} out of range"),
    }
}

/// Section 4 status dance: `X×X → Y×Y`, `Y×Y → X×X`, `X×Y → A×B`; a
/// pristine agent meeting an assigned agent becomes an `A` follower.
fn assign_status(s: &mut [SymPllState; 2]) {
    use SymStatus::{A, B, X, Y};
    match (s[0].status, s[1].status) {
        (X, X) => {
            s[0].status = Y;
            s[1].status = Y;
        }
        (Y, Y) => {
            s[0].status = X;
            s[1].status = X;
        }
        (X, Y) | (Y, X) => {
            let (x_side, y_side) = if s[0].status == X { (0, 1) } else { (1, 0) };
            // Pristine agents are leaders in every reachable configuration;
            // preserving the role here keeps "followers are never promoted"
            // a total invariant of the transition function.
            let stays_leader = s[x_side].is_leader();
            s[x_side].status = A;
            s[x_side].extra = fresh_a_extra(s[x_side].epoch, !stays_leader);
            if stays_leader {
                s[x_side].role = RoleVar::Leader { parity: false };
            } else {
                s[x_side].role = RoleVar::Follower { coin: Coin::J };
            }
            s[y_side].status = B;
            s[y_side].extra = Extra::Timer { count: 0 };
            s[y_side].demote();
        }
        (X | Y, A | B) => {
            s[0].status = A;
            s[0].extra = fresh_a_extra(s[0].epoch, true);
            s[0].demote();
        }
        (A | B, X | Y) => {
            s[1].status = A;
            s[1].extra = fresh_a_extra(s[1].epoch, true);
            s[1].demote();
        }
        _ => {}
    }
}

/// `CountUp()` — identical to the asymmetric protocol (timers and color
/// adoption are role-free and therefore already symmetric).
fn count_up(s: &mut [SymPllState; 2], tick: &mut [bool; 2], p: &PllParams) {
    for i in 0..2 {
        if s[i].status == SymStatus::B {
            if let Extra::Timer { count } = &mut s[i].extra {
                *count += 1;
                if *count == p.cmax() {
                    *count = 0;
                    s[i].color = (s[i].color + 1) % 3;
                    tick[i] = true;
                }
            }
        }
    }
    for i in 0..2 {
        let other = 1 - i;
        if s[other].color == (s[i].color + 1) % 3 {
            s[i].color = s[other].color;
            tick[i] = true;
            if let Extra::Timer { count } = &mut s[i].extra {
                *count = 0;
            }
        }
    }
}

/// Algorithm 1 lines 9–10, unchanged.
fn advance_epochs(s: &mut [SymPllState; 2], tick: &[bool; 2]) {
    for i in 0..2 {
        if tick[i] {
            s[i].epoch = (s[i].epoch + 1).min(4);
        }
    }
    let e = s[0].epoch.max(s[1].epoch);
    s[0].epoch = e;
    s[1].epoch = e;
}

/// Algorithm 1 lines 11–15, unchanged (only `A` agents carry group
/// variables that need re-initialization).
fn init_vars(s: &mut [SymPllState; 2]) {
    for agent in s.iter_mut() {
        if agent.epoch > agent.init {
            if agent.status == SymStatus::A {
                agent.extra = match agent.epoch {
                    2 | 3 => Extra::Rand { rand: 0, index: 0 },
                    4 => Extra::Backup { level_b: 0 },
                    e => unreachable!("epoch {e} cannot exceed init here"),
                };
            }
            agent.init = agent.epoch;
        }
    }
}

/// The coin dance between two followers: `J×J → K×K`, `K×K → J×J`,
/// `J×K → F0×F1`. `F0`/`F1` are absorbing, which preserves `#F0 = #F1`.
///
/// One completion of the paper's sketch: a leader meeting a *charging*
/// (`J`/`K`) follower toggles that follower's charging state. Without this,
/// a population whose followers all hold the same charging state in lockstep
/// (exactly two followers, e.g. n = 4) would never produce a `J×K` pair and
/// never mint usable coins, deadlocking every coin-gated module. The toggle
/// is symmetric (the pair's states differ), touches neither `F0` nor `F1`
/// (so fairness is untouched), and only accelerates mixing for larger
/// populations.
fn coin_dance(s: &mut [SymPllState; 2]) {
    match (s[0].role, s[1].role) {
        (RoleVar::Follower { coin: c0 }, RoleVar::Follower { coin: c1 }) => {
            let (n0, n1) = match (c0, c1) {
                (Coin::J, Coin::J) => (Coin::K, Coin::K),
                (Coin::K, Coin::K) => (Coin::J, Coin::J),
                (Coin::J, Coin::K) => (Coin::F0, Coin::F1),
                (Coin::K, Coin::J) => (Coin::F1, Coin::F0),
                _ => return,
            };
            s[0].role = RoleVar::Follower { coin: n0 };
            s[1].role = RoleVar::Follower { coin: n1 };
        }
        (RoleVar::Leader { .. }, RoleVar::Follower { coin }) => {
            if let Some(toggled) = toggle_charging(coin) {
                s[1].role = RoleVar::Follower { coin: toggled };
            }
        }
        (RoleVar::Follower { coin }, RoleVar::Leader { .. }) => {
            if let Some(toggled) = toggle_charging(coin) {
                s[0].role = RoleVar::Follower { coin: toggled };
            }
        }
        _ => {}
    }
}

/// `J ↔ K`; usable coins (`F0`/`F1`) are left alone.
fn toggle_charging(coin: Coin) -> Option<Coin> {
    match coin {
        Coin::J => Some(Coin::K),
        Coin::K => Some(Coin::J),
        Coin::F0 | Coin::F1 => None,
    }
}

/// The result of a symmetric coin observation: the partner's usable coin.
fn observed_coin(partner: &SymPllState) -> Option<Coin> {
    match partner.coin() {
        Some(Coin::F0) => Some(Coin::F0),
        Some(Coin::F1) => Some(Coin::F1),
        _ => None,
    }
}

/// `QuickElimination()` with symmetric coins: a flipping leader reads `F0`
/// as head (`levelQ += 1`) and `F1` as tail (`done`); `J`/`K` partners are
/// not usable coins, so no flip happens. The `levelQ` epidemic is unchanged.
fn quick_elimination(s: &mut [SymPllState; 2], p: &PllParams) {
    for i in 0..2 {
        let other = 1 - i;
        if s[i].is_leader() {
            if let Some(coin) = observed_coin(&s[other]) {
                if let Extra::Quick { level_q, done } = &mut s[i].extra {
                    if !*done {
                        match coin {
                            Coin::F0 => *level_q = (*level_q + 1).min(p.lmax()),
                            Coin::F1 => *done = true,
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }
    if let (
        Extra::Quick {
            level_q: l0,
            done: true,
        },
        Extra::Quick {
            level_q: l1,
            done: true,
        },
    ) = (s[0].extra, s[1].extra)
    {
        if l0 < l1 {
            s[0].demote();
            s[0].extra = Extra::Quick {
                level_q: l1,
                done: true,
            };
        } else if l1 < l0 {
            s[1].demote();
            s[1].extra = Extra::Quick {
                level_q: l0,
                done: true,
            };
        }
    }
}

/// `Tournament()` with symmetric coins: `F0` appends bit 0, `F1` appends
/// bit 1. Epidemic participation as in the asymmetric implementation.
fn tournament(s: &mut [SymPllState; 2], p: &PllParams) {
    for i in 0..2 {
        let other = 1 - i;
        if s[i].is_leader() {
            if let Some(coin) = observed_coin(&s[other]) {
                if let Extra::Rand { rand, index } = &mut s[i].extra {
                    if *index < p.phi() {
                        let bit = u32::from(coin == Coin::F1);
                        *rand = 2 * *rand + bit;
                        *index += 1;
                    }
                }
            }
        }
    }
    if let (
        Extra::Rand {
            rand: r0,
            index: i0,
        },
        Extra::Rand {
            rand: r1,
            index: i1,
        },
    ) = (s[0].extra, s[1].extra)
    {
        let participates0 = !s[0].is_leader() || i0 == p.phi();
        let participates1 = !s[1].is_leader() || i1 == p.phi();
        if participates0 && participates1 {
            if r0 < r1 {
                s[0].demote();
                s[0].extra = Extra::Rand {
                    rand: r1,
                    index: i0,
                };
            } else if r1 < r0 {
                s[1].demote();
                s[1].extra = Extra::Rand {
                    rand: r0,
                    index: i1,
                };
            }
        }
    }
}

/// `BackUp()` with symmetric coins: a tick-holding leader reads `F0` as head
/// (`levelB += 1`); every coin observation also re-randomizes the leader's
/// parity bit; the `levelB` epidemic is unchanged; the simple election
/// between equal-`levelB` leaders uses parities (demote the parity-one
/// leader, or toggle both when equal).
fn back_up(s: &mut [SymPllState; 2], tick: &[bool; 2], p: &PllParams) {
    for i in 0..2 {
        let other = 1 - i;
        let coin = match observed_coin(&s[other]) {
            Some(coin) => coin,
            None => continue,
        };
        if let RoleVar::Leader { parity } = &mut s[i].role {
            // Parity refresh: an independent fair bit per observation.
            *parity = coin == Coin::F1;
            if tick[i] && coin == Coin::F0 {
                if let Extra::Backup { level_b } = &mut s[i].extra {
                    *level_b = (*level_b + 1).min(p.lmax());
                }
            }
        }
    }
    if let (Extra::Backup { level_b: l0 }, Extra::Backup { level_b: l1 }) = (s[0].extra, s[1].extra)
    {
        if l0 < l1 {
            s[0].extra = Extra::Backup { level_b: l1 };
            s[0].demote();
        } else if l1 < l0 {
            s[1].extra = Extra::Backup { level_b: l0 };
            s[1].demote();
        }
    }
    if let (RoleVar::Leader { parity: p0 }, RoleVar::Leader { parity: p1 }) = (s[0].role, s[1].role)
    {
        if p0 == p1 {
            s[0].role = RoleVar::Leader { parity: !p0 };
            s[1].role = RoleVar::Leader { parity: !p1 };
        } else if p0 {
            s[0].demote();
        } else {
            s[1].demote();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{check_symmetry, Simulation, UniformScheduler};

    fn sym() -> SymPll {
        SymPll::new(PllParams::for_population(512).unwrap())
    }

    fn leader(epoch: u8, extra: Extra) -> SymPllState {
        SymPllState {
            role: RoleVar::Leader { parity: false },
            status: SymStatus::A,
            epoch,
            init: epoch,
            color: 0,
            extra,
        }
    }

    fn follower(coin: Coin, epoch: u8, extra: Extra) -> SymPllState {
        SymPllState {
            role: RoleVar::Follower { coin },
            status: SymStatus::A,
            epoch,
            init: epoch,
            color: 0,
            extra,
        }
    }

    // ---- status dance ----

    #[test]
    fn pristine_pair_becomes_y_then_back() {
        let p = sym();
        let (a, b) = p.transition(&SymPllState::initial(), &SymPllState::initial());
        assert_eq!(a.status, SymStatus::Y);
        assert_eq!(b.status, SymStatus::Y);
        assert!(a.is_leader() && b.is_leader());
        let (a2, b2) = p.transition(&a, &b);
        assert_eq!(a2.status, SymStatus::X);
        assert_eq!(b2.status, SymStatus::X);
    }

    #[test]
    fn x_meets_y_assigns_a_and_b() {
        let p = sym();
        let x = SymPllState::initial();
        let mut y = SymPllState::initial();
        y.status = SymStatus::Y;
        // Order 1: X initiates.
        let (a, b) = p.transition(&x, &y);
        assert_eq!(a.status, SymStatus::A);
        assert!(a.is_leader());
        assert_eq!(b.status, SymStatus::B);
        // Fresh followers charge at J; the new leader toggled it to K within
        // this same interaction.
        assert_eq!(b.coin(), Some(Coin::K));
        // Order 2: Y initiates — the X agent still becomes the A leader.
        let (b2, a2) = p.transition(&y, &x);
        assert_eq!(a2.status, SymStatus::A);
        assert!(a2.is_leader());
        assert_eq!(b2.status, SymStatus::B);
    }

    #[test]
    fn pristine_meets_assigned_becomes_follower() {
        let p = sym();
        let a_leader = leader(
            1,
            Extra::Quick {
                level_q: 0,
                done: false,
            },
        );
        for status in [SymStatus::X, SymStatus::Y] {
            let mut pristine = SymPllState::initial();
            pristine.status = status;
            let (joined, l) = p.transition(&pristine, &a_leader);
            assert_eq!(joined.status, SymStatus::A);
            assert!(!joined.is_leader());
            // J at creation, toggled to K by the leader in this interaction.
            assert_eq!(joined.coin(), Some(Coin::K));
            assert_eq!(
                joined.extra,
                Extra::Quick {
                    level_q: 0,
                    done: true
                }
            );
            assert!(l.is_leader());
        }
    }

    #[test]
    fn late_joiner_gets_current_epoch_variables() {
        let p = sym();
        let mut pristine = SymPllState::initial();
        pristine.epoch = 3;
        pristine.init = 3;
        // Partner carries no larger values, so the joiner's fresh variables
        // survive the same-interaction epidemics.
        let f = follower(Coin::K, 3, Extra::Rand { rand: 0, index: 3 });
        let (joined, _) = p.transition(&pristine, &f);
        assert_eq!(joined.extra, Extra::Rand { rand: 0, index: 0 });
        // And in epoch 4:
        let mut pristine4 = SymPllState::initial();
        pristine4.epoch = 4;
        pristine4.init = 4;
        let f4 = follower(Coin::K, 4, Extra::Backup { level_b: 0 });
        let (joined4, _) = p.transition(&pristine4, &f4);
        assert_eq!(joined4.extra, Extra::Backup { level_b: 0 });
    }

    // ---- coin machinery ----

    #[test]
    fn coin_dance_rules() {
        let p = sym();
        let f = |c| {
            follower(
                c,
                1,
                Extra::Quick {
                    level_q: 0,
                    done: true,
                },
            )
        };
        let (a, b) = p.transition(&f(Coin::J), &f(Coin::J));
        assert_eq!((a.coin(), b.coin()), (Some(Coin::K), Some(Coin::K)));
        let (a, b) = p.transition(&f(Coin::K), &f(Coin::K));
        assert_eq!((a.coin(), b.coin()), (Some(Coin::J), Some(Coin::J)));
        let (a, b) = p.transition(&f(Coin::J), &f(Coin::K));
        assert_eq!((a.coin(), b.coin()), (Some(Coin::F0), Some(Coin::F1)));
        let (a, b) = p.transition(&f(Coin::K), &f(Coin::J));
        assert_eq!((a.coin(), b.coin()), (Some(Coin::F1), Some(Coin::F0)));
        // F0/F1 are absorbing.
        let (a, b) = p.transition(&f(Coin::F0), &f(Coin::F1));
        assert_eq!((a.coin(), b.coin()), (Some(Coin::F0), Some(Coin::F1)));
        let (a, b) = p.transition(&f(Coin::F0), &f(Coin::J));
        assert_eq!((a.coin(), b.coin()), (Some(Coin::F0), Some(Coin::J)));
    }

    #[test]
    fn leader_toggles_charging_followers() {
        let p = sym();
        let l = leader(
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let fj = follower(
            Coin::J,
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let (_, nf) = p.transition(&l, &fj);
        assert_eq!(nf.coin(), Some(Coin::K), "J toggles to K");
        let fk = follower(
            Coin::K,
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let (nf, _) = p.transition(&fk, &l);
        assert_eq!(nf.coin(), Some(Coin::J), "K toggles to J");
        // Usable coins are never disturbed.
        let f0 = follower(
            Coin::F0,
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let (_, nf) = p.transition(&l, &f0);
        assert_eq!(nf.coin(), Some(Coin::F0));
    }

    #[test]
    fn four_agent_population_still_elects() {
        // Regression for the lockstep-charging deadlock: with exactly two
        // followers the J/K dance alone never mints F0/F1; the leader-driven
        // toggle must unblock the election.
        for seed in 0..5 {
            let p = SymPll::for_population(4).unwrap();
            let mut sim =
                Simulation::new(p, 4, UniformScheduler::seed_from_u64(1000 + seed)).unwrap();
            let outcome = sim.run_until_single_leader(50_000_000);
            assert!(outcome.converged, "seed {seed} deadlocked");
        }
    }

    #[test]
    fn qe_flip_reads_follower_coin_not_role() {
        let p = sym();
        let l = leader(
            1,
            Extra::Quick {
                level_q: 2,
                done: false,
            },
        );
        // F0 = head regardless of initiator/responder position.
        let f0 = follower(
            Coin::F0,
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let (nl, _) = p.transition(&l, &f0);
        assert_eq!(
            nl.extra,
            Extra::Quick {
                level_q: 3,
                done: false
            }
        );
        let (_, nl) = p.transition(&f0, &l);
        assert_eq!(
            nl.extra,
            Extra::Quick {
                level_q: 3,
                done: false
            }
        );
        // F1 = tail.
        let f1 = follower(
            Coin::F1,
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let (nl, _) = p.transition(&l, &f1);
        assert_eq!(
            nl.extra,
            Extra::Quick {
                level_q: 2,
                done: true
            }
        );
        // J/K = no usable coin: nothing happens.
        let fj = follower(
            Coin::J,
            1,
            Extra::Quick {
                level_q: 0,
                done: true,
            },
        );
        let (nl, _) = p.transition(&l, &fj);
        assert_eq!(
            nl.extra,
            Extra::Quick {
                level_q: 2,
                done: false
            }
        );
    }

    #[test]
    fn tournament_bits_follow_coins() {
        let p = sym();
        let l = leader(
            2,
            Extra::Rand {
                rand: 0b1,
                index: 1,
            },
        );
        let f0 = follower(Coin::F0, 2, Extra::Rand { rand: 0, index: 0 });
        let (nl, _) = p.transition(&l, &f0);
        assert_eq!(
            nl.extra,
            Extra::Rand {
                rand: 0b10,
                index: 2
            }
        );
        let f1 = follower(Coin::F1, 2, Extra::Rand { rand: 0, index: 0 });
        let (nl, _) = p.transition(&l, &f1);
        assert_eq!(
            nl.extra,
            Extra::Rand {
                rand: 0b11,
                index: 2
            }
        );
    }

    #[test]
    fn backup_parity_refresh_and_flip() {
        let p = sym();
        // Engineer a tick via color adoption while meeting an F0 follower.
        let mut l = leader(4, Extra::Backup { level_b: 0 });
        l.color = 0;
        let mut f0 = follower(Coin::F0, 4, Extra::Backup { level_b: 0 });
        f0.color = 1;
        let (nl, _) = p.transition(&l, &f0);
        assert_eq!(nl.level_b_test(), 1, "head on tick increments levelB");
        assert_eq!(nl.role, RoleVar::Leader { parity: false });
        // F1 partner: no increment, parity set to one.
        let mut f1 = follower(Coin::F1, 4, Extra::Backup { level_b: 0 });
        f1.color = 1;
        let (nl, _) = p.transition(&l, &f1);
        assert_eq!(nl.level_b_test(), 0);
        assert_eq!(nl.role, RoleVar::Leader { parity: true });
    }

    impl SymPllState {
        fn level_b_test(&self) -> u32 {
            match self.extra {
                Extra::Backup { level_b } => level_b,
                _ => panic!("not a backup state"),
            }
        }
    }

    #[test]
    fn equal_parity_leaders_toggle_together() {
        let p = sym();
        let l = leader(4, Extra::Backup { level_b: 3 });
        let (a, b) = p.transition(&l, &l);
        assert_eq!(a, b, "symmetric outcome on equal states");
        assert_eq!(a.role, RoleVar::Leader { parity: true });
    }

    #[test]
    fn unequal_parity_leaders_resolve() {
        let p = sym();
        let l0 = leader(4, Extra::Backup { level_b: 3 });
        let mut l1 = l0;
        l1.role = RoleVar::Leader { parity: true };
        let (a, b) = p.transition(&l0, &l1);
        assert!(a.is_leader());
        assert!(!b.is_leader(), "parity-one leader demoted");
        assert_eq!(b.coin(), Some(Coin::J), "demoted leader charges a coin");
        // And in the opposite order:
        let (a, b) = p.transition(&l1, &l0);
        assert!(!a.is_leader());
        assert!(b.is_leader());
    }

    #[test]
    fn level_b_epidemic_demotes_smaller() {
        let p = sym();
        let lo = leader(4, Extra::Backup { level_b: 1 });
        let hi = leader(4, Extra::Backup { level_b: 5 });
        let (a, b) = p.transition(&lo, &hi);
        assert!(!a.is_leader());
        assert_eq!(a.level_b_test(), 5);
        assert!(b.is_leader());
    }

    // ---- global properties ----

    #[test]
    fn rejects_two_agent_population() {
        assert!(matches!(
            SymPll::for_population(2),
            Err(PllError::PopulationTooSmall { n: 2 })
        ));
    }

    #[test]
    fn stabilizes_for_small_populations() {
        for n in [3usize, 4, 5, 16, 128] {
            let p = SymPll::for_population(n).unwrap();
            let mut sim =
                Simulation::new(p, n, UniformScheduler::seed_from_u64(n as u64 + 77)).unwrap();
            let outcome = sim.run_until_single_leader(500_000_000);
            assert!(outcome.converged, "n={n} did not converge");
            sim.run(20_000);
            assert_eq!(sim.leader_count(), 1, "n={n} lost its unique leader");
        }
    }

    #[test]
    fn f0_f1_counts_always_equal() {
        let n = 200;
        let p = SymPll::for_population(n).unwrap();
        let mut sim = Simulation::new(p, n, UniformScheduler::seed_from_u64(13)).unwrap();
        for _ in 0..50_000 {
            sim.step();
            let f0 = sim
                .states()
                .iter()
                .filter(|s| s.coin() == Some(Coin::F0))
                .count();
            let f1 = sim
                .states()
                .iter()
                .filter(|s| s.coin() == Some(Coin::F1))
                .count();
            assert_eq!(f0, f1, "coin pools diverged at step {}", sim.steps());
        }
    }

    #[test]
    fn leader_count_monotone_positive() {
        let n = 100;
        let p = SymPll::for_population(n).unwrap();
        let mut sim = Simulation::new(p, n, UniformScheduler::seed_from_u64(5)).unwrap();
        let mut last = sim.leader_count();
        for _ in 0..100_000 {
            sim.step();
            let now = sim.leader_count();
            assert!(now <= last && now >= 1, "{last} -> {now}");
            last = now;
        }
    }

    #[test]
    fn symmetry_property_on_reachable_states() {
        // Collect states from a real run and check T(p,p) = (p',p') on all.
        let n = 150;
        let p = SymPll::for_population(n).unwrap();
        let mut sim = Simulation::new(p, n, UniformScheduler::seed_from_u64(21)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30_000 {
            sim.step();
            for s in sim.states() {
                seen.insert(*s);
            }
        }
        assert!(seen.len() > 50, "sanity: explored {} states", seen.len());
        assert_eq!(check_symmetry(&p, seen.into_iter()), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pp_engine::{check_symmetry, Protocol};
    use proptest::prelude::*;

    fn arb_extra() -> impl Strategy<Value = Extra> {
        prop_oneof![
            Just(Extra::None),
            (0u32..820).prop_map(|count| Extra::Timer { count }),
            ((0u32..100), any::<bool>()).prop_map(|(level_q, done)| Extra::Quick { level_q, done }),
            ((0u32..16), (0u32..5)).prop_map(|(rand, index)| Extra::Rand { rand, index }),
            (0u32..100).prop_map(|level_b| Extra::Backup { level_b }),
        ]
    }

    fn arb_role() -> impl Strategy<Value = RoleVar> {
        prop_oneof![
            any::<bool>().prop_map(|parity| RoleVar::Leader { parity }),
            prop_oneof![Just(Coin::J), Just(Coin::K), Just(Coin::F0), Just(Coin::F1)]
                .prop_map(|coin| RoleVar::Follower { coin }),
        ]
    }

    fn arb_state() -> impl Strategy<Value = SymPllState> {
        (
            arb_role(),
            prop_oneof![
                Just(SymStatus::X),
                Just(SymStatus::Y),
                Just(SymStatus::A),
                Just(SymStatus::B)
            ],
            1u8..=4,
            1u8..=4,
            0u8..=2,
            arb_extra(),
        )
            .prop_map(|(role, status, epoch, init, color, extra)| SymPllState {
                role,
                status,
                epoch,
                init,
                color,
                extra,
            })
    }

    proptest! {
        /// The defining property of Section 4, checked over the *entire*
        /// state domain (not just reachable states): equal inputs yield
        /// equal outputs.
        #[test]
        fn transition_is_symmetric_on_equal_states(s in arb_state()) {
            let p = SymPll::new(crate::PllParams::new(10).unwrap());
            prop_assert!(check_symmetry(&p, [s]).is_none());
        }

        /// Followers are never promoted, regardless of the interaction.
        #[test]
        fn no_follower_promotion(a in arb_state(), b in arb_state()) {
            let p = SymPll::new(crate::PllParams::new(10).unwrap());
            let (na, nb) = p.transition(&a, &b);
            if !a.is_leader() {
                prop_assert!(!na.is_leader());
            }
            if !b.is_leader() {
                prop_assert!(!nb.is_leader());
            }
        }
    }
}
