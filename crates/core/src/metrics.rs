//! Execution analytics: attributing leader eliminations to the module that
//! caused them.
//!
//! `P_LL` wins by layering three elimination mechanisms; this module
//! classifies each observed demotion so experiments can report *which*
//! mechanism did the work (the module-contribution breakdown that motivates
//! the paper's three-phase design).

use crate::{PllState, Status};

/// The mechanism that turned a leader into a follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Demotion {
    /// Status assignment: a pristine agent joined as a follower (Algorithm 1
    /// lines 3/5).
    StatusAssignment,
    /// `QuickElimination()` observed a larger `levelQ` (Algorithm 3).
    QuickElimination,
    /// `Tournament()` observed a larger nonce (Algorithm 4).
    Tournament,
    /// `BackUp()` observed a larger `levelB` (Algorithm 5, lines 54–57).
    BackUpLevel,
    /// The simple election between equal-`levelB` leaders (Algorithm 5,
    /// line 58).
    BackUpDuel,
}

impl std::fmt::Display for Demotion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Demotion::StatusAssignment => "status assignment",
            Demotion::QuickElimination => "QuickElimination",
            Demotion::Tournament => "Tournament",
            Demotion::BackUpLevel => "BackUp (level race)",
            Demotion::BackUpDuel => "BackUp (duel)",
        };
        write!(f, "{name}")
    }
}

/// Classifies the demotion of one agent across one interaction, given its
/// pre- and post-interaction states. Returns `None` if the agent was not
/// demoted in this interaction.
///
/// # Example
///
/// ```
/// use pp_core::metrics::{classify_demotion, Demotion};
/// use pp_core::PllState;
///
/// let pre = PllState::backup(true, 3);
/// let post = PllState::backup(false, 7);
/// assert_eq!(classify_demotion(&pre, &post), Some(Demotion::BackUpLevel));
/// ```
pub fn classify_demotion(pre: &PllState, post: &PllState) -> Option<Demotion> {
    if !pre.leader || post.leader {
        return None;
    }
    if pre.status == Status::X {
        return Some(Demotion::StatusAssignment);
    }
    Some(match post.epoch {
        1 => Demotion::QuickElimination,
        2 | 3 => Demotion::Tournament,
        4 => {
            // Entering epoch 4 re-initializes levelB to 0; a demotion by the
            // max-level epidemic always adopts a strictly larger level,
            // while the duel leaves the (equal) levels untouched.
            let pre_level = if pre.epoch == 4 {
                pre.level_b().unwrap_or(0)
            } else {
                0
            };
            if post.level_b().unwrap_or(0) > pre_level {
                Demotion::BackUpLevel
            } else {
                Demotion::BackUpDuel
            }
        }
        e => unreachable!("epoch {e} out of range"),
    })
}

/// Counts of demotions per mechanism over an execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DemotionTally {
    /// Demotions by status assignment.
    pub status_assignment: u64,
    /// Demotions by `QuickElimination()`.
    pub quick_elimination: u64,
    /// Demotions by `Tournament()`.
    pub tournament: u64,
    /// Demotions by the `BackUp()` level race.
    pub backup_level: u64,
    /// Demotions by the `BackUp()` duel.
    pub backup_duel: u64,
}

impl DemotionTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified demotion.
    pub fn record(&mut self, demotion: Demotion) {
        match demotion {
            Demotion::StatusAssignment => self.status_assignment += 1,
            Demotion::QuickElimination => self.quick_elimination += 1,
            Demotion::Tournament => self.tournament += 1,
            Demotion::BackUpLevel => self.backup_level += 1,
            Demotion::BackUpDuel => self.backup_duel += 1,
        }
    }

    /// Observes one interaction's pre/post state pairs and records any
    /// demotions among the two participants.
    pub fn observe(&mut self, pre: (&PllState, &PllState), post: (&PllState, &PllState)) {
        if let Some(d) = classify_demotion(pre.0, post.0) {
            self.record(d);
        }
        if let Some(d) = classify_demotion(pre.1, post.1) {
            self.record(d);
        }
    }

    /// Total demotions recorded.
    pub fn total(&self) -> u64 {
        self.status_assignment
            + self.quick_elimination
            + self.tournament
            + self.backup_level
            + self.backup_duel
    }

    /// `(mechanism, count)` rows in presentation order.
    pub fn rows(&self) -> [(Demotion, u64); 5] {
        [
            (Demotion::StatusAssignment, self.status_assignment),
            (Demotion::QuickElimination, self.quick_elimination),
            (Demotion::Tournament, self.tournament),
            (Demotion::BackUpLevel, self.backup_level),
            (Demotion::BackUpDuel, self.backup_duel),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extra, Pll};
    use pp_engine::{Configuration, Scheduler, UniformScheduler};

    fn qe(leader: bool, level_q: u32, done: bool) -> PllState {
        PllState {
            leader,
            status: Status::A,
            epoch: 1,
            init: 1,
            color: 0,
            extra: Extra::Quick { level_q, done },
        }
    }

    #[test]
    fn classification_by_epoch() {
        // Not a demotion.
        assert_eq!(
            classify_demotion(&qe(true, 1, true), &qe(true, 1, true)),
            None
        );
        assert_eq!(
            classify_demotion(&qe(false, 1, true), &qe(false, 2, true)),
            None
        );
        // Status assignment.
        let x = PllState::initial();
        let joined = qe(false, 0, true);
        assert_eq!(
            classify_demotion(&x, &joined),
            Some(Demotion::StatusAssignment)
        );
        // QE.
        assert_eq!(
            classify_demotion(&qe(true, 1, true), &qe(false, 5, true)),
            Some(Demotion::QuickElimination)
        );
        // Tournament.
        let mut t_pre = qe(true, 0, true);
        t_pre.epoch = 2;
        t_pre.init = 2;
        t_pre.extra = Extra::Rand { rand: 1, index: 3 };
        let mut t_post = t_pre;
        t_post.leader = false;
        t_post.extra = Extra::Rand { rand: 6, index: 3 };
        assert_eq!(
            classify_demotion(&t_pre, &t_post),
            Some(Demotion::Tournament)
        );
        // BackUp level vs duel.
        assert_eq!(
            classify_demotion(&PllState::backup(true, 2), &PllState::backup(false, 9)),
            Some(Demotion::BackUpLevel)
        );
        assert_eq!(
            classify_demotion(&PllState::backup(true, 2), &PllState::backup(false, 2)),
            Some(Demotion::BackUpDuel)
        );
    }

    #[test]
    fn tally_records_and_sums() {
        let mut tally = DemotionTally::new();
        tally.record(Demotion::QuickElimination);
        tally.record(Demotion::QuickElimination);
        tally.record(Demotion::BackUpDuel);
        assert_eq!(tally.total(), 3);
        assert_eq!(tally.quick_elimination, 2);
        assert_eq!(tally.rows()[4], (Demotion::BackUpDuel, 1));
    }

    #[test]
    fn full_run_attribution_accounts_for_all_demotions() {
        // Drive a run manually and check: total demotions = n - 1 - … — more
        // precisely, initial leaders n, final 1, every lost leader classified.
        let n = 128;
        let pll = Pll::for_population(n).unwrap();
        let mut config = Configuration::initial(&pll, n).unwrap();
        let mut scheduler = UniformScheduler::seed_from_u64(42);
        let mut tally = DemotionTally::new();
        let mut steps = 0u64;
        while config.leader_count(&pll) > 1 {
            let interaction = scheduler.next_interaction(n);
            let pre_i = *config.state(interaction.initiator).unwrap();
            let pre_r = *config.state(interaction.responder).unwrap();
            config.apply(&pll, interaction).unwrap();
            let post_i = *config.state(interaction.initiator).unwrap();
            let post_r = *config.state(interaction.responder).unwrap();
            tally.observe((&pre_i, &pre_r), (&post_i, &post_r));
            steps += 1;
            assert!(steps < 500_000_000, "did not stabilize");
        }
        assert_eq!(
            tally.total(),
            (n - 1) as u64,
            "every demoted agent classified exactly once: {tally:?}"
        );
        // The bulk of eliminations happen at status assignment (half the
        // population becomes B/followers immediately).
        assert!(tally.status_assignment >= (n / 4) as u64);
    }

    #[test]
    fn display_names() {
        assert_eq!(Demotion::BackUpDuel.to_string(), "BackUp (duel)");
        assert_eq!(Demotion::QuickElimination.to_string(), "QuickElimination");
    }
}
