//! Crash-recoverable sweep shards: per-job journals plus mid-job engine
//! snapshots.
//!
//! A checkpointed sweep records progress in a *journal* — a line-oriented
//! text file listing every completed job with its exact result — and,
//! optionally, periodic [`CountSimulation::snapshot`]s of jobs still in
//! flight. Killing the process at any point loses at most the work since the
//! last journal append / snapshot; rerunning the same sweep with the same
//! checkpoint directory picks up where it left off.
//!
//! # Journal format (`ppsweep v2`)
//!
//! The header line fingerprints the sweep parameters **and the execution
//! mode**. Two record kinds follow:
//!
//! * `done <job> <0|1> <f64-bits-hex>` — one completed job (one lane).
//! * `wide <start> <len>` — a lane-bundle marker: the `len` `done` records
//!   of bundle `[start, start + len)` follow as one appended block.
//!
//! In the default lane-bundle mode (no snapshot interval) the unit of
//! crash recovery is the **bundle**: each [`parallel_map`] worker runs a
//! whole [`WideSimulation`] lane bundle and journals its block in a single
//! buffered append. A bundle missing *any* lane record (e.g. its block was
//! torn by a crash mid-append) reruns whole on resume — wide runs are
//! deterministic, so rerun lanes rewrite identical records. The job limit
//! is bundle-granular: pending bundles are taken until the planned fresh
//! lanes reach the limit (overshooting by at most `lanes − 1`).
//!
//! # Determinism contract
//!
//! A killed-then-resumed sweep aggregates into [`SweepPoint`]s that are
//! **bit-identical** to an uninterrupted sweep with the same configuration:
//! job results are journaled as exact `f64` bit patterns and re-aggregated in
//! job-index order, so every mean, variance, and quantile string downstream
//! comes out byte-for-byte equal.
//!
//! With `snapshot_interval: None` each bundle is driven exactly like
//! [`stabilization_sweep`] drives it, so the checkpointed sweep equals the
//! plain sweep *at the same lane width* bit-for-bit too. With
//! `snapshot_interval: Some(i)` jobs fall back to scalar single-lane
//! [`CountSimulation`] runs driven in segments that end at fixed absolute
//! step multiples of `i` (mid-job snapshots of a lane bundle would couple
//! the lanes' recovery); segment boundaries are a function of the step
//! counter alone, so a job resumed from a snapshot replays the same
//! boundaries and stays bit-identical to the same job run without the kill
//! *at the same interval*. The two modes sample the same law but are not
//! bit-comparable to each other, so the mode (and, in bundle mode, the
//! lane width) is part of the journal fingerprint, as is the batch tier's
//! round law ([`crate::sweep_law_mode`], the `PP_SIM_LAW` override) —
//! resuming under a different mode, width, or round law is an
//! `InvalidData` error, not a silent law-only answer.
//!
//! [`stabilization_sweep`]: crate::stabilization_sweep
//! [`parallel_map`]: crate::parallel_map
//! [`WideSimulation`]: pp_engine::WideSimulation

use crate::runner::{aggregate_points, run_bundle, sweep_bundles, sweep_jobs, SweepPoint};
use pp_engine::{CountSimulation, EngineConfig, LawMode, LeaderElection, SnapshotState};
use pp_rand::Xoshiro256PlusPlus;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal file name inside a sweep's checkpoint directory.
pub(crate) const JOURNAL_FILE: &str = "journal.txt";

/// Journal header prefix; the version is part of the format. `v2` added
/// lane-bundle blocks and the execution mode in the fingerprint.
pub(crate) const HEADER_PREFIX: &str = "ppsweep v2";

/// Where and how a sweep checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding this sweep's journal and in-flight job snapshots.
    /// Created if absent. One directory per sweep — sweeps must not share.
    pub dir: PathBuf,
    /// Snapshot in-flight jobs every this many simulation steps (rounded to
    /// the next absolute multiple). `None` — the default — journals only
    /// completed lane bundles, which keeps the sweep bit-identical to the
    /// uncheckpointed one; `Some` falls back to scalar single-lane jobs so
    /// each snapshot captures exactly one run.
    pub snapshot_interval: Option<u64>,
    /// Stop after completing this many *fresh* (not journaled) jobs and
    /// report [`SweepStatus::Suspended`]. `None` runs to completion. Used to
    /// bound a shard's work — and by the tests to simulate crashes at
    /// deterministic points. In lane-bundle mode the limit is
    /// bundle-granular: the last bundle taken may overshoot it by up to
    /// `lanes − 1` jobs.
    pub job_limit: Option<usize>,
}

impl CheckpointConfig {
    /// A config that journals completed jobs in `dir` with no mid-job
    /// snapshots and no job limit.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_interval: None,
            job_limit: None,
        }
    }
}

/// Outcome of a checkpointed sweep invocation.
#[derive(Debug)]
pub enum SweepStatus {
    /// Every job has a journaled result; `points` aggregates them in job
    /// order, bit-identical to an uninterrupted sweep.
    Complete {
        /// One aggregated point per entry of `ns`, exactly as
        /// [`crate::stabilization_sweep`] would return them.
        points: Vec<SweepPoint>,
        /// Jobs executed by *this* invocation (the rest came from the
        /// journal).
        fresh_jobs: usize,
    },
    /// The job limit was reached with jobs still pending; rerun with the
    /// same checkpoint directory to continue.
    Suspended {
        /// Jobs executed by this invocation before suspending.
        fresh_jobs: usize,
    },
}

/// [`crate::stabilization_sweep`] with crash recovery: journals every
/// completed lane bundle under `ckpt.dir` and resumes from whatever a
/// previous invocation left there. The lane width is
/// [`crate::sweep_lane_width`] (the `PP_SIM_LANES` override), matching the
/// plain sweep's.
///
/// See the [module docs](self) for the determinism contract. The sweep
/// parameters — including the execution mode and lane width — are
/// fingerprinted into the journal header; reusing a checkpoint directory
/// with different parameters is an error (`InvalidData`), not a silent
/// wrong answer.
///
/// # Errors
///
/// Any journal / snapshot I/O error, or a journal whose fingerprint does not
/// match the given parameters.
pub fn stabilization_sweep_checkpointed<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
    ckpt: &CheckpointConfig,
) -> io::Result<SweepStatus>
where
    P: LeaderElection,
    P::State: SnapshotState,
    F: Fn(usize) -> P + Sync,
{
    stabilization_sweep_checkpointed_wide(
        make,
        ns,
        seeds,
        master_seed,
        max_steps,
        ckpt,
        crate::sweep_lane_width(),
    )
}

/// [`stabilization_sweep_checkpointed`] with an explicit lane-bundle width
/// (ignoring `PP_SIM_LANES`), bit-identical to
/// [`crate::stabilization_sweep_wide`] at the same width. `lanes` is
/// ignored in snapshot-interval mode (scalar single-lane jobs).
///
/// # Errors
///
/// Any journal / snapshot I/O error, or a journal whose fingerprint does not
/// match the given parameters.
#[allow(clippy::too_many_arguments)]
pub fn stabilization_sweep_checkpointed_wide<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
    ckpt: &CheckpointConfig,
    lanes: usize,
) -> io::Result<SweepStatus>
where
    P: LeaderElection,
    P::State: SnapshotState,
    F: Fn(usize) -> P + Sync,
{
    let jobs = sweep_jobs(ns, seeds, master_seed);
    let lane_mode = ckpt.snapshot_interval.is_none().then_some(lanes);
    let law = crate::sweep_law_mode();
    let fp = fingerprint(ns, seeds, master_seed, max_steps, lane_mode, law);
    std::fs::create_dir_all(&ckpt.dir)?;
    let journal_path = ckpt.dir.join(JOURNAL_FILE);
    let mut done = load_journal(&journal_path, fp, jobs.len())?;

    let fresh_jobs = match ckpt.snapshot_interval {
        Some(interval) => {
            let pending: Vec<usize> = (0..jobs.len()).filter(|i| !done.contains_key(i)).collect();
            let budget = ckpt.job_limit.unwrap_or(usize::MAX).min(pending.len());
            let to_run = &pending[..budget];
            if !to_run.is_empty() {
                let journal = Mutex::new(open_journal_for_append(&journal_path, fp)?);
                let fresh = crate::parallel_map(to_run, |&i| {
                    let (n, seed) = jobs[i];
                    let snapshot_path = job_snapshot_path(&ckpt.dir, i);
                    let (converged, time) =
                        run_job(&make, n, seed, max_steps, interval, &snapshot_path, law);
                    // Journal the result before discarding the snapshot, so a
                    // crash between the two at worst redoes a completed job.
                    {
                        let mut file = journal.lock().expect("journal writers do not panic");
                        writeln!(
                            file,
                            "done {i} {} {:016x}",
                            u8::from(converged),
                            time.to_bits()
                        )
                        .and_then(|()| file.flush())
                        .expect("journal append failed");
                    }
                    let _ = std::fs::remove_file(&snapshot_path);
                    (i, (converged, time))
                });
                done.extend(fresh);
            }
            to_run.len()
        }
        None => {
            let bundles = sweep_bundles(ns, seeds, master_seed, lanes);
            let limit = ckpt.job_limit.unwrap_or(usize::MAX);
            let mut to_run = Vec::new();
            let mut planned = 0;
            for bundle in &bundles {
                let range = bundle.start..bundle.start + bundle.seeds.len();
                if range.clone().all(|i| done.contains_key(&i)) {
                    continue;
                }
                if planned >= limit {
                    break;
                }
                // A bundle with any lane missing reruns whole: lanes share
                // one lockstep execution, so there is no per-lane resume —
                // but the rerun is deterministic and rewrites identical
                // records for lanes whose block was partially journaled.
                planned += bundle.seeds.len();
                to_run.push(bundle);
            }
            // Largest-n-first fan-out (see [`crate::runner::cost_order`]):
            // pending bundles are selected in job order above — keeping the
            // job limit's semantics — then *scheduled* most-expensive-first.
            // Results are journaled and aggregated by bundle start, so the
            // ordering changes makespan only, never a byte of output.
            to_run.sort_by_key(|bundle| std::cmp::Reverse(bundle.n));
            if !to_run.is_empty() {
                let journal = Mutex::new(open_journal_for_append(&journal_path, fp)?);
                let fresh = crate::parallel_map(&to_run, |bundle| {
                    let results = run_bundle(&make, bundle.n, &bundle.seeds, max_steps, law);
                    // One buffered append per bundle: the bundle marker plus
                    // its lane records land in a single write, so a crash
                    // tears at most the final block (tolerated on load).
                    let mut block = format!("wide {} {}\n", bundle.start, bundle.seeds.len());
                    for (k, &(converged, time)) in results.iter().enumerate() {
                        let _ = writeln!(
                            block,
                            "done {} {} {:016x}",
                            bundle.start + k,
                            u8::from(converged),
                            time.to_bits()
                        );
                    }
                    {
                        let mut file = journal.lock().expect("journal writers do not panic");
                        file.write_all(block.as_bytes())
                            .and_then(|()| file.flush())
                            .expect("journal append failed");
                    }
                    (bundle.start, results)
                });
                for (start, results) in fresh {
                    for (k, result) in results.into_iter().enumerate() {
                        done.insert(start + k, result);
                    }
                }
            }
            planned
        }
    };

    if done.len() < jobs.len() {
        return Ok(SweepStatus::Suspended { fresh_jobs });
    }

    // Aggregate by contiguous job range in job-index order — the exact
    // traversal of the uncheckpointed sweep, so the summaries match it
    // bit-for-bit no matter which jobs came from the journal.
    let flat: Vec<(bool, f64)> = (0..jobs.len()).map(|i| done[&i]).collect();
    Ok(SweepStatus::Complete {
        points: aggregate_points(ns, seeds, &flat),
        fresh_jobs,
    })
}

/// Runs one scalar (snapshot-interval mode) sweep job, resuming from its
/// snapshot file when a readable one exists and writing fresh snapshots at
/// every interval boundary.
#[allow(clippy::too_many_arguments)]
fn run_job<P, F>(
    make: &F,
    n: usize,
    seed: u64,
    max_steps: u64,
    interval: u64,
    snapshot_path: &Path,
    law: LawMode,
) -> (bool, f64)
where
    P: LeaderElection,
    P::State: SnapshotState,
    F: Fn(usize) -> P,
{
    // An unreadable or corrupt snapshot degrades to restarting the job from
    // its seed — same trajectory, just recomputed (segment boundaries are a
    // function of the step counter, so the replay takes the same path; the
    // snapshot carries the round law, which matches the fingerprinted one).
    let resumed = std::fs::read(snapshot_path)
        .ok()
        .and_then(|bytes| CountSimulation::resume(make(n), &bytes).ok());
    let mut sim = resumed.unwrap_or_else(|| {
        let config = EngineConfig {
            law_mode: law,
            ..EngineConfig::default()
        };
        CountSimulation::with_config(make(n), n, Xoshiro256PlusPlus::seed_from_u64(seed), config)
            .expect("population sizes are >= 2 by construction")
    });

    let interval = interval.max(1);
    loop {
        // Next absolute boundary strictly above the current step
        // count — identical whether this job runs straight through
        // or resumes from any snapshot.
        let target = (sim.steps() / interval + 1)
            .saturating_mul(interval)
            .min(max_steps);
        let out = sim.run_until_single_leader(target);
        if out.converged || sim.steps() >= max_steps {
            return (out.converged, out.parallel_time(n));
        }
        write_atomically(snapshot_path, &sim.snapshot()).expect("job snapshot write failed");
    }
}

/// The snapshot file of in-flight job `index`.
fn job_snapshot_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("job_{index}.ckpt"))
}

/// Writes via a temporary file + rename so readers never observe a torn
/// snapshot.
pub(crate) fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// FNV-1a 64 over the sweep parameters plus the execution mode: the
/// journal's compatibility check. `lane_mode` is `Some(width)` in
/// lane-bundle mode and `None` in snapshot-interval (scalar) mode — the
/// two modes' results agree in law but not bit-for-bit, and neither do
/// bundle runs at different widths or under different round laws (`law` is
/// the `PP_SIM_LAW` resolution), so mixing them in one journal must be
/// rejected.
pub(crate) fn fingerprint(
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
    lane_mode: Option<usize>,
    law: LawMode,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(ns.len() as u64);
    for &n in ns {
        eat(n as u64);
    }
    eat(seeds);
    eat(master_seed);
    eat(max_steps);
    match lane_mode {
        None => eat(0),
        Some(width) => {
            eat(1);
            eat(width as u64);
        }
    }
    eat(u64::from(law.tag()));
    h
}

/// Parses the journal at `path` (missing file → empty). Checks the header
/// fingerprint and tolerates exactly one trailing unparseable line (a record
/// cut short by a crash mid-append).
pub(crate) fn load_journal(
    path: &Path,
    fp: u64,
    job_count: usize,
) -> io::Result<HashMap<usize, (bool, f64)>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    };
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let lines: Vec<&str> = text.lines().collect();
    let Some((&header, records)) = lines.split_first() else {
        return Ok(HashMap::new());
    };
    let expected_header = format!("{HEADER_PREFIX} {fp:016x}");
    if header != expected_header {
        return Err(bad(format!(
            "sweep journal {} does not match these sweep parameters \
             (header `{header}`, expected `{expected_header}`); \
             use a fresh checkpoint directory per sweep configuration",
            path.display()
        )));
    }
    let mut done = HashMap::new();
    for (k, line) in records.iter().enumerate() {
        match parse_record(line, job_count) {
            Some((index, result)) => {
                done.insert(index, result);
            }
            // Bundle markers delimit appended blocks; the lane results live
            // in the `done` records that follow, so the marker itself
            // carries no data — it is validated and skipped. A bundle whose
            // block was cut short simply ends up with missing lane records
            // and reruns.
            None if parse_bundle_marker(line, job_count).is_some() => {}
            // Only the final record may be torn; anything else is corruption.
            None if k + 1 == records.len() => {}
            None => {
                return Err(bad(format!(
                    "corrupt sweep journal {}: unparseable record `{line}`",
                    path.display()
                )));
            }
        }
    }
    Ok(done)
}

/// Parses `done <index> <0|1> <f64-bits-hex>`; `None` on any malformation.
fn parse_record(line: &str, job_count: usize) -> Option<(usize, (bool, f64))> {
    let mut fields = line.split_ascii_whitespace();
    if fields.next()? != "done" {
        return None;
    }
    let index: usize = fields.next()?.parse().ok()?;
    let converged = match fields.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let bits_field = fields.next()?;
    if bits_field.len() != 16 || fields.next().is_some() || index >= job_count {
        return None;
    }
    let time = f64::from_bits(u64::from_str_radix(bits_field, 16).ok()?);
    Some((index, (converged, time)))
}

/// Parses `wide <start> <len>`; `None` on any malformation, including a
/// bundle range that overruns the job list.
fn parse_bundle_marker(line: &str, job_count: usize) -> Option<()> {
    let mut fields = line.split_ascii_whitespace();
    if fields.next()? != "wide" {
        return None;
    }
    let start: usize = fields.next()?.parse().ok()?;
    let len: usize = fields.next()?.parse().ok()?;
    if fields.next().is_some() || len == 0 || start.checked_add(len)? > job_count {
        return None;
    }
    Some(())
}

/// Opens the journal for appending, writing the header first when the file
/// is new or empty.
pub(crate) fn open_journal_for_append(path: &Path, fp: u64) -> io::Result<std::fs::File> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if file.metadata()?.len() == 0 {
        writeln!(file, "{HEADER_PREFIX} {fp:016x}")?;
        file.flush()?;
    }
    Ok(file)
}

/// Checkpoint context threaded through a multi-sweep experiment (each sweep
/// gets a labeled subdirectory; the fresh-job budget is shared across them).
#[derive(Debug)]
pub struct ExperimentCheckpoint {
    base: PathBuf,
    snapshot_interval: Option<u64>,
    budget: Option<usize>,
}

impl ExperimentCheckpoint {
    /// Creates a context rooted at `base` with an optional mid-job snapshot
    /// interval and an optional shared fresh-job budget.
    pub fn new(
        base: impl Into<PathBuf>,
        snapshot_interval: Option<u64>,
        budget: Option<usize>,
    ) -> Self {
        Self {
            base: base.into(),
            snapshot_interval,
            budget,
        }
    }

    /// The [`CheckpointConfig`] for the sweep labeled `label`, carrying
    /// whatever fresh-job budget remains.
    pub fn sweep_config(&self, label: &str) -> CheckpointConfig {
        CheckpointConfig {
            dir: self.base.join(label),
            snapshot_interval: self.snapshot_interval,
            job_limit: self.budget,
        }
    }

    /// Deducts `fresh` completed jobs from the shared budget.
    pub fn consume(&mut self, fresh: usize) {
        if let Some(budget) = &mut self.budget {
            *budget = budget.saturating_sub(fresh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::Fratricide;

    /// A unique scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("ppsweep_test_{}_{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn assert_points_bit_identical(a: &[SweepPoint], b: &[SweepPoint]) {
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(b) {
            assert_eq!(pa.n, pb.n);
            assert_eq!(pa.unconverged, pb.unconverged);
            let (va, vb) = (pa.times.values(), pb.times.values());
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "n = {}", pa.n);
            }
        }
    }

    #[test]
    fn uninterrupted_checkpointed_sweep_matches_plain_sweep() {
        // Both sides read the same PP_SIM_LANES default, so the bundle
        // compositions — and therefore every draw — coincide.
        let scratch = Scratch::new("plain_equiv");
        let ns = [16usize, 32];
        let plain = crate::stabilization_sweep(|_| Fratricide, &ns, 4, 11, u64::MAX);
        let ckpt = CheckpointConfig::new(&scratch.0);
        let status = stabilization_sweep_checkpointed(|_| Fratricide, &ns, 4, 11, u64::MAX, &ckpt)
            .expect("sweep checkpoints");
        let SweepStatus::Complete { points, fresh_jobs } = status else {
            panic!("no job limit: sweep must complete");
        };
        assert_eq!(fresh_jobs, 8);
        assert_points_bit_identical(&plain, &points);
    }

    #[test]
    fn killed_and_resumed_sweep_is_bit_identical_to_clean() {
        let scratch = Scratch::new("kill_resume");
        let ns = [16usize, 24];
        let (seeds, master, width) = (5u64, 77u64, 2);
        let plain =
            crate::stabilization_sweep_wide(|_| Fratricide, &ns, seeds, master, u64::MAX, width);

        // Crash after every 3 fresh jobs until the sweep completes. At
        // width 2 each size's 5 seeds bundle as [2, 2, 1]; the
        // bundle-granular limit takes bundles until planned fresh jobs
        // reach 3, so the rounds complete [4, 3, 3] fresh jobs.
        let mut shard = CheckpointConfig::new(&scratch.0);
        shard.job_limit = Some(3);
        let mut fresh_per_round = Vec::new();
        let points = loop {
            assert!(fresh_per_round.len() < 20, "sweep failed to make progress");
            match stabilization_sweep_checkpointed_wide(
                |_| Fratricide,
                &ns,
                seeds,
                master,
                u64::MAX,
                &shard,
                width,
            )
            .expect("sweep checkpoints")
            {
                SweepStatus::Complete { points, fresh_jobs } => {
                    fresh_per_round.push(fresh_jobs);
                    break points;
                }
                SweepStatus::Suspended { fresh_jobs } => fresh_per_round.push(fresh_jobs),
            }
        };
        assert_eq!(fresh_per_round, vec![4, 3, 3], "10 jobs in width-2 bundles");
        assert_points_bit_identical(&plain, &points);

        // Re-invoking a finished sweep replays the journal: zero fresh jobs,
        // same points.
        match stabilization_sweep_checkpointed_wide(
            |_| Fratricide,
            &ns,
            seeds,
            master,
            u64::MAX,
            &shard,
            width,
        )
        .expect("sweep checkpoints")
        {
            SweepStatus::Complete {
                points: replayed,
                fresh_jobs,
            } => {
                assert_eq!(fresh_jobs, 0);
                assert_points_bit_identical(&points, &replayed);
            }
            SweepStatus::Suspended { .. } => panic!("journal is complete"),
        }
    }

    #[test]
    fn mid_job_snapshots_resume_bit_identically() {
        // Both sides run at the same snapshot interval; the killed side is
        // forced through snapshot restores, the straight side is not.
        let ns = [64usize];
        let (seeds, master) = (2u64, 5u64);
        let straight_dir = Scratch::new("midjob_straight");
        let mut straight = CheckpointConfig::new(&straight_dir.0);
        straight.snapshot_interval = Some(512);
        let SweepStatus::Complete {
            points: expected, ..
        } = stabilization_sweep_checkpointed(
            |_| Fratricide,
            &ns,
            seeds,
            master,
            u64::MAX,
            &straight,
        )
        .expect("sweep checkpoints")
        else {
            panic!("no job limit: sweep must complete");
        };

        let killed_dir = Scratch::new("midjob_killed");
        let mut killed = CheckpointConfig::new(&killed_dir.0);
        killed.snapshot_interval = Some(512);
        killed.job_limit = Some(1);
        let points = loop {
            match stabilization_sweep_checkpointed(
                |_| Fratricide,
                &ns,
                seeds,
                master,
                u64::MAX,
                &killed,
            )
            .expect("sweep checkpoints")
            {
                SweepStatus::Complete { points, .. } => break points,
                SweepStatus::Suspended { .. } => {}
            }
        };
        assert_points_bit_identical(&expected, &points);
    }

    #[test]
    fn journal_rejects_mismatched_sweep_parameters() {
        let scratch = Scratch::new("fingerprint");
        let ckpt = CheckpointConfig::new(&scratch.0);
        stabilization_sweep_checkpointed(|_| Fratricide, &[16], 2, 1, u64::MAX, &ckpt)
            .expect("sweep checkpoints");
        // Same directory, different master seed: must refuse, not mis-merge.
        let err = stabilization_sweep_checkpointed(|_| Fratricide, &[16], 2, 2, u64::MAX, &ckpt)
            .expect_err("fingerprint mismatch must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn journal_rejects_mismatched_execution_modes() {
        // Bundle-mode results at different widths — or scalar
        // snapshot-interval results — agree in law but not bit-for-bit, so
        // a journal written under one execution mode must refuse the others.
        let scratch = Scratch::new("mode_mismatch");
        let ckpt = CheckpointConfig::new(&scratch.0);
        stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 2, 1, u64::MAX, &ckpt, 2)
            .expect("sweep checkpoints");
        let err =
            stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 2, 1, u64::MAX, &ckpt, 3)
                .expect_err("width mismatch must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut scalar = ckpt.clone();
        scalar.snapshot_interval = Some(512);
        let err = stabilization_sweep_checkpointed_wide(
            |_| Fratricide,
            &[16],
            2,
            1,
            u64::MAX,
            &scalar,
            2,
        )
        .expect_err("mode mismatch must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fingerprint_separates_round_laws() {
        // Different round laws consume the RNG differently, so their
        // journals are not interchangeable — the law tag must perturb the
        // fingerprint in both execution modes.
        for lane_mode in [Some(8), None] {
            let base = fingerprint(&[16], 2, 1, u64::MAX, lane_mode, LawMode::SequenceExpansion);
            for law in [LawMode::Contingency, LawMode::MultiRound] {
                assert_ne!(base, fingerprint(&[16], 2, 1, u64::MAX, lane_mode, law));
            }
        }
    }

    #[test]
    fn journal_tolerates_a_torn_final_record() {
        let scratch = Scratch::new("torn_tail");
        let ckpt = CheckpointConfig::new(&scratch.0);
        let mut limited = ckpt.clone();
        limited.job_limit = Some(2);
        stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 3, 9, u64::MAX, &limited, 1)
            .expect("sweep checkpoints");
        // Simulate a crash mid-append: a record cut off halfway through.
        let journal = scratch.0.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&journal).unwrap();
        text.push_str("done 2 1 3ff");
        std::fs::write(&journal, &text).unwrap();
        let status =
            stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 3, 9, u64::MAX, &ckpt, 1)
                .expect("torn tail is tolerated");
        let SweepStatus::Complete { points, fresh_jobs } = status else {
            panic!("sweep must complete");
        };
        // The torn record was discarded, so its job reran.
        assert_eq!(fresh_jobs, 1);
        let plain = crate::stabilization_sweep_wide(|_| Fratricide, &[16], 3, 9, u64::MAX, 1);
        assert_points_bit_identical(&plain, &points);
    }

    #[test]
    fn torn_bundle_block_reruns_the_whole_bundle() {
        // Cut a width-2 bundle's block after its first lane record: the
        // bundle is incomplete, so both of its lanes rerun — and, being
        // deterministic, land on the same points as the clean sweep.
        let scratch = Scratch::new("torn_bundle");
        let ckpt = CheckpointConfig::new(&scratch.0);
        let mut limited = ckpt.clone();
        limited.job_limit = Some(1);
        stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 4, 13, u64::MAX, &limited, 2)
            .expect("sweep checkpoints");
        let journal = scratch.0.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&journal).unwrap();
        // header + "wide 0 2" + two done lines: drop the final done line.
        let mut lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "unexpected journal shape:\n{text}");
        lines.pop();
        std::fs::write(&journal, lines.join("\n") + "\n").unwrap();
        let status =
            stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 4, 13, u64::MAX, &ckpt, 2)
                .expect("incomplete bundles rerun");
        let SweepStatus::Complete { points, fresh_jobs } = status else {
            panic!("sweep must complete");
        };
        assert_eq!(fresh_jobs, 4, "the cut bundle plus the remaining one");
        let plain = crate::stabilization_sweep_wide(|_| Fratricide, &[16], 4, 13, u64::MAX, 2);
        assert_points_bit_identical(&plain, &points);
    }

    #[test]
    fn corrupt_interior_record_is_an_error() {
        let scratch = Scratch::new("corrupt_interior");
        let mut limited = CheckpointConfig::new(&scratch.0);
        limited.job_limit = Some(2);
        stabilization_sweep_checkpointed_wide(|_| Fratricide, &[16], 3, 9, u64::MAX, &limited, 1)
            .expect("sweep checkpoints");
        let journal = scratch.0.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&journal).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "done garbage");
        std::fs::write(&journal, lines.join("\n") + "\n").unwrap();
        let err = stabilization_sweep_checkpointed_wide(
            |_| Fratricide,
            &[16],
            3,
            9,
            u64::MAX,
            &CheckpointConfig::new(&scratch.0),
            1,
        )
        .expect_err("interior corruption must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn record_parser_rejects_malformed_lines() {
        assert!(parse_record("done 0 1 3ff0000000000000", 4).is_some());
        for line in [
            "done 0 1 3ff",                   // short bits field
            "done 0 2 3ff0000000000000",      // bad converged flag
            "done 9 1 3ff0000000000000",      // index out of range (job_count 4)
            "done 0 1 3ff0000000000000 tail", // trailing field
            "redo 0 1 3ff0000000000000",      // wrong verb
            "",
        ] {
            assert!(parse_record(line, 4).is_none(), "accepted `{line}`");
        }
    }

    #[test]
    fn bundle_marker_parser_rejects_malformed_lines() {
        assert!(parse_bundle_marker("wide 0 2", 4).is_some());
        assert!(parse_bundle_marker("wide 2 2", 4).is_some());
        for line in [
            "wide 3 2",   // overruns the job list (job_count 4)
            "wide 0 0",   // empty bundle
            "wide 0",     // missing length
            "wide 0 2 x", // trailing field
            "done 0 2",   // wrong verb
            "",
        ] {
            assert!(parse_bundle_marker(line, 4).is_none(), "accepted `{line}`");
        }
    }
}
