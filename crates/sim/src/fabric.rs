//! Multi-process sweep fabric: sharded sweeps with a bit-identical merge.
//!
//! The engine saturates a single core on every workload shape, so the next
//! throughput lever is horizontal: run one sweep grid across several OS
//! processes (or boxes sharing a directory) and merge the shards back into
//! exactly the artifact a sequential sweep would have produced.
//!
//! # Shard model
//!
//! A *fabric run* lives in one directory:
//!
//! ```text
//! dir/
//!   claims/<start>.claim   cross-process bundle claims (create_new is atomic)
//!   shard_<k>/journal.txt  ppsweep v2 journal of the jobs shard k ran
//!   shard_<k>/manifest.json  machine-readable shard exit summary
//!   shard_<k>/progress.txt   "done total" snapshot for live aggregation
//!   journal.txt            canonical merged journal (written by the merge)
//! ```
//!
//! Work is claimed at **bundle** granularity ([`sweep_bundles`]' same-`n`
//! lane bundles): a worker that wants a bundle atomically creates
//! `claims/<start>.claim` and runs it only on success, so shards never
//! duplicate work — *dynamic range claiming*, not static partitioning. The
//! job space's heavy tail (stabilization times straggle far past their
//! expectation) is what rules static shards out: whichever shard statically
//! owned the straggler would cap the whole run. Two levers bound the
//! makespan instead: bundles are claimed largest-`n`-first
//! ([`cost_order`]'s LPT schedule), and any idle worker — same box or not —
//! can pick up whatever remains.
//!
//! # Merge contract
//!
//! Bundle results are deterministic functions of
//! `(protocol, n, seeds, lanes, law, max_steps)` — never of which process,
//! thread, or retry round ran them — and shard journals record exact `f64`
//! bit patterns. The merge unions the shard journals (refusing mismatched
//! fingerprints and, defensively, conflicting duplicates), then renders the
//! *canonical journal*: bundle blocks in bundle-start order, a pure
//! function of the results. Aggregation replays job-index order exactly as
//! [`crate::stabilization_sweep`] traverses it, and [`Summary`] retains raw
//! values so in-order accumulation is bit-exact. Sequential run, 1 shard,
//! 40 shards, crashed-and-resumed shards: same bytes, same checksums
//! ([`Summary::checksum`] is the witness surfaced in [`points_table`]).
//!
//! # Crash recovery
//!
//! A worker that dies mid-bundle leaves its claim behind with no journal
//! block. Between retry rounds the orchestrator calls
//! [`clean_stale_claims`] — drop every claim whose bundle is not fully
//! journaled in *some* shard — and relaunches workers; the released bundles
//! get re-claimed and rerun, deterministically, to the same bits. A worker
//! that died *after* journaling loses nothing: its journal is read by the
//! merge whether or not the process exited cleanly. Torn final blocks are
//! tolerated by the journal loader and rerun whole.
//!
//! [`Summary`]: pp_stats::Summary
//! [`cost_order`]: crate::runner::cost_order

use crate::checkpoint::{
    fingerprint, load_journal, open_journal_for_append, write_atomically, HEADER_PREFIX,
    JOURNAL_FILE,
};
use crate::runner::{
    aggregate_points, cost_order, run_bundle, sweep_bundles, sweep_flat_wide, worker_count,
    SweepBundle, SweepPoint,
};
use pp_engine::LeaderElection;
use pp_stats::Table;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shard manifest file name inside a shard directory.
const MANIFEST_FILE: &str = "manifest.json";

/// Progress snapshot file name inside a shard directory.
const PROGRESS_FILE: &str = "progress.txt";

/// Claim directory name inside a fabric run directory.
const CLAIMS_DIR: &str = "claims";

/// Hard cap on shard ids — far above any useful fan-out, low enough that
/// shard ids always fit the rollups' `i64` encoding.
pub const MAX_SHARDS: u64 = 4096;

/// One sweep grid as the fabric identifies it: every worker and the merge
/// must agree on all of these fields (they are fingerprinted into each
/// shard journal's header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSpec {
    /// Protocol name. Part of the fingerprint — two protocols' sweeps must
    /// never merge even when their numeric grids coincide — and resolved to
    /// a concrete protocol by the `ppsweep` binary.
    pub protocol: String,
    /// Population sizes, in presentation order.
    pub ns: Vec<usize>,
    /// Seeds (runs) per population size.
    pub seeds: u64,
    /// Master seed deriving every job's RNG stream.
    pub master_seed: u64,
    /// Per-run step budget (`u64::MAX` for unbounded).
    pub max_steps: u64,
    /// Lane-bundle width. Explicit — not the `PP_SIM_LANES` resolution — so
    /// every process of a run agrees on bundle composition.
    pub lanes: usize,
}

impl FabricSpec {
    /// The run's journal fingerprint: the checkpoint fingerprint of the
    /// grid (which covers the lane width and round law) extended over the
    /// protocol name with the same FNV-1a step.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fingerprint(
            &self.ns,
            self.seeds,
            self.master_seed,
            self.max_steps,
            Some(self.lanes),
            crate::sweep_law_mode(),
        );
        for b in self.protocol.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Flat job count of the grid.
    pub fn total_jobs(&self) -> usize {
        self.ns.len() * self.seeds as usize
    }

    fn bundles(&self) -> Vec<SweepBundle> {
        sweep_bundles(&self.ns, self.seeds, self.master_seed, self.lanes)
    }
}

/// The directory of shard `shard` inside fabric run directory `dir`.
pub fn shard_dir(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard_{shard}"))
}

/// How a worker invocation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Jobs this invocation executed and journaled (the rest were already
    /// journaled, or claimed by other shards).
    pub fresh_jobs: usize,
    /// `true` when the worker stopped at its job limit with bundles still
    /// unclaimed; rerun with the same directory to continue.
    pub suspended: bool,
}

/// Machine-readable shard exit summary (`manifest.json`), hand-rolled JSON
/// like the rest of the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Shard id.
    pub shard: u64,
    /// OS process that ran the shard.
    pub pid: u32,
    /// The run fingerprint the shard journaled under.
    pub fingerprint: u64,
    /// Jobs journaled by this shard in total (across invocations).
    pub jobs: u64,
    /// Worker threads inside the shard process.
    pub threads: u64,
    /// Wall-clock seconds of the final invocation.
    pub wall_seconds: f64,
    /// `false` when the invocation suspended at a job limit.
    pub complete: bool,
}

impl ShardManifest {
    /// Serializes the manifest as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"pp-sweep-shard/v1\",\"shard\":{},\"pid\":{},\
             \"fingerprint\":\"{:016x}\",\"jobs\":{},\"threads\":{},\
             \"wall_seconds\":{},\"complete\":{}}}\n",
            self.shard,
            self.pid,
            self.fingerprint,
            self.jobs,
            self.threads,
            self.wall_seconds,
            self.complete
        )
    }

    /// Parses [`Self::to_json`]'s output; `None` on any malformation or an
    /// unknown schema.
    pub fn parse(text: &str) -> Option<Self> {
        if scan_field(text, "schema")? != "\"pp-sweep-shard/v1\"" {
            return None;
        }
        Some(Self {
            shard: scan_field(text, "shard")?.parse().ok()?,
            pid: scan_field(text, "pid")?.parse().ok()?,
            fingerprint: u64::from_str_radix(
                scan_field(text, "fingerprint")?.trim_matches('"'),
                16,
            )
            .ok()?,
            jobs: scan_field(text, "jobs")?.parse().ok()?,
            threads: scan_field(text, "threads")?.parse().ok()?,
            wall_seconds: scan_field(text, "wall_seconds")?.parse().ok()?,
            complete: scan_field(text, "complete")?.parse().ok()?,
        })
    }
}

/// The raw text of `"key":` up to the next `,` or `}` — enough of a JSON
/// scanner for the flat objects this module writes.
fn scan_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    Some(rest[..rest.find([',', '}'])?].trim())
}

/// Runs one worker shard of the grid: claims pending bundles from the
/// shared claim directory (largest-`n`-first), journals each completed
/// bundle into `shard_<shard>/journal.txt`, keeps a live progress snapshot,
/// and writes the shard manifest on exit.
///
/// Reinvoking with the same directory resumes: journaled bundles are
/// skipped, claimed-elsewhere bundles are left alone, and everything else
/// is up for claiming. `job_limit` bounds the *fresh* jobs of this
/// invocation (bundle-granular, like the checkpointed sweep's); hitting it
/// reports `suspended`.
///
/// # Errors
///
/// Journal / manifest I/O errors, or a shard journal whose fingerprint does
/// not match `spec`.
pub fn run_worker_shard<P, F>(
    make: F,
    spec: &FabricSpec,
    dir: &Path,
    shard: u64,
    job_limit: Option<usize>,
) -> io::Result<ShardOutcome>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    assert!(shard < MAX_SHARDS, "shard id {shard} exceeds {MAX_SHARDS}");
    let started = Instant::now();
    crate::set_sweep_shard(Some(shard));
    let law = crate::sweep_law_mode();
    let fp = spec.fingerprint();
    let bundles = spec.bundles();
    let total = spec.total_jobs();
    let claims = dir.join(CLAIMS_DIR);
    std::fs::create_dir_all(&claims)?;
    let my_dir = shard_dir(dir, shard);
    std::fs::create_dir_all(&my_dir)?;
    let journal_path = my_dir.join(JOURNAL_FILE);
    let done = load_journal(&journal_path, fp, total)?;
    let journaled = done.len();
    write_progress(&my_dir, journaled, total)?;

    let order = cost_order(&bundles);
    let journal = Mutex::new(open_journal_for_append(&journal_path, fp)?);
    let cursor = AtomicUsize::new(0);
    let fresh = AtomicUsize::new(0);
    let suspended = AtomicBool::new(false);
    let budget = job_limit.unwrap_or(usize::MAX);
    let workers = worker_count(bundles.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    let bundle = &bundles[order[k]];
                    let range = bundle.start..bundle.start + bundle.seeds.len();
                    if range.clone().all(|i| done.contains_key(&i)) {
                        continue;
                    }
                    // Bundle-granular budget: checked before claiming, so a
                    // suspended worker never strands a claim (only a killed
                    // one does — that's what clean_stale_claims is for).
                    if fresh.load(Ordering::Relaxed) >= budget {
                        suspended.store(true, Ordering::Release);
                        break;
                    }
                    if !claim_bundle(&claims, bundle.start, shard) {
                        continue;
                    }
                    let results = run_bundle(&make, bundle.n, &bundle.seeds, spec.max_steps, law);
                    // One buffered append per bundle, exactly like the
                    // checkpointed sweep: a crash tears at most the final
                    // block, which the loader discards and the retry reruns.
                    let mut block = format!("wide {} {}\n", bundle.start, bundle.seeds.len());
                    for (j, &(converged, time)) in results.iter().enumerate() {
                        let _ = writeln!(
                            block,
                            "done {} {} {:016x}",
                            bundle.start + j,
                            u8::from(converged),
                            time.to_bits()
                        );
                    }
                    {
                        let mut file = journal.lock().expect("journal writers do not panic");
                        file.write_all(block.as_bytes())
                            .and_then(|()| file.flush())
                            .expect("shard journal append failed");
                    }
                    let so_far =
                        fresh.fetch_add(bundle.seeds.len(), Ordering::Relaxed) + bundle.seeds.len();
                    let _ = write_progress(&my_dir, journaled + so_far, total);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("a fabric worker thread panicked");
        }
    });

    let fresh_jobs = fresh.load(Ordering::Relaxed);
    let suspended = suspended.load(Ordering::Acquire);
    crate::runner::record_fanout_rollup(
        fresh_jobs as u64,
        workers as u64,
        started.elapsed().as_secs_f64(),
    );
    let manifest = ShardManifest {
        shard,
        pid: std::process::id(),
        fingerprint: fp,
        jobs: (journaled + fresh_jobs) as u64,
        threads: workers as u64,
        wall_seconds: started.elapsed().as_secs_f64(),
        complete: !suspended,
    };
    write_atomically(&my_dir.join(MANIFEST_FILE), manifest.to_json().as_bytes())?;
    Ok(ShardOutcome {
        fresh_jobs,
        suspended,
    })
}

/// Atomically claims bundle `start`: `create_new` is atomic on every
/// platform the workspace targets, so exactly one worker — across all
/// processes sharing the directory — wins each bundle. The file body
/// records the claimant for post-mortems; only its existence matters.
fn claim_bundle(claims: &Path, start: usize, shard: u64) -> bool {
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(claims.join(format!("{start}.claim")))
    {
        Ok(mut file) => {
            let _ = writeln!(file, "{shard} {}", std::process::id());
            true
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => false,
        Err(e) => panic!("claim file create failed: {e}"),
    }
}

/// Atomically rewrites a shard's `progress.txt` as `"<done> <total>"`.
fn write_progress(shard_dir: &Path, done: usize, total: usize) -> io::Result<()> {
    write_atomically(
        &shard_dir.join(PROGRESS_FILE),
        format!("{done} {total}\n").as_bytes(),
    )
}

/// Sums the shard progress snapshots into `(jobs done, jobs total)`.
/// Missing or unreadable snapshots count zero — progress is advisory, the
/// journals are the truth.
pub fn aggregate_progress(dir: &Path, shards: u64) -> (usize, usize) {
    let mut done = 0;
    let mut total = 0;
    for shard in 0..shards {
        if let Ok(text) = std::fs::read_to_string(shard_dir(dir, shard).join(PROGRESS_FILE)) {
            let mut fields = text.split_ascii_whitespace();
            let d: Option<usize> = fields.next().and_then(|v| v.parse().ok());
            let t: Option<usize> = fields.next().and_then(|v| v.parse().ok());
            if let (Some(d), Some(t)) = (d, t) {
                done += d;
                total = t;
            }
        }
    }
    (done, total)
}

/// Removes claims on bundles no shard journal has completed: their
/// claimants died between claiming and journaling. Call between retry
/// rounds, never while workers run — a live worker's in-flight claim is
/// indistinguishable from a dead one's until its journal block lands.
/// Returns the number of claims released.
///
/// # Errors
///
/// Journal I/O errors, a fingerprint-mismatched shard journal, or a claim
/// that cannot be removed.
pub fn clean_stale_claims(spec: &FabricSpec, dir: &Path, shards: u64) -> io::Result<usize> {
    let fp = spec.fingerprint();
    let total = spec.total_jobs();
    let mut done: HashMap<usize, (bool, f64)> = HashMap::new();
    for shard in 0..shards {
        done.extend(load_journal(
            &shard_dir(dir, shard).join(JOURNAL_FILE),
            fp,
            total,
        )?);
    }
    let mut removed = 0;
    for bundle in spec.bundles() {
        let range = bundle.start..bundle.start + bundle.seeds.len();
        if range.clone().all(|i| done.contains_key(&i)) {
            continue;
        }
        match std::fs::remove_file(dir.join(CLAIMS_DIR).join(format!("{}.claim", bundle.start))) {
            Ok(()) => removed += 1,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(removed)
}

/// What a merge found.
#[derive(Debug)]
pub struct MergeReport {
    /// Aggregated sweep points when every job was journaled somewhere —
    /// bit-identical to the sequential sweep's — `None` otherwise.
    pub points: Option<Vec<SweepPoint>>,
    /// Jobs with no journaled result in any shard.
    pub missing: usize,
    /// Parsed manifests of the shard directories that had one.
    pub manifests: Vec<ShardManifest>,
}

/// Merges shard journals `shard_0 .. shard_<shards>` under `dir`. When the
/// union covers every job, writes the canonical merged journal to
/// `dir/journal.txt` and returns the aggregated points; otherwise reports
/// how many jobs are missing (rerun workers, then merge again).
///
/// # Errors
///
/// I/O errors; a shard journal whose header fingerprint does not match
/// `spec` (mixed-fingerprint shard directories are refused, `InvalidData`);
/// or shard journals that disagree on a job's exact result — impossible for
/// honestly-produced shards, since runs are deterministic, so disagreement
/// means foreign state and the merge must not guess.
pub fn merge_shards(spec: &FabricSpec, dir: &Path, shards: u64) -> io::Result<MergeReport> {
    let fp = spec.fingerprint();
    let total = spec.total_jobs();
    let mut done: HashMap<usize, (bool, f64)> = HashMap::new();
    let mut manifests = Vec::new();
    for shard in 0..shards {
        let sdir = shard_dir(dir, shard);
        let shard_done = load_journal(&sdir.join(JOURNAL_FILE), fp, total)?;
        for (i, result) in shard_done {
            if let Some(&prior) = done.get(&i) {
                if prior.0 != result.0 || prior.1.to_bits() != result.1.to_bits() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "shard journals under {} disagree on job {i}; runs are \
                             deterministic, so divergent duplicates mean foreign shard state",
                            dir.display()
                        ),
                    ));
                }
            } else {
                done.insert(i, result);
            }
        }
        if let Ok(text) = std::fs::read_to_string(sdir.join(MANIFEST_FILE)) {
            if let Some(manifest) = ShardManifest::parse(&text) {
                manifests.push(manifest);
            }
        }
    }
    let missing = total - done.len();
    if missing > 0 {
        return Ok(MergeReport {
            points: None,
            missing,
            manifests,
        });
    }
    let flat: Vec<(bool, f64)> = (0..total).map(|i| done[&i]).collect();
    write_atomically(
        &dir.join(JOURNAL_FILE),
        canonical_journal(spec, fp, &flat).as_bytes(),
    )?;
    Ok(MergeReport {
        points: Some(aggregate_points(&spec.ns, spec.seeds, &flat)),
        missing: 0,
        manifests,
    })
}

/// Runs the whole grid in this process and writes the canonical journal —
/// the fabric's 0-shard baseline, producing exactly the artifacts a
/// sharded run merges to.
///
/// # Errors
///
/// Journal write errors.
pub fn run_sequential<P, F>(make: F, spec: &FabricSpec, dir: &Path) -> io::Result<Vec<SweepPoint>>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    std::fs::create_dir_all(dir)?;
    let flat = sweep_flat_wide(
        &make,
        &spec.ns,
        spec.seeds,
        spec.master_seed,
        spec.max_steps,
        spec.lanes,
    );
    write_atomically(
        &dir.join(JOURNAL_FILE),
        canonical_journal(spec, spec.fingerprint(), &flat).as_bytes(),
    )?;
    Ok(aggregate_points(&spec.ns, spec.seeds, &flat))
}

/// Renders the canonical journal of a fully-known job list: the `ppsweep
/// v2` header plus one bundle block per [`sweep_bundles`] entry, in
/// bundle-start order. A pure function of the results — which process ran
/// which bundle, in what order, across how many crashes, leaves no trace —
/// so every complete run of the same spec renders the same bytes.
fn canonical_journal(spec: &FabricSpec, fp: u64, flat: &[(bool, f64)]) -> String {
    let mut text = format!("{HEADER_PREFIX} {fp:016x}\n");
    for bundle in spec.bundles() {
        let _ = writeln!(text, "wide {} {}", bundle.start, bundle.seeds.len());
        for k in 0..bundle.seeds.len() {
            let (converged, time) = flat[bundle.start + k];
            let _ = writeln!(
                text,
                "done {} {} {:016x}",
                bundle.start + k,
                u8::from(converged),
                time.to_bits()
            );
        }
    }
    text
}

/// Renders sweep points as the fabric's results table. The `checksum`
/// column is [`pp_stats::Summary::checksum`], the bit-exactness witness:
/// matching checksums mean the shard-merged summary reproduced the
/// sequential sweep's exact observations, not merely cells that round the
/// same way.
pub fn points_table(points: &[SweepPoint]) -> Table {
    let mut table = Table::new([
        "n",
        "runs",
        "unconverged",
        "mean_time",
        "sd",
        "p95",
        "checksum",
    ]);
    for p in points {
        table.push_row([
            p.n.to_string(),
            p.times.count().to_string(),
            p.unconverged.to_string(),
            format!("{:.4}", p.times.mean()),
            format!("{:.4}", p.times.std_dev()),
            format!("{:.4}", p.times.quantile(0.95)),
            format!("{:016x}", p.times.checksum()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::Fratricide;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("ppfabric_test_{}_{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn spec() -> FabricSpec {
        FabricSpec {
            protocol: "fratricide".into(),
            ns: vec![16, 32],
            seeds: 5,
            master_seed: 42,
            max_steps: u64::MAX,
            lanes: 2,
        }
    }

    #[test]
    fn fingerprint_separates_protocols() {
        let a = spec();
        let mut b = spec();
        b.protocol = "pll".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn manifest_json_roundtrips() {
        let manifest = ShardManifest {
            shard: 3,
            pid: 4242,
            fingerprint: 0x0123_4567_89ab_cdef,
            jobs: 17,
            threads: 2,
            wall_seconds: 1.25,
            complete: true,
        };
        let parsed = ShardManifest::parse(&manifest.to_json()).expect("roundtrip");
        assert_eq!(parsed, manifest);
        assert_eq!(ShardManifest::parse("{}"), None);
        assert_eq!(
            ShardManifest::parse("{\"schema\":\"pp-sweep-shard/v9\",\"shard\":0}"),
            None
        );
    }

    #[test]
    fn one_shard_run_merges_bit_identically_to_sequential() {
        let spec = spec();
        let seq = Scratch::new("seq");
        let sharded = Scratch::new("one_shard");
        let points = run_sequential(|_| Fratricide, &spec, &seq.0).expect("sequential runs");
        let outcome =
            run_worker_shard(|_| Fratricide, &spec, &sharded.0, 0, None).expect("worker runs");
        assert!(!outcome.suspended);
        assert_eq!(outcome.fresh_jobs, spec.total_jobs());
        let report = merge_shards(&spec, &sharded.0, 1).expect("merge succeeds");
        assert_eq!(report.missing, 0);
        let merged = report.points.expect("complete merge yields points");
        // Same table bytes (which includes the Summary checksums) and the
        // same canonical journal bytes.
        assert_eq!(
            points_table(&points).to_csv(),
            points_table(&merged).to_csv()
        );
        let seq_journal = std::fs::read(seq.0.join(JOURNAL_FILE)).unwrap();
        let merged_journal = std::fs::read(sharded.0.join(JOURNAL_FILE)).unwrap();
        assert_eq!(seq_journal, merged_journal);
        // The manifest records the whole grid.
        assert_eq!(report.manifests.len(), 1);
        assert_eq!(report.manifests[0].jobs, spec.total_jobs() as u64);
        assert!(report.manifests[0].complete);
    }

    #[test]
    fn claims_prevent_duplicate_work_across_shards() {
        let spec = spec();
        let dir = Scratch::new("two_shards");
        let first = run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("shard 0 runs");
        // Shard 0 claimed everything; shard 1 finds no work but still exits
        // complete with a manifest.
        let second =
            run_worker_shard(|_| Fratricide, &spec, &dir.0, 1, None).expect("shard 1 runs");
        assert_eq!(first.fresh_jobs, spec.total_jobs());
        assert_eq!(second.fresh_jobs, 0);
        assert!(!second.suspended);
        let report = merge_shards(&spec, &dir.0, 2).expect("merge succeeds");
        assert_eq!(report.missing, 0);
        assert_eq!(report.manifests.len(), 2);
    }

    #[test]
    fn stale_claim_blocks_bundle_until_cleaned() {
        let spec = spec();
        let dir = Scratch::new("stale_claim");
        // Fake a worker that died after claiming bundle 0 and before
        // journaling it.
        let claims = dir.0.join(CLAIMS_DIR);
        std::fs::create_dir_all(&claims).unwrap();
        assert!(claim_bundle(&claims, 0, 7));
        let outcome =
            run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("worker runs");
        assert_eq!(outcome.fresh_jobs, spec.total_jobs() - 2, "bundle 0 held");
        let report = merge_shards(&spec, &dir.0, 1).expect("merge reads journals");
        assert_eq!(report.missing, 2);
        assert!(report.points.is_none());
        // The orchestrator's retry round: release dead claims, rerun, merge.
        assert_eq!(clean_stale_claims(&spec, &dir.0, 1).unwrap(), 1);
        let outcome = run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("retry runs");
        assert_eq!(outcome.fresh_jobs, 2);
        let report = merge_shards(&spec, &dir.0, 1).expect("merge succeeds");
        let merged = report.points.expect("complete after retry");
        let seq = Scratch::new("stale_claim_seq");
        let points = run_sequential(|_| Fratricide, &spec, &seq.0).expect("sequential runs");
        assert_eq!(
            points_table(&points).to_csv(),
            points_table(&merged).to_csv()
        );
        assert_eq!(
            std::fs::read(seq.0.join(JOURNAL_FILE)).unwrap(),
            std::fs::read(dir.0.join(JOURNAL_FILE)).unwrap()
        );
    }

    #[test]
    fn merge_refuses_mixed_fingerprint_shards() {
        let spec = spec();
        let dir = Scratch::new("mixed_fp");
        run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("shard 0 runs");
        // Shard 1 journaled a *different* sweep (other master seed): its
        // journal header cannot match this spec's fingerprint.
        let mut foreign = spec.clone();
        foreign.master_seed = 43;
        run_worker_shard(|_| Fratricide, &foreign, &dir.0, 1, None).expect("foreign shard runs");
        let err = merge_shards(&spec, &dir.0, 2).expect_err("mixed fingerprints must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Same for the claim janitor, which reads the same journals.
        let err = clean_stale_claims(&spec, &dir.0, 2).expect_err("janitor must refuse too");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn suspended_worker_resumes_from_its_journal() {
        let spec = spec();
        let dir = Scratch::new("suspend_resume");
        // 10 jobs in width-2 bundles; a limit of 3 suspends after 2 bundles.
        let outcome = run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, Some(3))
            .expect("limited worker runs");
        assert!(outcome.suspended);
        assert!(outcome.fresh_jobs >= 3, "bundle-granular overshoot allowed");
        let resumed =
            run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("resume runs");
        assert!(!resumed.suspended);
        assert_eq!(resumed.fresh_jobs + outcome.fresh_jobs, spec.total_jobs());
        let report = merge_shards(&spec, &dir.0, 1).expect("merge succeeds");
        assert_eq!(report.missing, 0);
    }

    #[test]
    fn progress_snapshots_aggregate_across_shards() {
        let spec = spec();
        let dir = Scratch::new("progress");
        run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("worker runs");
        let (done, total) = aggregate_progress(&dir.0, 1);
        assert_eq!((done, total), (spec.total_jobs(), spec.total_jobs()));
        // A shard with no snapshot contributes nothing rather than erroring.
        let (done_two, total_two) = aggregate_progress(&dir.0, 2);
        assert_eq!((done_two, total_two), (done, total));
    }
}
