//! Experiment harness reproducing every table and key lemma of
//! *"Logarithmic Expected-Time Leader Election in Population Protocol
//! Model"* (Sudo et al., PODC 2019).
//!
//! Each experiment is a self-contained module producing [`pp_stats::Table`]s
//! and prose notes; the `experiments` binary runs them by id:
//!
//! ```text
//! cargo run --release -p pp-sim --bin experiments -- list
//! cargo run --release -p pp-sim --bin experiments -- table1
//! cargo run --release -p pp-sim --bin experiments -- all --quick
//! ```
//!
//! | id | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — states vs. stabilization time across protocols |
//! | `table2` | Table 2 — lower-bound consistency |
//! | `table3` | Table 3 — the variables of `P_LL` + Lemma 3 state count |
//! | `lemma2` | Lemma 2 — epidemic completion tail vs. `n·e^{−t/n}` |
//! | `lemma4` | Lemma 4 — `\|V_A\| ≥ n/2`, `\|V_F\| ≥ n/2`, `\|V_B\| ≥ 1` |
//! | `lemma6` | Lemma 6 — synchronization properties P1/P2/P3 |
//! | `lemma7` | Lemma 7 — `QuickElimination()` survivor distribution |
//! | `lemma8` | Lemma 8 — unique leader before epoch 4 w.p. `1 − O(1/log n)` |
//! | `lemma12` | Lemmas 9–12 — `BackUp()` from adversarial configurations |
//! | `theorem1` | Theorem 1 — `O(log n)` expected stabilization time |
//! | `symmetric` | Section 4 — symmetric variant and fair-coin machinery |
//! | `ablation` | design-choice ablations (modules, `m`, `c_max`) |
//! | `attribution` | per-module leader-elimination breakdown |
//! | `scheduler` | robustness beyond the uniformly random scheduler |
//!
//! The experiments default to publication sizes; `--quick` shrinks them to
//! smoke-test scale (used by the integration tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
pub mod experiments;
pub mod fabric;
mod runner;
pub mod trajectory;

pub use checkpoint::{
    stabilization_sweep_checkpointed, stabilization_sweep_checkpointed_wide, CheckpointConfig,
    ExperimentCheckpoint, SweepStatus,
};
pub use runner::{
    enable_sweep_rollup, parallel_map, set_sweep_shard, stabilization_sweep,
    stabilization_sweep_agents, stabilization_sweep_wide, sweep_lane_width, sweep_law_mode,
    sweep_shard, take_sweep_rollups, SweepPoint, SweepRollup,
};
pub use trajectory::{
    observed_pll_election, pll_attribution_trajectory, ObservedElection, PllTrajectory,
};

use pp_stats::Table;

/// The rendered result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `table1`).
    pub id: &'static str,
    /// Human-readable title referencing the paper artifact.
    pub title: &'static str,
    /// Free-form observations comparing measurement against the paper.
    pub notes: Vec<String>,
    /// Named result tables.
    pub tables: Vec<(String, Table)>,
}

impl ExperimentOutput {
    /// Renders the full output as markdown (used by the binary and by
    /// `EXPERIMENTS.md` generation).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## `{}` — {}\n\n", self.id, self.title);
        for (name, table) in &self.tables {
            out.push_str(&format!("### {name}\n\n"));
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n\n");
            for note in &self.notes {
                out.push_str(&format!("* {note}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// All experiment ids, in presentation order.
pub const EXPERIMENT_IDS: [&str; 14] = [
    "table1",
    "table2",
    "table3",
    "lemma2",
    "lemma4",
    "lemma6",
    "lemma7",
    "lemma8",
    "lemma12",
    "theorem1",
    "symmetric",
    "ablation",
    "attribution",
    "scheduler",
];

/// Runs the experiment with the given id.
///
/// `quick` shrinks population sizes and seed counts to smoke-test scale.
///
/// # Errors
///
/// Returns `Err` with the unknown id.
pub fn run_experiment(id: &str, quick: bool) -> Result<ExperimentOutput, String> {
    run_experiment_with(id, quick, None)
        .map(|output| output.expect("uncheckpointed experiments never suspend"))
}

/// [`run_experiment`] with optional sweep checkpointing.
///
/// Only `table1` shards its sweeps through the checkpoint context (it is the
/// long-running sweep-heavy experiment); other ids ignore `ckpt` and run
/// uncheckpointed. Returns `Ok(None)` when the checkpoint context's fresh-job
/// budget ran out before the experiment finished — rerun with the same
/// checkpoint directory to continue.
///
/// # Errors
///
/// Returns `Err` on an unknown id or a checkpoint I/O failure.
pub fn run_experiment_with(
    id: &str,
    quick: bool,
    ckpt: Option<&mut ExperimentCheckpoint>,
) -> Result<Option<ExperimentOutput>, String> {
    if id == "table1" {
        if let Some(cx) = ckpt {
            return experiments::table1::run_checkpointed(quick, cx)
                .map_err(|e| format!("table1 checkpointing: {e}"));
        }
    }
    run_uncheckpointed(id, quick).map(Some)
}

fn run_uncheckpointed(id: &str, quick: bool) -> Result<ExperimentOutput, String> {
    match id {
        "table1" => Ok(experiments::table1::run(quick)),
        "table2" => Ok(experiments::table2::run(quick)),
        "table3" => Ok(experiments::table3::run(quick)),
        "lemma2" => Ok(experiments::lemma2::run(quick)),
        "lemma4" => Ok(experiments::lemma4::run(quick)),
        "lemma6" => Ok(experiments::lemma6::run(quick)),
        "lemma7" => Ok(experiments::lemma7::run(quick)),
        "lemma8" => Ok(experiments::lemma8::run(quick)),
        "lemma12" => Ok(experiments::lemma12::run(quick)),
        "theorem1" => Ok(experiments::theorem1::run(quick)),
        "symmetric" => Ok(experiments::symmetric::run(quick)),
        "ablation" => Ok(experiments::ablation::run(quick)),
        "attribution" => Ok(experiments::attribution::run(quick)),
        "scheduler" => Ok(experiments::scheduler::run(quick)),
        other => Err(format!("unknown experiment id `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_an_error() {
        assert!(run_experiment("nope", true).is_err());
    }

    #[test]
    fn ids_are_unique() {
        let mut ids = EXPERIMENT_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENT_IDS.len());
    }

    #[test]
    fn markdown_rendering_includes_tables_and_notes() {
        let mut t = Table::new(["a"]);
        t.push_row(["1"]);
        let out = ExperimentOutput {
            id: "demo",
            title: "Demo",
            notes: vec!["a note".into()],
            tables: vec![("main".into(), t)],
        };
        let md = out.to_markdown();
        assert!(md.contains("## `demo`"));
        assert!(md.contains("### main"));
        assert!(md.contains("* a note"));
    }
}
