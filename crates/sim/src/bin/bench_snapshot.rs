//! Regenerates `BENCH_engine.json` (the repo-root engine-throughput
//! snapshot) reproducibly instead of by hand.
//!
//! Runs the engine benchmark through cargo with `BENCH_JSON_DIR` pointed at
//! a scratch directory, then assembles the per-group JSON the criterion
//! stand-in emits into the tracked snapshot: machine/harness metadata, the
//! per-group benchmark records, and the headline numbers (the `P_LL`
//! step-rate workload on the batch tier, the wide lane engine's per-seed
//! rate with its lane-scaling curve, the whole-election jump workload, and
//! the observability layer's attached-vs-detached spread) with their
//! speedups against the frozen pre-PR-2 baseline and the scalar batch
//! tier. Each headline row also embeds an `engine_metrics` summary — the
//! same workload re-run once at a fixed seed with detached observation, so
//! the snapshot records *what the engine did* (per-tier interaction usage,
//! episode counts, live support) next to how fast it did it; the summaries
//! are deterministic, carrying no wall-clock.
//!
//! ```text
//! cargo run --release -p pp-sim --bin bench_snapshot           # full samples
//! cargo run --release -p pp-sim --bin bench_snapshot -- --quick
//! ```
//!
//! `--quick` forwards reduced sample counts to the bench harness (the CI
//! smoke-bench settings) for a fast sanity pass and writes to
//! `target/BENCH_engine.quick.json`, leaving the tracked snapshot — which
//! the CI regression gate reads its baseline from — untouched; regenerate
//! the tracked file with full samples on a quiet machine.

use pp_core::Pll;
use pp_engine::{
    CountSimulation, EngineConfig, EngineMetrics, EngineObserver, LawMode, WideSimulation,
    WideTierPolicy,
};
use pp_protocols::Fratricide;
use pp_rand::{SeedSequence, Xoshiro256PlusPlus};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// The frozen pre-PR-2 baseline: seed-code `CountSimulation` (HashMap
/// interning + per-step `Protocol::transition` + Fenwick add-roundtrip
/// sampling) on `engine/count_steps/pll/1048576`, median of 4 runs.
const PRE_PR_BASELINE_INT_PER_SEC: f64 = 4_784_688.995_215_311;
const PRE_PR_BASELINE_SECS_PER_ITER: f64 = 0.000_209;

/// Fratricide@2^20 simulated interactions per election (E[steps] ≈ n²·(1−1/n);
/// the value recorded from the instrumented PR-3 measurement runs).
const ELECTION_SIM_INTERACTIONS: f64 = 6.121e11;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let root = workspace_root();
    let json_dir = root.join("target/bench-snapshot-json");
    let _ = std::fs::remove_dir_all(&json_dir);
    std::fs::create_dir_all(&json_dir).expect("create scratch dir");

    let mut cmd = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()));
    cmd.current_dir(&root)
        .env("BENCH_JSON_DIR", &json_dir)
        .args(["bench", "-p", "pp-bench", "--bench", "engine"]);
    if quick {
        cmd.args([
            "--",
            "--sample-size",
            "5",
            "--warm-up-time",
            "0.2",
            "--measurement-time",
            "0.6",
        ]);
    }
    eprintln!(
        "running engine bench ({})...",
        if quick { "quick" } else { "full samples" }
    );
    let status = cmd.status().expect("spawn cargo bench");
    assert!(status.success(), "cargo bench failed");

    let mut groups: BTreeMap<String, Vec<Record>> = BTreeMap::new();
    for entry in std::fs::read_dir(&json_dir).expect("scratch dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().map_or(true, |e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("group json readable");
        let (group, records) = parse_group(&text);
        if group.starts_with("engine/") {
            groups.insert(group, records);
        }
    }
    assert!(
        groups.contains_key("engine/count_steps_batch"),
        "batch tier group missing from bench output"
    );
    assert!(
        groups.contains_key("engine/count_steps_wide"),
        "wide lane group missing from bench output"
    );
    assert!(
        groups.contains_key("engine/count_steps_round"),
        "round-law group missing from bench output"
    );
    assert!(
        groups.contains_key("engine/count_steps_obs"),
        "observability group missing from bench output"
    );

    eprintln!("capturing headline engine-metrics summaries...");
    let metrics = headline_metrics(quick);
    eprintln!("measuring sweep-fabric scaling (workers x wall-clock, adjacent rows)...");
    let scaling = sweep_scaling(&root, quick);
    let snapshot = render_snapshot(&groups, &metrics, &scaling, quick);
    // Quick mode is a pipeline sanity pass: its reduced-sample medians must
    // never overwrite the tracked snapshot (the CI regression gate reads
    // baselines from it), so they land under target/ instead.
    let out = if quick {
        root.join("target/BENCH_engine.quick.json")
    } else {
        root.join("BENCH_engine.json")
    };
    std::fs::write(&out, snapshot).expect("write snapshot");
    eprintln!("wrote {}", out.display());
}

fn workspace_root() -> PathBuf {
    // crates/sim/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bin lives two levels below the workspace root")
        .to_path_buf()
}

#[derive(Debug, Clone)]
struct Record {
    name: String,
    median_secs: f64,
    elements_per_iter: Option<u64>,
    elements_per_second: Option<f64>,
}

/// Minimal scanner for the criterion stand-in's flat group JSON (one
/// benchmark object per line; see `crates/criterion`'s `write_json_reports`).
fn parse_group(text: &str) -> (String, Vec<Record>) {
    let group = scan_str(text, "\"group\"").expect("group field");
    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        records.push(Record {
            name: scan_str(line, "\"name\"").expect("name field"),
            median_secs: scan_num(line, "\"median_seconds_per_iter\"").expect("median field"),
            elements_per_iter: scan_num(line, "\"elements_per_iter\"").map(|v| v as u64),
            elements_per_second: scan_num(line, "\"elements_per_second\""),
        });
    }
    (group, records)
}

/// Value of `"key": "string"` after `key` in `text`.
fn scan_str(text: &str, key: &str) -> Option<String> {
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Value of `"key": <number>` after `key` in `text`.
fn scan_num(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn find<'a>(groups: &'a BTreeMap<String, Vec<Record>>, group: &str, name: &str) -> &'a Record {
    groups
        .get(group)
        .unwrap_or_else(|| panic!("group {group} missing"))
        .iter()
        .find(|r| r.name.ends_with(name))
        .unwrap_or_else(|| panic!("benchmark {name} missing from {group}"))
}

fn machine_description() -> String {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|s| s.trim().to_string())
        })
        .unwrap_or_else(|| "unknown CPU".into());
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    format!("{cpus} vCPU {model} (virtualized dev container)")
}

fn today() -> String {
    Command::new("date")
        .arg("+%F")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Lane widths the wide group's scaling curve covers (mirrors the bench).
const WIDE_LANE_WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// Sweep-fabric scaling grid (full samples): sizes heavy enough (~3 s of
/// single-core work) that process spawn and the orchestrator's 200 ms
/// progress-poll quantum are noise against the measured wall clock.
const SWEEP_GRID_FULL: &str = "1048576,2097152,4194304";

/// `--quick` scaling grid: a fast pipeline sanity pass, not a measurement.
const SWEEP_GRID_QUICK: &str = "65536,131072";

/// One workers-vs-wall-clock measurement of the `ppsweep` fabric.
struct SweepScaling {
    grid: String,
    seeds: u64,
    /// `(worker processes, wall seconds)`, measured back-to-back with the
    /// 1-worker baseline first.
    rows: Vec<(u64, f64)>,
}

/// Times the same fratricide grid through `ppsweep --shards N --spawn`
/// (one thread per worker) at 1 and 2 workers, adjacent rows. The merged
/// output is byte-identical across rows by the fabric's contract, so the
/// only thing that varies is the wall clock.
fn sweep_scaling(root: &Path, quick: bool) -> SweepScaling {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .current_dir(root)
        .args(["build", "--release", "-p", "pp-sim", "--bin", "ppsweep"])
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "building ppsweep failed");
    let bin = root.join("target/release/ppsweep");
    let grid = if quick {
        SWEEP_GRID_QUICK
    } else {
        SWEEP_GRID_FULL
    };
    let seeds: u64 = if quick { 4 } else { 8 };
    let mut rows = Vec::new();
    for workers in [1u64, 2] {
        let dir = root.join(format!("target/bench-sweep-scaling/w{workers}"));
        let _ = std::fs::remove_dir_all(&dir);
        let started = std::time::Instant::now();
        let status = Command::new(&bin)
            .args(["--protocol", "fratricide", "--ns", grid])
            .args(["--seeds", &seeds.to_string()])
            .args(["--master", "42", "--lanes", "2", "--max-steps", "0"])
            .arg("--dir")
            .arg(&dir)
            .args(["--shards", &workers.to_string(), "--spawn"])
            .args(["--threads-per-worker", "1"])
            .env("PP_SIM_PROGRESS", "0")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn ppsweep");
        assert!(
            status.success(),
            "ppsweep scaling run failed at {workers} workers"
        );
        rows.push((workers, started.elapsed().as_secs_f64()));
    }
    SweepScaling {
        grid: grid.to_string(),
        seeds,
        rows,
    }
}

/// Re-runs each headline workload once at a fixed seed and returns its
/// [`EngineMetrics`] summary, keyed by headline section name. Observation
/// stays detached everywhere except the observability row itself, so every
/// summary is deterministic (the observability one additionally carries the
/// attached run's event count and per-tier wall-time split). `--quick`
/// shrinks the population the same way it shrinks bench samples.
fn headline_metrics(quick: bool) -> BTreeMap<&'static str, EngineMetrics> {
    let n: usize = if quick { 1 << 14 } else { 1 << 20 };
    // The windowed groups measure mid-election; 16 parallel time units sits
    // inside their WINDOW_FROM..WINDOW_TO band.
    let window = 16 * n as u64;
    let mut out = BTreeMap::new();

    let batch_pinned_pll = || {
        let rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut sim =
            CountSimulation::new(Pll::for_population(n).expect("n >= 2"), n, rng).expect("n >= 2");
        sim.force_batch_mode();
        sim
    };

    let mut sim = batch_pinned_pll();
    sim.run(window);
    out.insert("step_workload", sim.metrics());

    let rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let config = EngineConfig {
        law_mode: LawMode::Contingency,
        ..EngineConfig::default()
    };
    let mut sim = CountSimulation::with_config(Fratricide, n, rng, config).expect("n >= 2");
    sim.force_batch_mode();
    sim.run(window);
    out.insert("round_law_workload", sim.metrics());

    let mut wide = WideSimulation::with_config(
        Pll::for_population(n).expect("n >= 2"),
        n,
        SeedSequence::new(1).rngs(8),
        EngineConfig::default(),
        WideTierPolicy::PinnedBatch,
    )
    .expect("n >= 2");
    wide.run(window);
    out.insert("wide_lane_workload", wide.metrics());

    let rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut sim = CountSimulation::new(Fratricide, n, rng).expect("n >= 2");
    let outcome = sim.run_until_single_leader(u64::MAX);
    assert!(outcome.converged, "headline election must converge");
    out.insert("election_workload", sim.metrics());

    let mut sim = batch_pinned_pll();
    sim.set_observer(EngineObserver::new());
    sim.run(window);
    out.insert("observability_overhead", sim.metrics());

    out
}

fn render_snapshot(
    groups: &BTreeMap<String, Vec<Record>>,
    metrics: &BTreeMap<&'static str, EngineMetrics>,
    scaling: &SweepScaling,
    quick: bool,
) -> String {
    let engine_metrics_line = |section: &str| {
        let m = metrics
            .get(section)
            .unwrap_or_else(|| panic!("metrics summary for {section} missing"));
        format!("      \"engine_metrics\": {},\n", m.to_json())
    };
    let batch_pll = find(groups, "engine/count_steps_batch", "pll/1048576");
    let compiled_pll = find(groups, "engine/count_steps_compiled", "pll/1048576");
    let election = find(groups, "engine/election_jump", "fratricide/1048576");
    let batch_rate = batch_pll.elements_per_second.expect("throughput group");
    let compiled_rate = compiled_pll.elements_per_second.expect("throughput group");
    let election_secs = election.median_secs;
    let effective = ELECTION_SIM_INTERACTIONS / election_secs;
    let wide_rate_at = |lanes: usize| {
        find(
            groups,
            "engine/count_steps_wide",
            &format!("pll/1048576/lanes/{lanes}"),
        )
        .elements_per_second
        .expect("throughput group")
    };
    let wide8_rate = wide_rate_at(8);
    // The scalar batch tier re-measured inside the wide group, back-to-back
    // with the lanes/8 row: on a drifting shared machine the wide-vs-scalar
    // ratio is only meaningful between adjacent measurements (the batch
    // group's own row runs minutes earlier).
    let wide_scalar_rate = find(
        groups,
        "engine/count_steps_wide",
        "pll/1048576/scalar_batch",
    )
    .elements_per_second
    .expect("throughput group");
    let lawonly8_rate = find(
        groups,
        "engine/count_steps_wide",
        "pll/1048576/lawonly_lanes/8",
    )
    .elements_per_second
    .expect("throughput group");
    let round_rate = |protocol: &str, law: &str| {
        find(
            groups,
            "engine/count_steps_round",
            &format!("{protocol}/1048576/{law}"),
        )
        .elements_per_second
        .expect("throughput group")
    };
    let obs_rate = |row: &str| {
        find(
            groups,
            "engine/count_steps_obs",
            &format!("pll/1048576/{row}"),
        )
        .elements_per_second
        .expect("throughput group")
    };
    let obs_detached_rate = obs_rate("detached");
    let obs_attached_rate = obs_rate("attached");

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pp-bench/benches/engine.rs\",\n");
    out.push_str(&format!("  \"captured\": \"{}\",\n", today()));
    out.push_str(&format!("  \"machine\": \"{}\",\n", machine_description()));
    out.push_str(&format!(
        "  \"harness\": \"workspace criterion stand-in, fast_criterion(){}, median per-iteration time; regenerated by `cargo run --release -p pp-sim --bin bench_snapshot`\",\n",
        if quick { " with --quick reduced samples" } else { " (10 samples, 2 s measurement)" }
    ));
    out.push_str("  \"steps_per_iteration\": 1000,\n");
    out.push_str("  \"pre_pr_baseline\": {\n");
    out.push_str("    \"description\": \"seed-code CountSimulation (HashMap interning + per-step Protocol::transition + Fenwick add-roundtrip sampling), engine/count_steps/pll/1048576, median of 4 runs\",\n");
    out.push_str(&format!(
        "    \"median_seconds_per_iter\": {PRE_PR_BASELINE_SECS_PER_ITER},\n"
    ));
    out.push_str(&format!(
        "    \"interactions_per_second\": {PRE_PR_BASELINE_INT_PER_SEC}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"headline\": {\n");
    out.push_str("    \"step_workload\": {\n");
    out.push_str("      \"case\": \"CountSimulation / Pll / n = 2^20, mid-election steps (engine/count_steps_batch, batch tier)\",\n");
    out.push_str(&engine_metrics_line("step_workload"));
    out.push_str(&format!(
        "      \"interactions_per_second\": {batch_rate},\n"
    ));
    out.push_str(&format!(
        "      \"speedup_vs_pre_pr_baseline\": {:.2},\n",
        batch_rate / PRE_PR_BASELINE_INT_PER_SEC
    ));
    out.push_str(&format!(
        "      \"compiled_tier_interactions_per_second\": {compiled_rate},\n"
    ));
    out.push_str("      \"note\": \"The batch tier processes collision-free Theta(sqrt(n))-length rounds through multivariate hypergeometric draws, so P_LL's ~0.56 null fraction (which keeps the jump scheduler disengaged) no longer matters: per-interaction cost is O((support + sqrt(n))/sqrt(n)) amortized. This clears the PR-2 acceptance target (>= 5x the pre-compiled baseline, i.e. >= 24M int/s) that the compiled and jump tiers had missed twice. State-id compaction also shrinks the sampler tree and pair table to the live support, which is what lifts the state-unbounded lottery onto the fast tiers.\"\n");
    out.push_str("    },\n");
    out.push_str("    \"round_law_workload\": {\n");
    out.push_str("      \"case\": \"CountSimulation / Fratricide + Pll / n = 2^20, mid-election steps under each batch round law (engine/count_steps_round, batch pinned, adjacent rows)\",\n");
    out.push_str(&engine_metrics_line("round_law_workload"));
    out.push_str("      \"fratricide_interactions_per_second\": {\n");
    for (i, law) in ["sequence", "contingency", "multiround"].iter().enumerate() {
        out.push_str(&format!(
            "        \"{law}\": {}{}\n",
            round_rate("fratricide", law),
            if i < 2 { "," } else { "" }
        ));
    }
    out.push_str("      },\n");
    out.push_str(&format!(
        "      \"contingency_speedup_vs_sequence_small_support\": {:.2},\n",
        round_rate("fratricide", "contingency") / round_rate("fratricide", "sequence")
    ));
    out.push_str("      \"pll_interactions_per_second\": {\n");
    for (i, law) in ["sequence", "contingency", "multiround"].iter().enumerate() {
        out.push_str(&format!(
            "        \"{law}\": {}{}\n",
            round_rate("pll", law),
            if i < 2 { "," } else { "" }
        ));
    }
    out.push_str("      },\n");
    out.push_str("      \"note\": \"On a small-support protocol (fratricide: two live states, so the per-ordered-pair table has <= 4 cells) the contingency law replaces the O(sqrt n) responder expansion + shuffle and the per-interaction apply loop with a handful of nested-hypergeometric cell draws and bulk count deltas — the speedup over the bit-identical sequence-expansion law is the headline ratio above, measured in adjacent rows of one group. On the wide-support control (P_LL, ~130 live states mid-election) the table overflows its cap (cells > bulk), the law falls back to expand-and-shuffle per segment, and the three rows agree within noise — the dispatch itself costs nothing measurable. Multi-round episodes chain collision-free segments across collisions through the same contingency cells; the win shows at small n where per-round fixed costs dominate (the chi-square suite tests/round_law.rs pins all laws to the reference distribution).\"\n");
    out.push_str("    },\n");
    out.push_str("    \"wide_lane_workload\": {\n");
    out.push_str("      \"case\": \"WideSimulation / Pll / n = 2^20, 8 lanes in lockstep, mid-election steps (engine/count_steps_wide, pinned batch rounds)\",\n");
    out.push_str(&engine_metrics_line("wide_lane_workload"));
    out.push_str(&format!(
        "      \"per_seed_interactions_per_second\": {wide8_rate},\n"
    ));
    out.push_str(&format!(
        "      \"scalar_batch_adjacent_interactions_per_second\": {wide_scalar_rate},\n"
    ));
    out.push_str(&format!(
        "      \"speedup_vs_scalar_batch_tier\": {:.2},\n",
        wide8_rate / wide_scalar_rate
    ));
    out.push_str(&format!(
        "      \"lawonly_per_seed_interactions_per_second\": {lawonly8_rate},\n"
    ));
    out.push_str(&format!(
        "      \"lawonly_speedup_vs_scalar_batch_tier\": {:.2},\n",
        lawonly8_rate / wide_scalar_rate
    ));
    out.push_str("      \"lane_scaling_per_seed_interactions_per_second\": {\n");
    for (i, &lanes) in WIDE_LANE_WIDTHS.iter().enumerate() {
        out.push_str(&format!(
            "        \"{lanes}\": {}{}\n",
            wide_rate_at(lanes),
            if i + 1 < WIDE_LANE_WIDTHS.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("      },\n");
    out.push_str("      \"note\": \"W same-n seeds advance in lockstep through one shared compiled pair cache with structure-of-arrays counts (counts[state][lane]), one RNG stream per lane, and fixed-width lane chunking in the bulk-delta / hypergeometric-split / convergence loops. Throughput is per seed, and the speedup is against the scalar_batch row measured back-to-back inside the same group (machine drift across minutes exceeds the ratio itself). Per-lane bit-identity with the scalar engine pins each lane's RNG sequence, so the hypergeometric sampling and multiset shuffles (~80% of a batch round) cost the same wide or scalar; what lockstep amortizes is per-seed overhead (run-length prefix table, cache warmup, tier reviews, dedup'd bulk apply), which lands the per-seed ratio at parity — 0.9-1.15x run-to-run on this container — rather than scaling with W. The shared half of the optimization pass behind it (order-reusing round setup, ln-factorial table, bulk multiset expansion) benefits the scalar tier equally. Table-1 style sweeps (hundreds of seeds per n) run on exactly this path via stabilization_sweep's thread x lane bundles. The lawonly_lanes/8 row drops per-lane bit-identity (WideTierPolicy::LawOnly): one shared run-length inversion and one shared responder-permutation index stream across the lane set, with per-lane contingency cells where the table fits. On P_LL's wide support the per-lane hypergeometric margin draws must stay conditionally exact per lane (pooling them would require a noncentral multivariate split with no cheap exact sampler), so sharing only amortizes the inversion and the index stream and the per-seed rate lands at parity with the bit-identical row — the genuine law-equal multiple lives in round_law_workload's small-support contingency ratio instead.\"\n");
    out.push_str("    },\n");
    out.push_str("    \"election_workload\": {\n");
    out.push_str("      \"case\": \"CountSimulation / Fratricide / n = 2^20, whole election (engine/election_jump)\",\n");
    out.push_str(&engine_metrics_line("election_workload"));
    out.push_str(&format!(
        "      \"wall_seconds_per_election\": {election_secs},\n"
    ));
    out.push_str(&format!(
        "      \"simulated_interactions_per_election\": {ELECTION_SIM_INTERACTIONS},\n"
    ));
    out.push_str(&format!(
        "      \"effective_interactions_per_second\": {effective},\n"
    ));
    out.push_str(&format!(
        "      \"speedup_vs_pre_pr_baseline\": {:.0},\n",
        effective / PRE_PR_BASELINE_INT_PER_SEC
    ));
    out.push_str("      \"note\": \"The jump scheduler telescopes the Theta(n^2)-step null tail into O(n) executed episodes; the batch tier covers the dense early phase. Simulated-interaction count is the instrumented per-election mean recorded in PR 3.\"\n");
    out.push_str("    },\n");
    out.push_str("    \"observability_overhead\": {\n");
    out.push_str("      \"case\": \"CountSimulation / Pll / n = 2^20, mid-election steps with an attached-but-idle EngineObserver vs detached (engine/count_steps_obs, batch pinned, adjacent rows)\",\n");
    out.push_str(&engine_metrics_line("observability_overhead"));
    out.push_str(&format!(
        "      \"detached_interactions_per_second\": {obs_detached_rate},\n"
    ));
    out.push_str(&format!(
        "      \"attached_interactions_per_second\": {obs_attached_rate},\n"
    ));
    out.push_str(&format!(
        "      \"attached_over_detached\": {:.4},\n",
        obs_attached_rate / obs_detached_rate
    ));
    out.push_str("      \"note\": \"Observation touches the hot loop only at episode and review boundaries (one branch plus an Instant read when it fires), never per interaction, and consumes no RNG — the attached run's trajectory and snapshot bytes are bit-identical to the detached run's (tests/obs_identity.rs). The CI smoke gate holds the attached row to within 2% of the adjacent detached row. The engine_metrics summary here is the attached run's, so it also carries the event count and the per-tier wall-time timeline the other summaries omit.\"\n");
    out.push_str("    },\n");
    out.push_str("    \"sweep_scaling\": {\n");
    out.push_str(&format!(
        "      \"case\": \"ppsweep fabric / Fratricide / ns = {} x {} seeds, --shards N --spawn, 1 thread per worker, adjacent rows (1-worker baseline first)\",\n",
        scaling.grid, scaling.seeds
    ));
    out.push_str("      \"workers_wall_seconds\": {\n");
    for (i, (workers, wall)) in scaling.rows.iter().enumerate() {
        out.push_str(&format!(
            "        \"{workers}\": {wall}{}\n",
            if i + 1 < scaling.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("      },\n");
    let wall_1 = scaling.rows.first().expect("1-worker row").1;
    let wall_2 = scaling.rows.last().expect("2-worker row").1;
    out.push_str(&format!(
        "      \"speedup_2_workers_vs_1\": {:.2},\n",
        wall_1 / wall_2
    ));
    out.push_str("      \"note\": \"Whole-grid wall clock of the multi-process sweep fabric: the same fratricide grid run sequentially-equivalent through ppsweep --shards N --spawn, workers claiming lane bundles largest-n-first from a shared claim directory and the orchestrator merging shard journals byte-identically to the sequential sweep (enforced by tests/sharded_equivalence.rs and the sharded-equivalence CI job). Rows are adjacent: the 1-worker baseline runs immediately before the 2-worker row on the same machine. This container exposes a single vCPU, so two worker processes time-slice one core and land at wall-clock parity — the honest ceiling here; the >= 1.7x two-worker gate is enforced by the sharded-equivalence CI job on multi-core runners, where the identical adjacent pair must show the speedup. What the fabric buys at any core count: crash recovery (stale-claim release + deterministic rerun), live cross-process progress, and shard/process-tagged throughput rollups, at no measured throughput cost versus the sequential sweep.\"\n");
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"groups\": {\n");
    let total = groups.len();
    for (gi, (group, records)) in groups.iter().enumerate() {
        out.push_str(&format!("    \"{group}\": [\n"));
        for (i, r) in records.iter().enumerate() {
            out.push_str("      {\n");
            out.push_str(&format!("        \"name\": \"{}\",\n", r.name));
            if let (Some(n), Some(rate)) = (r.elements_per_iter, r.elements_per_second) {
                out.push_str(&format!(
                    "        \"median_seconds_per_iter\": {},\n",
                    r.median_secs
                ));
                out.push_str(&format!("        \"elements_per_iter\": {n},\n"));
                out.push_str(&format!("        \"elements_per_second\": {rate}\n"));
            } else {
                out.push_str(&format!(
                    "        \"median_seconds_per_iter\": {}\n",
                    r.median_secs
                ));
            }
            out.push_str(if i + 1 < records.len() {
                "      },\n"
            } else {
                "      }\n"
            });
        }
        out.push_str(if gi + 1 < total {
            "    ],\n"
        } else {
            "    ]\n"
        });
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
