//! `ppsweep` — the sweep fabric CLI: one stabilization-time grid, run
//! sequentially, as one worker shard of many, or as a local multi-process
//! orchestration, always producing byte-identical artifacts.
//!
//! ```text
//! # one process, whole grid
//! ppsweep --protocol fratricide --ns 64,128 --seeds 32 --dir out/
//!
//! # same grid across 4 local worker processes, merged on completion
//! ppsweep --protocol fratricide --ns 64,128 --seeds 32 --dir out/ --shards 4 --spawn
//!
//! # one worker shard (what --spawn launches; runnable by hand on any box
//! # sharing the directory)
//! ppsweep ... --dir out/ --worker 2
//!
//! # merge shards that ran elsewhere (manifest-driven multi-box mode)
//! ppsweep ... --dir out/ --shards 4 --merge
//! ```
//!
//! Every complete mode writes `journal.txt` (the canonical merged journal),
//! `table.csv`, and `metrics.json` under `--dir` and prints the results
//! table to stdout — and those bytes are identical whichever mode produced
//! them (the fabric's merge contract; see [`pp_sim::fabric`]). Mode
//! chatter, progress, and retry diagnostics go to stderr only.
//!
//! Exit codes: 0 success; 1 error; 2 worker suspended at `--job-limit`
//! (rerun to resume); 3 merge incomplete (jobs still missing).

use pp_core::Pll;
use pp_engine::LeaderElection;
use pp_protocols::{BoundedLottery, Fratricide, UnboundedLottery};
use pp_sim::fabric::{
    aggregate_progress, clean_stale_claims, merge_shards, points_table, run_sequential,
    run_worker_shard, shard_dir, FabricSpec, MergeReport, MAX_SHARDS,
};
use pp_sim::{enable_sweep_rollup, take_sweep_rollups, SweepPoint};
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

fn main() {
    let code = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => match dispatch(&cli) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("ppsweep: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("ppsweep: {e}\n\n{USAGE}");
            1
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
usage: ppsweep --ns N,N,... --dir DIR [options]
  --protocol NAME     fratricide | blottery | ulottery | pll  (default fratricide)
  --ns N,N,...        population sizes (required)
  --seeds N           runs per size (default 32)
  --master SEED       master seed (default 42)
  --lanes W           lane-bundle width (default: PP_SIM_LANES resolution)
  --max-steps M       per-run step budget, 0 = unbounded (default 0)
  --dir DIR           fabric run directory (required)
  --shards N          shard count for --spawn / --merge
  --spawn             orchestrate: launch N local workers, monitor, merge
  --threads-per-worker T  PP_SIM_THREADS for spawned workers (default 1)
  --retry-rounds R    crash-recovery relaunch rounds (default 3)
  --worker K          run as worker shard K
  --job-limit J       suspend this worker invocation after ~J fresh jobs
  --merge             merge existing shard dirs without running anything
  --metrics-out FILE  also write the metrics JSON to FILE";

/// Parsed command line.
struct Cli {
    spec: FabricSpec,
    dir: PathBuf,
    mode: Mode,
    metrics_out: Option<PathBuf>,
}

enum Mode {
    Sequential,
    Worker {
        shard: u64,
        job_limit: Option<usize>,
    },
    Orchestrate {
        shards: u64,
        threads_per_worker: usize,
        retry_rounds: usize,
    },
    Merge {
        shards: u64,
    },
}

impl Cli {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut protocol = "fratricide".to_string();
        let mut ns: Option<Vec<usize>> = None;
        let mut seeds = 32u64;
        let mut master = 42u64;
        let mut lanes = pp_sim::sweep_lane_width();
        let mut max_steps = 0u64;
        let mut dir: Option<PathBuf> = None;
        let mut shards: Option<u64> = None;
        let mut spawn = false;
        let mut merge = false;
        let mut worker: Option<u64> = None;
        let mut job_limit: Option<usize> = None;
        let mut threads_per_worker = 1usize;
        let mut retry_rounds = 3usize;
        let mut metrics_out: Option<PathBuf> = None;

        let mut args = args;
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--protocol" => protocol = value("--protocol")?,
                "--ns" => {
                    let list = value("--ns")?;
                    let parsed: Result<Vec<usize>, _> =
                        list.split(',').map(|v| v.trim().parse()).collect();
                    ns = Some(parsed.map_err(|_| format!("bad --ns list `{list}`"))?);
                }
                "--seeds" => seeds = parse_num(&value("--seeds")?, "--seeds")?,
                "--master" => master = parse_num(&value("--master")?, "--master")?,
                "--lanes" => lanes = parse_num(&value("--lanes")?, "--lanes")?,
                "--max-steps" => max_steps = parse_num(&value("--max-steps")?, "--max-steps")?,
                "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
                "--shards" => shards = Some(parse_num(&value("--shards")?, "--shards")?),
                "--spawn" => spawn = true,
                "--merge" => merge = true,
                "--worker" => worker = Some(parse_num(&value("--worker")?, "--worker")?),
                "--job-limit" => {
                    job_limit = Some(parse_num(&value("--job-limit")?, "--job-limit")?);
                }
                "--threads-per-worker" => {
                    threads_per_worker =
                        parse_num(&value("--threads-per-worker")?, "--threads-per-worker")?;
                }
                "--retry-rounds" => {
                    retry_rounds = parse_num(&value("--retry-rounds")?, "--retry-rounds")?;
                }
                "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }

        let ns = ns.ok_or("--ns is required")?;
        if ns.is_empty() {
            return Err("--ns must list at least one size".into());
        }
        let dir = dir.ok_or("--dir is required")?;
        let spec = FabricSpec {
            protocol,
            ns,
            seeds,
            master_seed: master,
            max_steps: if max_steps == 0 { u64::MAX } else { max_steps },
            lanes,
        };
        let mode = match (worker, shards, spawn, merge) {
            (Some(shard), None, false, false) => Mode::Worker { shard, job_limit },
            (None, Some(shards), true, false) => {
                if shards == 0 || shards > MAX_SHARDS {
                    return Err(format!("--shards must be in 1..={MAX_SHARDS}"));
                }
                Mode::Orchestrate {
                    shards,
                    threads_per_worker: threads_per_worker.max(1),
                    retry_rounds,
                }
            }
            (None, Some(shards), false, true) => Mode::Merge { shards },
            (None, None, false, false) => Mode::Sequential,
            _ => {
                return Err(
                    "pick one mode: default sequential, --worker K, --shards N --spawn, \
                     or --shards N --merge"
                        .into(),
                );
            }
        };
        Ok(Self {
            spec,
            dir,
            mode,
            metrics_out,
        })
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.trim()
        .parse()
        .map_err(|_| format!("bad value `{raw}` for {flag}"))
}

/// Resolves the protocol name and runs the chosen mode with a concrete
/// `make` closure (monomorphized per protocol, like the experiments).
fn dispatch(cli: &Cli) -> std::io::Result<i32> {
    match cli.spec.protocol.as_str() {
        "fratricide" => run(cli, |_| Fratricide),
        "blottery" => run(cli, |n| {
            BoundedLottery::for_population(n).expect("n >= 2 by CLI validation")
        }),
        "ulottery" => run(cli, |_| UnboundedLottery),
        "pll" => run(cli, |n| {
            Pll::for_population(n).expect("n >= 2 by CLI validation")
        }),
        other => {
            eprintln!(
                "ppsweep: unknown protocol `{other}` (fratricide | blottery | ulottery | pll)"
            );
            Ok(1)
        }
    }
}

fn run<P, F>(cli: &Cli, make: F) -> std::io::Result<i32>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    if cli.spec.ns.iter().any(|&n| n < 2) {
        eprintln!("ppsweep: every population size must be >= 2");
        return Ok(1);
    }
    match cli.mode {
        Mode::Sequential => {
            enable_sweep_rollup();
            let started = Instant::now();
            let points = run_sequential(&make, &cli.spec, &cli.dir)?;
            let metrics = metrics_json(
                &cli.spec,
                0,
                started.elapsed().as_secs_f64(),
                &rollup_lines(),
            );
            finish(cli, &points, &metrics)?;
            Ok(0)
        }
        Mode::Worker { shard, job_limit } => {
            enable_sweep_rollup();
            let outcome = run_worker_shard(&make, &cli.spec, &cli.dir, shard, job_limit)?;
            // Per-shard metrics land in the shard dir; the orchestrator (or
            // a later --merge) folds them into the run-level metrics.json.
            let metrics = format!("{{\"rollups\":[{}]}}\n", rollup_lines().join(","));
            std::fs::write(shard_dir(&cli.dir, shard).join("metrics.json"), metrics)?;
            eprintln!(
                "ppsweep: shard {shard} journaled {} fresh jobs{}",
                outcome.fresh_jobs,
                if outcome.suspended {
                    " (suspended at job limit)"
                } else {
                    ""
                }
            );
            Ok(if outcome.suspended { 2 } else { 0 })
        }
        Mode::Orchestrate {
            shards,
            threads_per_worker,
            retry_rounds,
        } => orchestrate(cli, shards, threads_per_worker, retry_rounds),
        Mode::Merge { shards } => {
            let started = Instant::now();
            let report = merge_shards(&cli.spec, &cli.dir, shards)?;
            conclude_merge(cli, shards, started, report)
        }
    }
}

/// Launches `shards` local worker processes over the run directory,
/// streams one aggregate progress line, survives worker crashes by
/// releasing their stale claims and relaunching, and merges on completion.
fn orchestrate(
    cli: &Cli,
    shards: u64,
    threads_per_worker: usize,
    retry_rounds: usize,
) -> std::io::Result<i32> {
    let started = Instant::now();
    std::fs::create_dir_all(&cli.dir)?;
    let exe = std::env::current_exe()?;
    for round in 0..=retry_rounds {
        if round > 0 {
            let released = clean_stale_claims(&cli.spec, &cli.dir, shards)?;
            eprintln!(
                "ppsweep: retry round {round}/{retry_rounds}: released {released} stale claims"
            );
        }
        let mut children = Vec::new();
        for shard in 0..shards {
            children.push(spawn_worker(&exe, cli, shard, threads_per_worker)?);
        }
        wait_with_progress(&cli.dir, shards, &mut children);
        let report = merge_shards(&cli.spec, &cli.dir, shards)?;
        if report.points.is_some() {
            return conclude_merge(cli, shards, started, report);
        }
        eprintln!(
            "ppsweep: {} jobs missing after round {round} (a worker died); retrying",
            report.missing
        );
    }
    eprintln!("ppsweep: jobs still missing after {retry_rounds} retry rounds");
    Ok(3)
}

fn spawn_worker(
    exe: &Path,
    cli: &Cli,
    shard: u64,
    threads_per_worker: usize,
) -> std::io::Result<std::process::Child> {
    let spec = &cli.spec;
    let ns = spec
        .ns
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let max_steps = if spec.max_steps == u64::MAX {
        0
    } else {
        spec.max_steps
    };
    Command::new(exe)
        .arg("--worker")
        .arg(shard.to_string())
        .arg("--protocol")
        .arg(&spec.protocol)
        .arg("--ns")
        .arg(ns)
        .arg("--seeds")
        .arg(spec.seeds.to_string())
        .arg("--master")
        .arg(spec.master_seed.to_string())
        .arg("--lanes")
        .arg(spec.lanes.to_string())
        .arg("--max-steps")
        .arg(max_steps.to_string())
        .arg("--dir")
        .arg(&cli.dir)
        // Workers must not repaint their own progress lines over ours, and
        // threads-per-worker × shards is the run's total thread budget.
        .env("PP_SIM_PROGRESS", "0")
        .env("PP_SIM_THREADS", threads_per_worker.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

/// Waits for every child, repainting one aggregate progress line on the
/// terminal (suppressed exactly like `parallel_map`'s own line: piped
/// stderr or `PP_SIM_PROGRESS=0`).
fn wait_with_progress(dir: &Path, shards: u64, children: &mut [std::process::Child]) {
    let show = std::io::stderr().is_terminal()
        && std::env::var("PP_SIM_PROGRESS").map_or(true, |v| v != "0");
    loop {
        let all_exited = children
            .iter_mut()
            .all(|child| matches!(child.try_wait(), Ok(Some(_))));
        if show {
            let (done, total) = aggregate_progress(dir, shards);
            eprint!("\r  fabric: {done}/{total} jobs done across {shards} shards");
            use std::io::Write as _;
            let _ = std::io::stderr().flush();
        }
        if all_exited {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    if show {
        eprint!("\r{:64}\r", "");
    }
}

/// Writes the merged artifacts and prints the results table; exit code 3
/// when jobs are still missing (multi-box merges of unfinished runs).
fn conclude_merge(
    cli: &Cli,
    shards: u64,
    started: Instant,
    report: MergeReport,
) -> std::io::Result<i32> {
    let Some(points) = report.points else {
        eprintln!(
            "ppsweep: merge incomplete, {} jobs missing across {shards} shards",
            report.missing
        );
        return Ok(3);
    };
    // Fold the shard-level rollups (each tagged with pid + shard) into the
    // run-level metrics: per-process fan-outs plus the cross-process
    // aggregate a single process could never report.
    let mut rollups = Vec::new();
    for shard in 0..shards {
        if let Ok(text) = std::fs::read_to_string(shard_dir(&cli.dir, shard).join("metrics.json")) {
            if let Some(inner) = text
                .find('[')
                .and_then(|a| text.rfind(']').map(|b| &text[a + 1..b]))
            {
                if !inner.trim().is_empty() {
                    rollups.push(inner.trim().to_string());
                }
            }
        }
    }
    let metrics = metrics_json(&cli.spec, shards, started.elapsed().as_secs_f64(), &rollups);
    finish(cli, &points, &metrics)?;
    for manifest in &report.manifests {
        eprintln!(
            "ppsweep: shard {} (pid {}) ran {} jobs on {} threads in {:.2}s",
            manifest.shard, manifest.pid, manifest.jobs, manifest.threads, manifest.wall_seconds
        );
    }
    Ok(0)
}

/// Run-level metrics JSON: the cross-process aggregate plus every
/// collected rollup line.
fn metrics_json(spec: &FabricSpec, shards: u64, wall_seconds: f64, rollups: &[String]) -> String {
    let jobs = spec.total_jobs();
    let rate = if wall_seconds > 0.0 {
        jobs as f64 / wall_seconds
    } else {
        0.0
    };
    format!(
        "{{\"schema\":\"pp-sweep-metrics/v1\",\"aggregate\":{{\"jobs\":{jobs},\
         \"shards\":{shards},\"wall_seconds\":{wall_seconds},\
         \"jobs_per_second\":{rate}}},\"rollups\":[{}]}}\n",
        rollups.join(",")
    )
}

fn rollup_lines() -> Vec<String> {
    take_sweep_rollups().iter().map(|r| r.to_json()).collect()
}

/// The shared tail of every complete mode: write `table.csv` and
/// `metrics.json`, print the aligned table to stdout. Table and stdout
/// bytes are pure functions of the (bit-identical) points, so sequential
/// and sharded runs conclude with identical output.
fn finish(cli: &Cli, points: &[SweepPoint], metrics: &str) -> std::io::Result<()> {
    let table = points_table(points);
    std::fs::write(cli.dir.join("table.csv"), table.to_csv())?;
    std::fs::write(cli.dir.join("metrics.json"), metrics)?;
    if let Some(out) = &cli.metrics_out {
        std::fs::write(out, metrics)?;
    }
    print!("{}", table.to_aligned());
    Ok(())
}
