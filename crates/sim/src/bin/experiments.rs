//! CLI driving the paper's experiment suite.
//!
//! ```text
//! experiments list                 # show available experiment ids
//! experiments table1               # run one experiment (publication scale)
//! experiments all --quick          # smoke-run everything
//! experiments theorem1 --csv DIR   # also write CSV files into DIR
//!
//! # crash-recoverable sweeps (table1): journal progress, kill, resume
//! experiments table1 --checkpoint-dir ck --max-sweep-jobs 40   # exit 2
//! experiments table1 --checkpoint-dir ck --resume              # continues
//! ```

use pp_sim::{run_experiment_with, ExperimentCheckpoint, ExperimentOutput, EXPERIMENT_IDS};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Exit code when a checkpointed run suspends with jobs still pending.
const EXIT_SUSPENDED: u8 = 2;

struct Args {
    ids: Vec<String>,
    quick: bool,
    csv_dir: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    max_sweep_jobs: Option<usize>,
    snapshot_interval: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut quick = false;
    let mut csv_dir = None;
    let mut checkpoint_dir = None;
    let mut resume = false;
    let mut max_sweep_jobs = None;
    let mut snapshot_interval = None;
    let mut argv = std::env::args().skip(1);
    let path_arg = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a directory argument"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => csv_dir = Some(path_arg(&mut argv, "--csv")?),
            "--checkpoint-dir" => {
                checkpoint_dir = Some(path_arg(&mut argv, "--checkpoint-dir")?);
            }
            "--resume" => resume = true,
            "--max-sweep-jobs" => {
                let k = argv
                    .next()
                    .ok_or_else(|| "--max-sweep-jobs requires a count".to_string())?;
                max_sweep_jobs = Some(k.parse().map_err(|_| format!("invalid job count `{k}`"))?);
            }
            "--snapshot-interval" => {
                let s = argv
                    .next()
                    .ok_or_else(|| "--snapshot-interval requires a step count".to_string())?;
                snapshot_interval =
                    Some(s.parse().map_err(|_| format!("invalid step count `{s}`"))?);
            }
            "--help" | "-h" => {
                ids.push("help".to_string());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("help".to_string());
    }
    if checkpoint_dir.is_none()
        && (resume || max_sweep_jobs.is_some() || snapshot_interval.is_some())
    {
        return Err(
            "--resume / --max-sweep-jobs / --snapshot-interval require --checkpoint-dir"
                .to_string(),
        );
    }
    Ok(Args {
        ids,
        quick,
        csv_dir,
        checkpoint_dir,
        resume,
        max_sweep_jobs,
        snapshot_interval,
    })
}

fn print_help() {
    println!("Usage: experiments <id>... [--quick] [--csv DIR]");
    println!("                   [--checkpoint-dir DIR [--resume] [--max-sweep-jobs K]");
    println!("                    [--snapshot-interval STEPS]]");
    println!();
    println!("Reproduces the tables and key lemmas of Sudo et al. (PODC 2019).");
    println!();
    println!("ids:");
    println!("  all        run every experiment");
    println!("  list       list experiment ids");
    for id in EXPERIMENT_IDS {
        println!("  {id}");
    }
    println!();
    println!("flags:");
    println!("  --quick                 smoke-test scale (seconds instead of minutes)");
    println!("  --csv DIR               also write each table as CSV into DIR");
    println!("  --checkpoint-dir DIR    journal sweep progress under DIR (table1 only);");
    println!("                          a killed run resumes with --resume and produces");
    println!("                          byte-identical output");
    println!("  --resume                continue from an existing checkpoint directory");
    println!("  --max-sweep-jobs K      suspend after K fresh sweep jobs (exit code 2);");
    println!("                          resume later to finish");
    println!("  --snapshot-interval S   also snapshot in-flight sweep jobs every S steps;");
    println!("                          use the same S across runs (results are exact per");
    println!("                          interval setting, and omitting it keeps checkpointed");
    println!("                          runs bit-identical to uncheckpointed ones)");
}

fn write_csvs(output: &ExperimentOutput, dir: &PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, (name, table)) in output.tables.iter().enumerate() {
        let slug: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{}_{i}_{slug}.csv", output.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(table.to_csv().as_bytes())?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Builds the checkpoint context, refusing to overwrite foreign progress: a
/// non-empty checkpoint directory requires an explicit `--resume`.
fn open_checkpoint(args: &Args) -> Result<Option<ExperimentCheckpoint>, String> {
    let Some(dir) = &args.checkpoint_dir else {
        return Ok(None);
    };
    let occupied = std::fs::read_dir(dir).map(|mut d| d.next().is_some());
    if let Ok(true) = occupied {
        if !args.resume {
            return Err(format!(
                "checkpoint directory {} already holds sweep progress; \
                 pass --resume to continue it or remove the directory to start over",
                dir.display()
            ));
        }
    }
    Ok(Some(ExperimentCheckpoint::new(
        dir,
        args.snapshot_interval,
        args.max_sweep_jobs,
    )))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ids: Vec<String> = Vec::new();
    for id in &args.ids {
        match id.as_str() {
            "help" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    let mut checkpoint = match open_checkpoint(&args) {
        Ok(ckpt) => ckpt,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment_with(id, args.quick, checkpoint.as_mut()) {
            Ok(Some(output)) => {
                println!("{}", output.to_markdown());
                eprintln!(
                    "[{}] finished in {:.1}s{}",
                    id,
                    started.elapsed().as_secs_f64(),
                    if args.quick { " (quick mode)" } else { "" }
                );
                if let Some(dir) = &args.csv_dir {
                    if let Err(e) = write_csvs(&output, dir) {
                        eprintln!("error writing CSVs: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Ok(None) => {
                eprintln!(
                    "[{}] suspended after the sweep-job budget in {:.1}s; \
                     rerun with --checkpoint-dir ... --resume to continue",
                    id,
                    started.elapsed().as_secs_f64(),
                );
                return ExitCode::from(EXIT_SUSPENDED);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `experiments list` for available ids");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
