//! CLI driving the paper's experiment suite.
//!
//! ```text
//! experiments list                 # show available experiment ids
//! experiments table1               # run one experiment (publication scale)
//! experiments all --quick          # smoke-run everything
//! experiments theorem1 --csv DIR   # also write CSV files into DIR
//! ```

use pp_sim::{run_experiment, ExperimentOutput, EXPERIMENT_IDS};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    quick: bool,
    csv_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut quick = false;
    let mut csv_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                let dir = argv
                    .next()
                    .ok_or_else(|| "--csv requires a directory argument".to_string())?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                ids.push("help".to_string());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("help".to_string());
    }
    Ok(Args {
        ids,
        quick,
        csv_dir,
    })
}

fn print_help() {
    println!("Usage: experiments <id>... [--quick] [--csv DIR]");
    println!();
    println!("Reproduces the tables and key lemmas of Sudo et al. (PODC 2019).");
    println!();
    println!("ids:");
    println!("  all        run every experiment");
    println!("  list       list experiment ids");
    for id in EXPERIMENT_IDS {
        println!("  {id}");
    }
    println!();
    println!("flags:");
    println!("  --quick    smoke-test scale (seconds instead of minutes)");
    println!("  --csv DIR  also write each table as CSV into DIR");
}

fn write_csvs(output: &ExperimentOutput, dir: &PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, (name, table)) in output.tables.iter().enumerate() {
        let slug: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{}_{i}_{slug}.csv", output.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(table.to_csv().as_bytes())?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ids: Vec<String> = Vec::new();
    for id in &args.ids {
        match id.as_str() {
            "help" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment(id, args.quick) {
            Ok(output) => {
                println!("{}", output.to_markdown());
                eprintln!(
                    "[{}] finished in {:.1}s{}",
                    id,
                    started.elapsed().as_secs_f64(),
                    if args.quick { " (quick mode)" } else { "" }
                );
                if let Some(dir) = &args.csv_dir {
                    if let Err(e) = write_csvs(&output, dir) {
                        eprintln!("error writing CSVs: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `experiments list` for available ids");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
