//! CLI driving the paper's experiment suite.
//!
//! ```text
//! experiments list                 # show available experiment ids
//! experiments table1               # run one experiment (publication scale)
//! experiments all --quick          # smoke-run everything
//! experiments theorem1 --csv DIR   # also write CSV files into DIR
//!
//! # observability: trajectory CSV, unified metrics JSON, event log
//! experiments --quick --trajectory 256 --csv DIR \
//!             --metrics-out metrics.json --events-out events.jsonl
//!
//! # crash-recoverable sweeps (table1): journal progress, kill, resume
//! experiments table1 --checkpoint-dir ck --max-sweep-jobs 40   # exit 2
//! experiments table1 --checkpoint-dir ck --resume              # continues
//! ```

use pp_sim::{
    enable_sweep_rollup, observed_pll_election, pll_attribution_trajectory, run_experiment_with,
    take_sweep_rollups, ExperimentCheckpoint, ExperimentOutput, EXPERIMENT_IDS,
};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Exit code when a checkpointed run suspends with jobs still pending.
const EXIT_SUSPENDED: u8 = 2;

struct Args {
    ids: Vec<String>,
    quick: bool,
    csv_dir: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    max_sweep_jobs: Option<usize>,
    snapshot_interval: Option<u64>,
    metrics_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    trajectory: Option<u64>,
}

impl Args {
    /// Whether any observability output was requested; these work with or
    /// without experiment ids.
    fn wants_observability(&self) -> bool {
        self.metrics_out.is_some() || self.events_out.is_some() || self.trajectory.is_some()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut quick = false;
    let mut csv_dir = None;
    let mut checkpoint_dir = None;
    let mut resume = false;
    let mut max_sweep_jobs = None;
    let mut snapshot_interval = None;
    let mut metrics_out = None;
    let mut events_out = None;
    let mut trajectory = None;
    let mut argv = std::env::args().skip(1);
    let path_arg = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a path argument"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => csv_dir = Some(path_arg(&mut argv, "--csv")?),
            "--checkpoint-dir" => {
                checkpoint_dir = Some(path_arg(&mut argv, "--checkpoint-dir")?);
            }
            "--resume" => resume = true,
            "--max-sweep-jobs" => {
                let k = argv
                    .next()
                    .ok_or_else(|| "--max-sweep-jobs requires a count".to_string())?;
                max_sweep_jobs = Some(k.parse().map_err(|_| format!("invalid job count `{k}`"))?);
            }
            "--snapshot-interval" => {
                let s = argv
                    .next()
                    .ok_or_else(|| "--snapshot-interval requires a step count".to_string())?;
                snapshot_interval =
                    Some(s.parse().map_err(|_| format!("invalid step count `{s}`"))?);
            }
            "--metrics-out" => metrics_out = Some(path_arg(&mut argv, "--metrics-out")?),
            "--events-out" => events_out = Some(path_arg(&mut argv, "--events-out")?),
            "--trajectory" => {
                let k = argv
                    .next()
                    .ok_or_else(|| "--trajectory requires a sampling stride".to_string())?;
                let k: u64 = k
                    .parse()
                    .map_err(|_| format!("invalid sampling stride `{k}`"))?;
                if k == 0 {
                    return Err("--trajectory stride must be positive".to_string());
                }
                trajectory = Some(k);
            }
            "--help" | "-h" => {
                ids.push("help".to_string());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            id => ids.push(id.to_string()),
        }
    }
    // A pure observability invocation (`--trajectory`/`--metrics-out`/
    // `--events-out` with no ids) runs the capture alone instead of
    // printing help.
    if ids.is_empty() && metrics_out.is_none() && events_out.is_none() && trajectory.is_none() {
        ids.push("help".to_string());
    }
    if checkpoint_dir.is_none()
        && (resume || max_sweep_jobs.is_some() || snapshot_interval.is_some())
    {
        return Err(
            "--resume / --max-sweep-jobs / --snapshot-interval require --checkpoint-dir"
                .to_string(),
        );
    }
    Ok(Args {
        ids,
        quick,
        csv_dir,
        checkpoint_dir,
        resume,
        max_sweep_jobs,
        snapshot_interval,
        metrics_out,
        events_out,
        trajectory,
    })
}

fn print_help() {
    println!("Usage: experiments <id>... [--quick] [--csv DIR]");
    println!("                   [--checkpoint-dir DIR [--resume] [--max-sweep-jobs K]");
    println!("                    [--snapshot-interval STEPS]]");
    println!();
    println!("Reproduces the tables and key lemmas of Sudo et al. (PODC 2019).");
    println!();
    println!("ids:");
    println!("  all        run every experiment");
    println!("  list       list experiment ids");
    for id in EXPERIMENT_IDS {
        println!("  {id}");
    }
    println!();
    println!("flags:");
    println!("  --quick                 smoke-test scale (seconds instead of minutes)");
    println!("  --csv DIR               also write each table as CSV into DIR");
    println!("  --checkpoint-dir DIR    journal sweep progress under DIR (table1 only);");
    println!("                          a killed run resumes with --resume and produces");
    println!("                          byte-identical output");
    println!("  --resume                continue from an existing checkpoint directory");
    println!("  --max-sweep-jobs K      suspend after K fresh sweep jobs (exit code 2);");
    println!("                          resume later to finish");
    println!("  --snapshot-interval S   also snapshot in-flight sweep jobs every S steps;");
    println!("                          use the same S across runs (results are exact per");
    println!("                          interval setting, and omitting it keeps checkpointed");
    println!("                          runs bit-identical to uncheckpointed ones)");
    println!("  --trajectory K          capture a P_LL election trajectory sampled every K");
    println!("                          interactions (leader count + per-mechanism demotion");
    println!("                          attribution) as CSV into --csv DIR, else to stdout");
    println!("  --metrics-out FILE      write a unified metrics JSON: the observed election's");
    println!("                          EngineMetrics, the trajectory summary, and per-sweep");
    println!("                          throughput rollups of any experiments run");
    println!("  --events-out FILE       write the observed election's structured event log");
    println!("                          as JSONL (schema documented in pp_engine::obs)");
}

fn write_csvs(output: &ExperimentOutput, dir: &PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, (name, table)) in output.tables.iter().enumerate() {
        let slug: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{}_{i}_{slug}.csv", output.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(table.to_csv().as_bytes())?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Runs the observability capture: a deterministic `P_LL` election
/// trajectory with per-mechanism demotion attribution (`--trajectory`),
/// the count engine's unified metrics (`--metrics-out`), and its
/// structured event log (`--events-out`).
fn run_observability(args: &Args) -> std::io::Result<()> {
    // Large enough for the batch tier (n >= 4096) so the event log actually
    // exercises tier transitions; both captures finish in milliseconds.
    let n = if args.quick { 4096 } else { 16384 };
    let every = args.trajectory.unwrap_or(n as u64);
    const SEED: u64 = 0xB10C;

    let observed = observed_pll_election(n, SEED, every, u64::MAX);
    eprintln!(
        "[obs] P_LL n={n}: count engine stabilized in {} steps ({} events)",
        observed.outcome.steps, observed.metrics.events_recorded
    );

    let trajectory = args.trajectory.map(|k| {
        let report = pll_attribution_trajectory(n, SEED, k, u64::MAX);
        eprintln!(
            "[obs] P_LL n={n}: agent engine stabilized in {} steps, {} demotions attributed",
            report.outcome.steps,
            report.tally.total()
        );
        report
    });

    if let Some(report) = &trajectory {
        let csv = report.to_table().to_csv();
        if let Some(dir) = &args.csv_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join("trajectory_pll_attribution.csv");
            std::fs::write(&path, &csv)?;
            eprintln!("wrote {}", path.display());
        } else {
            print!("{csv}");
        }
    }

    if let Some(path) = &args.events_out {
        std::fs::write(path, &observed.events_jsonl)?;
        eprintln!("wrote {}", path.display());
    }

    if let Some(path) = &args.metrics_out {
        let trajectory_json = trajectory.as_ref().map_or("null".to_string(), |report| {
            format!(
                "{{\"n\":{},\"every\":{},\"steps\":{},\"converged\":{},\
                 \"final_leaders\":{},\"rows\":{}}}",
                report.n,
                report.every,
                report.outcome.steps,
                report.outcome.converged,
                report.final_leaders,
                report.trace.len()
            )
        });
        let sweeps: Vec<String> = take_sweep_rollups().iter().map(|r| r.to_json()).collect();
        let json = format!(
            "{{\"schema\":\"pp-sim-metrics/v1\",\"engine\":{},\
             \"trajectory\":{trajectory_json},\"sweeps\":[{}]}}\n",
            observed.metrics.to_json(),
            sweeps.join(",")
        );
        std::fs::write(path, json)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Builds the checkpoint context, refusing to overwrite foreign progress: a
/// non-empty checkpoint directory requires an explicit `--resume`.
fn open_checkpoint(args: &Args) -> Result<Option<ExperimentCheckpoint>, String> {
    let Some(dir) = &args.checkpoint_dir else {
        return Ok(None);
    };
    let occupied = std::fs::read_dir(dir).map(|mut d| d.next().is_some());
    if let Ok(true) = occupied {
        if !args.resume {
            return Err(format!(
                "checkpoint directory {} already holds sweep progress; \
                 pass --resume to continue it or remove the directory to start over",
                dir.display()
            ));
        }
    }
    Ok(Some(ExperimentCheckpoint::new(
        dir,
        args.snapshot_interval,
        args.max_sweep_jobs,
    )))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ids: Vec<String> = Vec::new();
    for id in &args.ids {
        match id.as_str() {
            "help" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    let mut checkpoint = match open_checkpoint(&args) {
        Ok(ckpt) => ckpt,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Collect per-sweep throughput rollups for the metrics report while the
    // experiments below fan out.
    if args.metrics_out.is_some() {
        enable_sweep_rollup();
    }

    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment_with(id, args.quick, checkpoint.as_mut()) {
            Ok(Some(output)) => {
                println!("{}", output.to_markdown());
                eprintln!(
                    "[{}] finished in {:.1}s{}",
                    id,
                    started.elapsed().as_secs_f64(),
                    if args.quick { " (quick mode)" } else { "" }
                );
                if let Some(dir) = &args.csv_dir {
                    if let Err(e) = write_csvs(&output, dir) {
                        eprintln!("error writing CSVs: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Ok(None) => {
                eprintln!(
                    "[{}] suspended after the sweep-job budget in {:.1}s; \
                     rerun with --checkpoint-dir ... --resume to continue",
                    id,
                    started.elapsed().as_secs_f64(),
                );
                return ExitCode::from(EXIT_SUSPENDED);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `experiments list` for available ids");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.wants_observability() {
        if let Err(e) = run_observability(&args) {
            eprintln!("error writing observability outputs: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
