//! **Table 3** — the variables of `P_LL`, regenerated programmatically,
//! plus the Lemma 3 state count (`O(log n)` states per agent).

use super::f1;
use crate::{parallel_map, ExperimentOutput};
use pp_core::{inventory, Pll, PllParams};
use pp_engine::CountSimulation;
use pp_rand::Xoshiro256PlusPlus;
use pp_stats::Table;

/// Runs the Table 3 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    // The variable inventory for the canonical parameters at n = 1024.
    let params = PllParams::for_population(1024).expect("n >= 2");
    let mut vars = Table::new(["group", "variable", "domain", "initial value"]);
    for row in inventory::table3(&params) {
        vars.push_row([
            row.group.to_string(),
            row.name.to_string(),
            row.domain.clone(),
            row.initial.to_string(),
        ]);
    }

    // Lemma 3: the per-agent state count grows linearly in m = Θ(log n).
    let ms: Vec<u32> = if quick {
        vec![8, 16, 32]
    } else {
        vec![8, 16, 32, 64, 128]
    };
    let n_measure = if quick { 256 } else { 1024 };
    let seeds: Vec<u64> = (0..if quick { 2u64 } else { 4 }).collect();

    let jobs: Vec<(u32, u64)> = ms
        .iter()
        .flat_map(|&m| seeds.iter().map(move |&s| (m, s)))
        .collect();
    let measured = parallel_map(&jobs, |&(m, seed)| {
        let pll = Pll::new(PllParams::new(m).expect("m >= 1"));
        let rng = Xoshiro256PlusPlus::seed_from_u64(900 + seed);
        let mut sim = CountSimulation::new(pll, n_measure, rng).expect("n >= 2");
        sim.run_until_single_leader(u64::MAX);
        // Keep running one full synchronization cycle so later epochs'
        // states are visited too.
        sim.run((41 * m as u64) * n_measure as u64);
        (m, sim.distinct_states_seen() as f64)
    });

    let mut growth = Table::new([
        "m",
        "l_max=5m",
        "c_max=41m",
        "Φ",
        "state bound (Lemma 3)",
        "distinct states reached (mean)",
        "bound / m",
    ]);
    for &m in &ms {
        let p = PllParams::new(m).expect("m >= 1");
        let bound = inventory::state_bound(&p);
        let mean_reached = {
            let vals: Vec<f64> = measured
                .iter()
                .filter(|&&(jm, _)| jm == m)
                .map(|&(_, d)| d)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        growth.push_row([
            m.to_string(),
            p.lmax().to_string(),
            p.cmax().to_string(),
            p.phi().to_string(),
            bound.to_string(),
            f1(mean_reached),
            f1(bound as f64 / m as f64),
        ]);
    }

    let notes = vec![
        "The `tick` variable is transient (reset at line 7 of Algorithm 1) and is modeled as \
         a local of the transition function; it is listed for fidelity but does not contribute \
         to the persistent state count."
            .to_string(),
        "`bound / m` is essentially constant: the per-agent state space is Θ(m) = Θ(log n), \
         which is Lemma 3. The dominant term is the V_B timer group (c_max = 41m values)."
            .to_string(),
        "`distinct states reached` counts states actually visited by an execution (all agents \
         pooled); it sits well below the bound because most (common, additional) combinations \
         never co-occur."
            .to_string(),
    ];

    ExperimentOutput {
        id: "table3",
        title: "Table 3 — variables of P_LL and the Lemma 3 state count",
        notes,
        tables: vec![
            ("variable inventory (m = 10, n = 1024)".to_string(), vars),
            ("state-space growth in m".to_string(), growth),
        ],
    }
}
