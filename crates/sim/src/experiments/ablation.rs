//! **Ablations** — the design choices `DESIGN.md` calls out:
//!
//! 1. module contributions (full protocol vs. `−Tournament` vs.
//!    `−QE −Tournament` = BackUp-only);
//! 2. size-knowledge scaling `m = factor·lg n` (the paper requires
//!    `m ≥ log₂ n`);
//! 3. synchronization-period sensitivity (`c_max = factor·m` vs. the
//!    paper's 41).

use super::mean_ci;
use crate::{stabilization_sweep, ExperimentOutput};
use pp_core::{Pll, PllParams};
use pp_stats::Table;

/// Runs the ablation suite.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![128, 256]
    } else {
        vec![512, 1024, 2048, 4096]
    };
    let seeds = if quick { 5 } else { 20 };

    // (1) Module contributions.
    let full = stabilization_sweep(
        |n| Pll::for_population(n).expect("n >= 2"),
        &ns,
        seeds,
        71,
        u64::MAX,
    );
    let no_t = stabilization_sweep(
        |n| Pll::for_population(n).expect("n >= 2").without_tournament(),
        &ns,
        seeds,
        72,
        u64::MAX,
    );
    let backup_only = stabilization_sweep(
        |n| {
            Pll::for_population(n)
                .expect("n >= 2")
                .without_quick_elimination()
                .without_tournament()
        },
        &ns,
        seeds,
        73,
        u64::MAX,
    );
    let mut modules = Table::new([
        "n",
        "full P_LL",
        "−Tournament",
        "BackUp only",
        "BackUp-only / full",
    ]);
    for i in 0..ns.len() {
        modules.push_row([
            ns[i].to_string(),
            mean_ci(&full[i].times),
            mean_ci(&no_t[i].times),
            mean_ci(&backup_only[i].times),
            format!("{:.2}×", backup_only[i].times.mean() / full[i].times.mean()),
        ]);
    }

    // (2) Size-knowledge scaling.
    let factors = [0.5, 1.0, 2.0, 4.0];
    let m_n = if quick { 256 } else { 2048 };
    let mut m_table = Table::new([
        "m factor (× lg n)",
        "m",
        "parallel time (mean ± CI)",
        "satisfies m ≥ lg n",
    ]);
    for (fi, &factor) in factors.iter().enumerate() {
        let params = PllParams::with_scaled_knowledge(m_n, factor).expect("n >= 2");
        let sweep = stabilization_sweep(
            |_| Pll::new(params),
            &[m_n],
            seeds,
            80 + fi as u64,
            u64::MAX,
        );
        m_table.push_row([
            format!("{factor:.1}"),
            params.m().to_string(),
            mean_ci(&sweep[0].times),
            if params.check_covers(m_n).is_ok() {
                "yes"
            } else {
                "NO (guarantee void)"
            }
            .to_string(),
        ]);
    }

    // (3) c_max sensitivity.
    let cmax_factors = [11u32, 21, 41, 81];
    let mut c_table = Table::new(["c_max (× m)", "parallel time (mean ± CI)", "vs paper's 41m"]);
    let mut paper_mean = 0.0;
    let mut rows = Vec::new();
    for (ci, &cf) in cmax_factors.iter().enumerate() {
        let params = PllParams::for_population(m_n).expect("n >= 2");
        let params = params.with_cmax(cf * params.m());
        let sweep = stabilization_sweep(
            |_| Pll::new(params),
            &[m_n],
            seeds,
            90 + ci as u64,
            u64::MAX,
        );
        if cf == 41 {
            paper_mean = sweep[0].times.mean();
        }
        rows.push((cf, sweep));
    }
    for (cf, sweep) in &rows {
        c_table.push_row([
            format!("{cf}m"),
            mean_ci(&sweep[0].times),
            format!("{:.2}×", sweep[0].times.mean() / paper_mean),
        ]);
    }

    let notes = vec![
        "BackUp-only shows the cost of losing the fast path: Θ(log² n)-flavored growth vs \
         the full protocol's Θ(log n) — the reason the paper layers three modules."
            .to_string(),
        "Undersized m (factor 0.5) voids the analysis (levels/timers can saturate early and \
         QuickElimination's survivor bound degrades) but BackUp still elects — correctness \
         is preserved, speed is not guaranteed."
            .to_string(),
        "Oversized m slows everything linearly (epochs last c_max/2 = 20.5·m parallel time): \
         the paper's m = Θ(log n) requirement is about speed, the ≥ log₂ n side about \
         correctness of the w.h.p. analysis."
            .to_string(),
        "Small c_max factors shorten epochs (faster) but shrink the synchronization safety \
         margin that Lemma 6's 41m ≥ 58·ln n calculation needs; the paper's constant buys \
         w.h.p. epoch integrity at moderate slowdown."
            .to_string(),
    ];

    ExperimentOutput {
        id: "ablation",
        title: "Ablations — modules, size knowledge m, and c_max",
        notes,
        tables: vec![
            ("module contributions".to_string(), modules),
            (format!("size knowledge at n = {m_n}"), m_table),
            (format!("c_max sensitivity at n = {m_n}"), c_table),
        ],
    }
}
