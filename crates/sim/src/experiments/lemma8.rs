//! **Lemma 8** — the number of leaders becomes exactly one before any agent
//! enters the fourth epoch, with probability `1 − O(1/log n)`.

use super::f3;
use crate::{parallel_map, ExperimentOutput};
use pp_core::Pll;
use pp_engine::{Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::{fit_against, Table};

/// Runs the Lemma 8 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![256, 512, 1024, 2048, 4096]
    };
    let trials: u64 = if quick { 100 } else { 1000 };

    let seq = SeedSequence::new(88);
    let mut jobs = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        for t in 0..trials {
            jobs.push((n, seq.seed_at(((ni as u64) << 32) | t)));
        }
    }
    // success = unique leader reached while no agent is in epoch 4 yet.
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let pll = Pll::for_population(n).expect("n >= 2");
        let mut sim =
            Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
        let burst = (n as u64 / 2).max(1);
        loop {
            let outcome = sim.run_until_single_leader(sim.steps() + burst);
            let epoch4 = sim.states().iter().any(|s| s.epoch >= 4);
            if outcome.converged {
                // Conservative: if epoch 4 was entered in the same burst,
                // count the run as a failure.
                return (n, !epoch4);
            }
            if epoch4 {
                return (n, false);
            }
        }
    });

    let mut table = Table::new([
        "n",
        "P[unique before epoch 4]",
        "failure rate",
        "failure × lg n (≈ const if O(1/log n))",
    ]);
    let mut fit_points = Vec::new();
    for &n in &ns {
        let rows: Vec<_> = outcomes.iter().filter(|o| o.0 == n).collect();
        let successes = rows.iter().filter(|o| o.1).count();
        let p = successes as f64 / rows.len() as f64;
        let fail = 1.0 - p;
        let lg = (n as f64).log2();
        fit_points.push((1.0 / lg, fail));
        table.push_row([n.to_string(), f3(p), f3(fail), f3(fail * lg)]);
    }

    // O(1/log n) failure ⟺ failure ≈ a·(1/lg n) + b with b ≈ 0.
    let fit = fit_against(&fit_points);
    let notes = vec![
        format!(
            "{trials} runs per n; epoch-4 entry checked every n/2 steps (runs where \
                 convergence and epoch-4 entry fall in the same burst are counted as \
                 failures, a conservative bias)."
        ),
        format!(
            "Linear fit of failure rate against 1/lg n: slope {:.2}, intercept {:.3} \
             (R² {:.3}) — an intercept near zero is the O(1/log n) signature of Lemma 8.",
            fit.slope, fit.intercept, fit.r_squared
        ),
    ];

    ExperimentOutput {
        id: "lemma8",
        title: "Lemma 8 — unique leader before the fourth epoch",
        notes,
        tables: vec![("success probabilities".to_string(), table)],
    }
}
