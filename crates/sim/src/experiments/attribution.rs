//! **Module attribution** — which mechanism eliminates how many leaders.
//!
//! A figure-equivalent breakdown motivating the paper's three-phase design:
//! status assignment fells about half the population instantly,
//! `QuickElimination()` removes almost all remaining leaders, `Tournament()`
//! settles the stragglers, and `BackUp()` is rarely touched — exactly the
//! probability cascade of Section 3.1.

use crate::{parallel_map, ExperimentOutput};
use pp_core::metrics::DemotionTally;
use pp_core::Pll;
use pp_engine::{Configuration, LeaderElection, Scheduler, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::Table;

fn run_one(n: usize, seed: u64) -> DemotionTally {
    let pll = Pll::for_population(n).expect("n >= 2");
    let mut config = Configuration::initial(&pll, n).expect("n >= 2");
    let mut scheduler = UniformScheduler::seed_from_u64(seed);
    let mut tally = DemotionTally::new();
    let mut leaders = config.leader_count(&pll);
    while leaders > 1 {
        let interaction = scheduler.next_interaction(n);
        let pre_i = *config.state(interaction.initiator).expect("in bounds");
        let pre_r = *config.state(interaction.responder).expect("in bounds");
        config.apply(&pll, interaction).expect("valid interaction");
        let post_i = *config.state(interaction.initiator).expect("in bounds");
        let post_r = *config.state(interaction.responder).expect("in bounds");
        let before = tally.total();
        tally.observe((&pre_i, &pre_r), (&post_i, &post_r));
        leaders -= (tally.total() - before) as usize;
        debug_assert!(
            pll.is_leader(&post_i) || pll.is_leader(&post_r) || leaders >= 1,
            "leaders never vanish"
        );
    }
    tally
}

/// Runs the module-attribution experiment.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 256]
    } else {
        vec![256, 1024, 4096]
    };
    let seeds: u64 = if quick { 5 } else { 25 };

    let seq = SeedSequence::new(0xA77);
    let mut jobs = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((n, seq.seed_at(((ni as u64) << 32) | s)));
        }
    }
    let tallies = parallel_map(&jobs, |&(n, seed)| (n, run_one(n, seed)));

    let mut table = Table::new([
        "n",
        "status assignment",
        "QuickElimination",
        "Tournament",
        "BackUp (level)",
        "BackUp (duel)",
        "total (= n − 1)",
    ]);
    for &n in &ns {
        let rows: Vec<&DemotionTally> = tallies
            .iter()
            .filter(|(jn, _)| *jn == n)
            .map(|(_, t)| t)
            .collect();
        let count = rows.len() as f64;
        let mean = |f: fn(&DemotionTally) -> u64| -> String {
            format!(
                "{:.1}",
                rows.iter().map(|t| f(t) as f64).sum::<f64>() / count
            )
        };
        table.push_row([
            n.to_string(),
            mean(|t| t.status_assignment),
            mean(|t| t.quick_elimination),
            mean(|t| t.tournament),
            mean(|t| t.backup_level),
            mean(|t| t.backup_duel),
            mean(|t| t.total()),
        ]);
    }

    let notes = vec![
        "Mean demotions per run, by mechanism; every run loses exactly n − 1 leaders in \
         total (the tally's conservation law, also asserted in `pp-core::metrics` tests)."
            .to_string(),
        "The cascade of Section 3.1 is visible: ~n/2 agents never lead past their first \
         interaction (status assignment), QuickElimination eliminates nearly all remaining \
         leaders, Tournament handles the geometric-tie stragglers, and BackUp barely fires \
         (it exists for the O(1/log n) failure tail)."
            .to_string(),
    ];

    ExperimentOutput {
        id: "attribution",
        title: "Module attribution — who eliminates whom",
        notes,
        tables: vec![("mean demotions per run".to_string(), table)],
    }
}
