//! **Lemma 2** — the one-way epidemic tail bound
//! `Pr[I_{V',r,Γ}(2⌈n/n'⌉·t) ≠ V'] ≤ n·e^{−t/n}`, empirically.

use super::f3;
use crate::{parallel_map, ExperimentOutput};
use pp_engine::epidemic::{lemma2_horizon, Epidemic};
use pp_rand::{SeedSequence, Xoshiro256PlusPlus};
use pp_stats::{theory, Table};

/// Runs the Lemma 2 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: usize = if quick { 256 } else { 2048 };
    let trials: u64 = if quick { 200 } else { 2000 };
    // Sub-population fractions 1, 1/2, 1/4 — the lemma covers any V' ⊆ V.
    let fractions = [1usize, 2, 4];
    // Horizon multipliers t = c·n: the bound is n·e^{−c}, spanning
    // "vacuous" (c < ln n) to strong (c = ln n + 4).
    let ln_n = (n as f64).ln();
    let cs: Vec<f64> = vec![
        (ln_n - 1.0).max(1.0),
        ln_n,
        ln_n + 1.0,
        ln_n + 2.0,
        ln_n + 4.0,
    ];

    let seq = SeedSequence::new(0xEB1D);
    let mut jobs = Vec::new();
    for (fi, &frac) in fractions.iter().enumerate() {
        for (ci, &c) in cs.iter().enumerate() {
            for trial in 0..trials {
                jobs.push((frac, c, seq.seed_at(((fi * 10 + ci) as u64) << 32 | trial)));
            }
        }
    }
    let outcomes = parallel_map(&jobs, |&(frac, c, seed)| {
        let members: Vec<bool> = (0..n).map(|i| i % frac == 0).collect();
        let n_prime = members.iter().filter(|&&m| m).count();
        let t = (c * n as f64) as u64;
        let horizon = lemma2_horizon(n, n_prime, t);
        let mut ep = Epidemic::new(members, 0).expect("source is a member");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let failed = ep.run_to_completion(&mut rng, horizon).is_err();
        (frac, c, failed)
    });

    let mut table = Table::new([
        "n'",
        "t/n",
        "horizon 2⌈n/n'⌉t (steps)",
        "empirical P[unfinished]",
        "Lemma 2 bound n·e^{−t/n}",
        "bound respected",
    ]);
    let mut all_respected = true;
    for &frac in &fractions {
        let n_prime = (0..n).filter(|i| i % frac == 0).count();
        for &c in &cs {
            let t = (c * n as f64) as u64;
            let fails = outcomes
                .iter()
                .filter(|&&(jf, jc, _)| jf == frac && jc == c)
                .filter(|&&(_, _, failed)| failed)
                .count();
            let p_fail = fails as f64 / trials as f64;
            let bound = theory::epidemic_tail_bound(n as u64, t as f64);
            // Allow Monte-Carlo noise of ~3 standard errors on top.
            let noise = 3.0 * (bound.max(1e-6) / trials as f64).sqrt();
            let ok = p_fail <= bound + noise;
            all_respected &= ok;
            table.push_row([
                n_prime.to_string(),
                format!("{c:.1}"),
                lemma2_horizon(n, n_prime, t).to_string(),
                f3(p_fail),
                f3(bound),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }

    let notes = vec![
        format!(
            "Population n = {n}, {trials} trials per cell; sub-populations are every \
                 {{1st, 2nd, 4th}} agent."
        ),
        format!(
            "All empirical tails below the closed-form bound (within Monte-Carlo noise): {}.",
            if all_respected {
                "CONFIRMED"
            } else {
                "VIOLATED — investigate"
            }
        ),
        "The bound is loose by design (union bound over agents); empirical failure \
         probabilities drop to 0 well before the bound does."
            .to_string(),
    ];

    ExperimentOutput {
        id: "lemma2",
        title: "Lemma 2 — epidemic completion tail vs. closed form",
        notes,
        tables: vec![("tail probabilities".to_string(), table)],
    }
}
