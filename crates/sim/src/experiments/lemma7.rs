//! **Lemma 7** — after `⌊21·n·ln n⌋` interactions, the number of surviving
//! leaders is `i` with probability `< 2^{1−i} + ε_i`.

use super::f3;
use crate::{parallel_map, ExperimentOutput};
use pp_core::Pll;
use pp_engine::{Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::{theory, Histogram, Table};

/// Runs the Lemma 7 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: usize = if quick { 256 } else { 2048 };
    let trials: u64 = if quick { 300 } else { 3000 };
    let horizon = theory::qe_horizon(n as u64);

    let seq = SeedSequence::new(77);
    let jobs: Vec<u64> = (0..trials).map(|t| seq.seed_at(t)).collect();
    let survivors = parallel_map(&jobs, |&seed| {
        let pll = Pll::for_population(n).expect("n >= 2");
        let mut sim =
            Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
        sim.run(horizon);
        sim.leader_count() as u64
    });

    let hist: Histogram = survivors.iter().copied().collect();
    let mut table = Table::new([
        "surviving leaders i",
        "empirical P[·=i]",
        "bound 2^{1−i} (i ≥ 2)",
        "exact game value 1/(2^i −1)",
        "within bound",
    ]);
    let mut all_ok = true;
    let max_i = hist.max_value().unwrap_or(1).max(6);
    for i in 1..=max_i {
        let p = hist.probability(i);
        let bound = theory::lottery_survivor_bound(i as u32);
        let exact = theory::lottery_survivor_exact(i as u32);
        // 3σ Monte-Carlo tolerance on the bound comparison.
        let tol = 3.0 * (bound.max(1e-4) / trials as f64).sqrt();
        let ok = i < 2 || p <= bound + tol;
        all_ok &= ok;
        table.push_row([
            i.to_string(),
            f3(p),
            if i >= 2 { f3(bound) } else { "—".to_string() },
            if i >= 2 { f3(exact) } else { "—".to_string() },
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let unique_rate = hist.probability(1);
    let notes = vec![
        format!(
            "n = {n}, horizon ⌊21·n·ln n⌋ = {horizon} steps, {trials} independent runs; \
             leaders counted at the horizon."
        ),
        format!(
            "P[unique leader already] = {unique_rate:.3}; the game analysis predicts \
             1 − Σ_{{i≥2}} 1/(2^i−1) ≈ 0.394 *for the game alone* — the measured value is \
             higher because the maximum-level epidemic keeps eliminating ties during the \
             window and many runs have already entered Tournament territory."
        ),
        format!(
            "All i ≥ 2 probabilities below the 2^{{1−i}} bound (3σ tolerance): {}.",
            if all_ok {
                "CONFIRMED"
            } else {
                "VIOLATED — investigate"
            }
        ),
    ];

    ExperimentOutput {
        id: "lemma7",
        title: "Lemma 7 — QuickElimination survivor distribution",
        notes,
        tables: vec![("survivor histogram".to_string(), table)],
    }
}
