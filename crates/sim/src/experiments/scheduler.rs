//! **Scheduler robustness** — what survives when the uniformly random
//! scheduler assumption is dropped.
//!
//! All of the paper's *time* bounds are stated under the uniformly random
//! scheduler Γ; *safety* (at least one leader, monotone leader count) is a
//! property of the transition function and holds under any schedule. This
//! experiment runs `P_LL` and the baselines under the deterministic
//! round-robin sweep and compares against Γ.

use super::f1;
use crate::{parallel_map, ExperimentOutput};
use pp_core::Pll;
use pp_engine::{LeaderElection, RoundRobinScheduler, Scheduler, Simulation, UniformScheduler};
use pp_protocols::{BoundedLottery, Fratricide};
use pp_rand::SeedSequence;
use pp_stats::{Summary, Table};

fn measure<P, S, F, G>(make: F, sched: G, ns: &[usize], runs: u64, master: u64) -> Vec<Summary>
where
    P: LeaderElection,
    S: Scheduler,
    F: Fn(usize) -> P + Sync,
    G: Fn(u64) -> S + Sync,
{
    let seq = SeedSequence::new(master);
    let mut jobs = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        for r in 0..runs {
            jobs.push((n, seq.seed_at(((ni as u64) << 32) | r)));
        }
    }
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let mut sim = Simulation::new(make(n), n, sched(seed)).expect("n >= 2");
        let outcome = sim.run_until_single_leader(500_000_000);
        assert!(outcome.converged, "run failed to elect under this schedule");
        (n, outcome.parallel_time(n))
    });
    ns.iter()
        .map(|&n| {
            outcomes
                .iter()
                .filter(|&&(jn, _)| jn == n)
                .map(|&(_, t)| t)
                .collect()
        })
        .collect()
}

/// Runs the scheduler-robustness experiment.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 256]
    } else {
        vec![256, 1024, 4096]
    };
    let runs: u64 = if quick { 5 } else { 20 };

    // Uniformly random scheduler (seeded per run).
    let pll_uniform = measure(
        |n| Pll::for_population(n).expect("n >= 2"),
        UniformScheduler::seed_from_u64,
        &ns,
        runs,
        1,
    );
    let frat_uniform = measure(
        |_| Fratricide,
        UniformScheduler::seed_from_u64,
        &ns,
        runs,
        2,
    );
    let lot_uniform = measure(
        |n| BoundedLottery::for_population(n).expect("n >= 2"),
        UniformScheduler::seed_from_u64,
        &ns,
        runs,
        3,
    );
    // Deterministic round-robin sweep (seed ignored; one run per n).
    let pll_rr = measure(
        |n| Pll::for_population(n).expect("n >= 2"),
        |_| RoundRobinScheduler::new(),
        &ns,
        1,
        4,
    );
    let frat_rr = measure(|_| Fratricide, |_| RoundRobinScheduler::new(), &ns, 1, 5);
    let lot_rr = measure(
        |n| BoundedLottery::for_population(n).expect("n >= 2"),
        |_| RoundRobinScheduler::new(),
        &ns,
        1,
        6,
    );

    let mut table = Table::new([
        "n",
        "P_LL Γ",
        "P_LL round-robin",
        "Fratricide Γ",
        "Fratricide round-robin",
        "BoundedLottery Γ",
        "BoundedLottery round-robin",
    ]);
    for (i, &n) in ns.iter().enumerate() {
        table.push_row([
            n.to_string(),
            f1(pll_uniform[i].mean()),
            f1(pll_rr[i].mean()),
            f1(frat_uniform[i].mean()),
            f1(frat_rr[i].mean()),
            f1(lot_uniform[i].mean()),
            f1(lot_rr[i].mean()),
        ]);
    }

    let notes = vec![
        "Every run under every schedule elected exactly one leader: safety (≥1 leader, \
         monotone count) is schedule-independent — it is a property of the transition \
         function alone."
            .to_string(),
        "Round-robin is *faster* for these protocols: the first sweep assigns statuses \
         pairwise (P_LL ends it with a single surviving candidate), and deterministic \
         alternation resolves lotteries immediately. The paper's Ω(log n) lower bounds are \
         statements about the uniformly random scheduler, not about adversarial or \
         deterministic ones."
            .to_string(),
        "Parallel-time *distributions* under Γ carry the analysis' meaning; the round-robin \
         column is a single deterministic trajectory."
            .to_string(),
    ];

    ExperimentOutput {
        id: "scheduler",
        title: "Scheduler robustness — beyond the uniformly random scheduler",
        notes,
        tables: vec![("parallel stabilization times".to_string(), table)],
    }
}
