//! **Lemma 6** — the count-up/color synchronization machinery:
//!
//! * **P1**: from a fresh color start, no agent gets the *next* color within
//!   `⌊21·n·ln n⌋` steps (w.h.p.);
//! * **P2**: the fresh color spreads to the whole population within
//!   `⌊4·n·ln n⌋` steps (w.h.p.);
//! * **P3**: the next color start follows within `O(log n)` parallel time.

use super::f1;
use crate::{parallel_map, ExperimentOutput};
use pp_core::Pll;
use pp_engine::{Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::{Summary, Table};

#[derive(Debug, Default, Clone)]
struct CycleStats {
    /// Steps from a color's first appearance to full spread.
    spreads: Vec<u64>,
    /// Steps between consecutive colors' first appearances.
    gaps: Vec<u64>,
}

/// Tracks color first-appearance and full-spread events over one run.
fn observe_cycles(n: usize, seed: u64, cycles: usize) -> CycleStats {
    let pll = Pll::for_population(n).expect("n >= 2");
    let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
    let resolution = (n as u64 / 8).max(1);
    let mut stats = CycleStats::default();

    let mut current: u8 = 0; // color whose cycle we are in
    let mut appeared_at: u64 = 0; // first-appearance step of `current`
    let mut spread_recorded = false;
    // Budget: each cycle is ~ c_max/2 parallel time; allow 4x slack.
    let params = *Pll::for_population(n).expect("n >= 2").params();
    let budget = (cycles as u64 + 2) * 2 * params.cmax() as u64 * n as u64;

    while stats.gaps.len() < cycles && sim.steps() < budget {
        sim.run(resolution);
        let mut counts = [0usize; 3];
        for s in sim.states() {
            counts[s.color as usize] += 1;
        }
        let next = ((current + 1) % 3) as usize;
        if !spread_recorded && counts[current as usize] == n {
            stats.spreads.push(sim.steps() - appeared_at);
            spread_recorded = true;
        }
        if counts[next] > 0 {
            stats.gaps.push(sim.steps() - appeared_at);
            if !spread_recorded {
                // Full spread never observed before the next color: record
                // the gap as a (pessimistic) spread too so P2 accounting
                // notices.
                stats.spreads.push(sim.steps() - appeared_at);
            }
            current = (current + 1) % 3;
            appeared_at = sim.steps();
            spread_recorded = false;
        }
    }
    stats
}

/// Runs the Lemma 6 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![128, 256]
    } else {
        vec![256, 1024, 4096]
    };
    let seeds: u64 = if quick { 3 } else { 10 };
    let cycles = if quick { 4 } else { 8 };

    let seq = SeedSequence::new(66);
    let mut jobs = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((n, seq.seed_at(((ni as u64) << 32) | s)));
        }
    }
    let outcomes = parallel_map(&jobs, |&(n, seed)| (n, observe_cycles(n, seed, cycles)));

    let mut table = Table::new([
        "n",
        "cycles",
        "spread (mean par.)",
        "spread (max par.)",
        "P2 bound 4·ln n",
        "P2 holds (frac)",
        "gap (mean par.)",
        "gap (min par.)",
        "P1 bound 21·ln n",
        "P1 holds (frac)",
    ]);
    for &n in &ns {
        let nf = n as f64;
        let p2_bound = 4.0 * nf.ln();
        let p1_bound = 21.0 * nf.ln();
        let mut spreads = Summary::new();
        let mut gaps = Summary::new();
        let mut p2_ok = 0u64;
        let mut p2_all = 0u64;
        let mut p1_ok = 0u64;
        let mut p1_all = 0u64;
        for (_, stats) in outcomes.iter().filter(|(jn, _)| *jn == n) {
            for &s in &stats.spreads {
                let par = s as f64 / nf;
                spreads.push(par);
                p2_all += 1;
                if par <= p2_bound {
                    p2_ok += 1;
                }
            }
            for &g in &stats.gaps {
                let par = g as f64 / nf;
                gaps.push(par);
                p1_all += 1;
                if par >= p1_bound {
                    p1_ok += 1;
                }
            }
        }
        table.push_row([
            n.to_string(),
            p2_all.to_string(),
            f1(spreads.mean()),
            f1(spreads.max()),
            f1(p2_bound),
            format!("{:.3}", p2_ok as f64 / p2_all.max(1) as f64),
            f1(gaps.mean()),
            f1(gaps.min()),
            f1(p1_bound),
            format!("{:.3}", p1_ok as f64 / p1_all.max(1) as f64),
        ]);
    }

    let notes = vec![
        "Spread = steps from a color's first appearance to all n agents holding it \
         (epidemic; P2 bounds it by 4·n·ln n w.h.p.). Gap = steps between consecutive \
         colors' first appearances (P1 lower-bounds it by 21·n·ln n w.h.p.; P3 says it is \
         O(log n) parallel time, ≈ c_max/2 = 20.5·m)."
            .to_string(),
        "Event detection samples every n/8 steps, so measured times carry ≤ 0.125 parallel \
         time units of quantization."
            .to_string(),
        "Expected shape: spread ≪ P2 bound, gap comfortably above P1 bound and close to \
         20.5·m parallel time — the design margin (41m vs 58·ln n in the proof) is visible."
            .to_string(),
    ];

    ExperimentOutput {
        id: "lemma6",
        title: "Lemma 6 — synchronization properties P1/P2/P3",
        notes,
        tables: vec![("color-cycle timing".to_string(), table)],
    }
}
