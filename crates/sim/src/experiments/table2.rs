//! **Table 2** — lower bounds for leader election, checked for consistency.
//!
//! The paper's Table 2 lists three lower bounds. Two are checkable against
//! our implementations (the third, `Ω(n/polylog n)` for `< ½·lg lg n`
//! states \[Ali+17\], sits between the two corners we implement):
//!
//! * **\[DS18\]**: constant-state protocols need `Ω(n)` expected parallel
//!   time. Consistency: Fratricide's measured `time/n` ratio stays bounded
//!   away from 0 as `n` grows (it is `Θ(n)`).
//! * **\[SM19\]**: `Ω(log n)` expected parallel time for *any* number of
//!   states. Consistency: `P_LL`'s measured `time/lg n` ratio stays bounded
//!   below as well as above — it cannot beat the logarithmic floor, and the
//!   coupon-collector floor `≈ ½·ln n` (every agent must interact at all)
//!   is visibly respected.

use super::f3;
use crate::{stabilization_sweep, ExperimentOutput};
use pp_core::Pll;
use pp_protocols::Fratricide;
use pp_stats::{theory, Table};

/// Runs the Table 2 consistency checks.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![256, 512, 1024, 2048, 4096, 8192]
    };
    let seeds = if quick { 5 } else { 30 };

    let frat = stabilization_sweep(|_| Fratricide, &ns, seeds, 21, u64::MAX);
    let pll = stabilization_sweep(
        |n| Pll::for_population(n).expect("n >= 2"),
        &ns,
        seeds,
        22,
        u64::MAX,
    );

    let mut table = Table::new([
        "n",
        "Frat time/n  [DS18: Ω(n) ⇒ flat > 0]",
        "P_LL time/lg n  [SM19: Ω(log n) ⇒ flat > 0]",
        "coupon floor ≈ ½·ln n (parallel)",
        "P_LL time / floor",
    ]);
    for (i, &n) in ns.iter().enumerate() {
        let frat_ratio = frat[i].times.mean() / n as f64;
        let lg = (n as f64).log2();
        let pll_ratio = pll[i].times.mean() / lg;
        // Every agent must participate in >= 1 interaction before the output
        // can be correct for all agents; by coupon collector over "who has
        // interacted", that needs ~ (n/2)·H_n… interactions ≈ ½·ln n
        // parallel time.
        let floor = 0.5 * theory::harmonic(n as u64);
        table.push_row([
            n.to_string(),
            f3(frat_ratio),
            f3(pll_ratio),
            f3(floor),
            f3(pll[i].times.mean() / floor),
        ]);
    }

    let first_ratio = frat[0].times.mean() / ns[0] as f64;
    let last_ratio = frat.last().unwrap().times.mean() / *ns.last().unwrap() as f64;
    let first_pll = pll[0].times.mean() / (ns[0] as f64).log2();
    let last_pll = pll.last().unwrap().times.mean() / (*ns.last().unwrap() as f64).log2();

    let notes = vec![
        format!(
            "Fratricide time/n moves {:.3} → {:.3} across the sweep: bounded and non-vanishing, \
             consistent with the Ω(n) bound of [DS18] for O(1)-state protocols.",
            first_ratio, last_ratio
        ),
        format!(
            "P_LL time/lg n moves {:.3} → {:.3}: a bounded constant, i.e. Θ(log n) — it meets \
             the [SM19] Ω(log n) floor up to a constant and never dips below the coupon floor.",
            first_pll, last_pll
        ),
        "The [Ali+17] bound (Ω(n/polylog n) below ½ lg lg n states) is not directly \
         exercised: no implemented protocol sits in that state regime; Fratricide (2 states) \
         already illustrates the sub-log-log wall."
            .to_string(),
    ];

    ExperimentOutput {
        id: "table2",
        title: "Table 2 — lower-bound consistency",
        notes,
        tables: vec![("ratios vs bounds".to_string(), table)],
    }
}
