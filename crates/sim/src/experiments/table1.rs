//! **Table 1** — leader-election protocols: states per agent vs. expected
//! stabilization time.
//!
//! The paper's Table 1 is an asymptotic comparison across eight papers. We
//! reproduce its *shape* with the three implemented corners of the
//! trade-off space (see `DESIGN.md` for the substitution rationale):
//!
//! | protocol | states | time (paper) |
//! |---|---|---|
//! | Fratricide \[Ang+06\] | `O(1)` | `O(n)` |
//! | UnboundedLottery [MST18-like] | `O(n)` | `O(log n)` |
//! | `P_LL` (this work) | `O(log n)` | `O(log n)` |
//!
//! Measured: mean parallel stabilization time (± 95% CI) and distinct states
//! visited per execution, across a dyadic sweep of `n`; plus fitted
//! power-law exponents that separate `Θ(n)` from `O(log n)` scaling.

use super::{f1, f3, mean_ci};
use crate::{
    parallel_map, stabilization_sweep, stabilization_sweep_checkpointed, ExperimentCheckpoint,
    ExperimentOutput, SweepPoint, SweepStatus,
};
use pp_core::Pll;
use pp_engine::{CountSimulation, LeaderElection, SnapshotState};
use pp_protocols::{BoundedLottery, Fratricide, UnboundedLottery};
use pp_rand::Xoshiro256PlusPlus;
use pp_stats::{fit_power_law, Summary, Table};

fn distinct_states<P, F>(make: F, ns: &[usize], seeds: u64, master: u64) -> Vec<Summary>
where
    P: pp_engine::LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    let jobs = crate::runner::sweep_jobs(ns, seeds, master);
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut sim = CountSimulation::new(make(n), n, rng).expect("n >= 2");
        sim.run_until_single_leader(u64::MAX);
        sim.distinct_states_seen() as f64
    });
    // Aggregate by contiguous job range (mirrors `sweep_impl`): repeated
    // entries in `ns` stay independent instead of double-counting.
    ns.iter()
        .enumerate()
        .map(|(ni, _)| {
            outcomes[ni * seeds as usize..(ni + 1) * seeds as usize]
                .iter()
                .copied()
                .collect()
        })
        .collect()
}

/// Runs one of Table 1's four stabilization sweeps, either plainly or
/// through the experiment's checkpoint context (labeled subdirectory,
/// shared fresh-job budget). `Ok(None)` means the budget ran out.
fn sweep_step<P, F>(
    ckpt: &mut Option<&mut ExperimentCheckpoint>,
    label: &str,
    make: F,
    ns: &[usize],
    seeds: u64,
    master: u64,
) -> std::io::Result<Option<Vec<SweepPoint>>>
where
    P: LeaderElection,
    P::State: SnapshotState,
    F: Fn(usize) -> P + Sync,
{
    match ckpt {
        None => Ok(Some(stabilization_sweep(make, ns, seeds, master, u64::MAX))),
        Some(cx) => {
            let config = cx.sweep_config(label);
            match stabilization_sweep_checkpointed(make, ns, seeds, master, u64::MAX, &config)? {
                SweepStatus::Complete { points, fresh_jobs } => {
                    cx.consume(fresh_jobs);
                    Ok(Some(points))
                }
                SweepStatus::Suspended { .. } => Ok(None),
            }
        }
    }
}

/// Runs the Table 1 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    run_impl(quick, None)
        .expect("uncheckpointed table1 does no checkpoint I/O")
        .expect("uncheckpointed table1 never suspends")
}

/// [`run`] with crash-recoverable sweeps: each of the four stabilization
/// sweeps journals per-job results under its own subdirectory of the
/// checkpoint context. `Ok(None)` means the context's fresh-job budget was
/// exhausted with sweep jobs still pending — rerun with the same directory
/// to continue. A resumed run's output is byte-identical to an
/// uninterrupted one (the distinct-states measurements are cheap and
/// deterministic, so they rerun uncheckpointed every invocation).
///
/// # Errors
///
/// Journal / snapshot I/O failures, including a checkpoint directory whose
/// journals were written by a different sweep configuration.
pub fn run_checkpointed(
    quick: bool,
    ckpt: &mut ExperimentCheckpoint,
) -> std::io::Result<Option<ExperimentOutput>> {
    run_impl(quick, Some(ckpt))
}

fn run_impl(
    quick: bool,
    mut ckpt: Option<&mut ExperimentCheckpoint>,
) -> std::io::Result<Option<ExperimentOutput>> {
    let ns: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![256, 512, 1024, 2048, 4096, 8192]
    };
    let seeds = if quick { 5 } else { 30 };
    let state_seeds = if quick { 2 } else { 5 };

    let Some(frat) = sweep_step(&mut ckpt, "frat", |_| Fratricide, &ns, seeds, 1)? else {
        return Ok(None);
    };
    let Some(blottery) = sweep_step(
        &mut ckpt,
        "blottery",
        |n| BoundedLottery::for_population(n).expect("n >= 2"),
        &ns,
        seeds,
        4,
    )?
    else {
        return Ok(None);
    };
    let Some(lottery) = sweep_step(&mut ckpt, "lottery", |_| UnboundedLottery, &ns, seeds, 2)?
    else {
        return Ok(None);
    };
    let Some(pll) = sweep_step(
        &mut ckpt,
        "pll",
        |n| Pll::for_population(n).expect("n >= 2"),
        &ns,
        seeds,
        3,
    )?
    else {
        return Ok(None);
    };

    let frat_states = distinct_states(|_| Fratricide, &ns, state_seeds, 10);
    let blottery_states = distinct_states(
        |n| BoundedLottery::for_population(n).expect("n >= 2"),
        &ns,
        state_seeds,
        13,
    );
    let lottery_states = distinct_states(|_| UnboundedLottery, &ns, state_seeds, 11);
    let pll_states = distinct_states(
        |n| Pll::for_population(n).expect("n >= 2"),
        &ns,
        state_seeds,
        12,
    );

    let mut main = Table::new([
        "n",
        "Fratricide time",
        "BLottery time",
        "ULottery time",
        "P_LL time",
        "Frat states",
        "BLottery states",
        "ULottery states",
        "P_LL states",
    ]);
    for (i, &n) in ns.iter().enumerate() {
        main.push_row([
            n.to_string(),
            mean_ci(&frat[i].times),
            mean_ci(&blottery[i].times),
            mean_ci(&lottery[i].times),
            mean_ci(&pll[i].times),
            f1(frat_states[i].mean()),
            f1(blottery_states[i].mean()),
            f1(lottery_states[i].mean()),
            f1(pll_states[i].mean()),
        ]);
    }

    // Scaling fits: exponent of T(n) ~ n^e.
    let exponent = |points: &[crate::SweepPoint]| -> f64 {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.n as f64, p.times.mean()))
            .collect();
        fit_power_law(&pts).slope
    };
    let sexponent = |summaries: &[Summary]| -> f64 {
        let pts: Vec<(f64, f64)> = ns
            .iter()
            .zip(summaries)
            .map(|(&n, s)| (n as f64, s.mean().max(1.0)))
            .collect();
        fit_power_law(&pts).slope
    };

    let mut fits = Table::new([
        "protocol",
        "paper states",
        "paper time",
        "time exponent",
        "states exponent",
    ]);
    fits.push_row([
        "Fratricide [Ang+06]".to_string(),
        "O(1)".to_string(),
        "O(n)".to_string(),
        f3(exponent(&frat)),
        f3(sexponent(&frat_states)),
    ]);
    fits.push_row([
        "BoundedLottery [Ali+17-like]".to_string(),
        "O(log n)".to_string(),
        "lottery O(log n) + Θ(n) tie tail".to_string(),
        f3(exponent(&blottery)),
        f3(sexponent(&blottery_states)),
    ]);
    fits.push_row([
        "UnboundedLottery [MST18-like]".to_string(),
        "O(n)".to_string(),
        "O(log n)".to_string(),
        f3(exponent(&lottery)),
        f3(sexponent(&lottery_states)),
    ]);
    fits.push_row([
        "P_LL (this work)".to_string(),
        "O(log n)".to_string(),
        "O(log n)".to_string(),
        f3(exponent(&pll)),
        f3(sexponent(&pll_states)),
    ]);

    // Jump-scale sweep: population sizes two orders of magnitude beyond the
    // main table, reachable only because the count engine's jump scheduler
    // telescopes the Θ(n²)-step null tail of fratricide into O(n) episodes
    // (≈10^16 simulated interactions per 2^30 run, seconds of wall clock).
    let mut tables = vec![
        ("measured sweep".to_string(), main),
        ("scaling fits vs paper claims".to_string(), fits),
    ];
    if !quick {
        let big_ns: Vec<usize> = vec![1 << 26, 1 << 28, 1 << 30];
        let big_seeds = 3;
        let big = stabilization_sweep(|_| Fratricide, &big_ns, big_seeds, 5, u64::MAX);
        let mut jump_table = Table::new(["n", "Fratricide time", "unconverged", "steps ~ n·time"]);
        for p in &big {
            jump_table.push_row([
                p.n.to_string(),
                mean_ci(&p.times),
                p.unconverged.to_string(),
                format!("{:.2e}", p.times.mean() * p.n as f64),
            ]);
        }
        tables.push((
            "jump-scale sweep (count engine + jump scheduler)".to_string(),
            jump_table,
        ));
    }

    let notes = vec![
        "Time exponents near 1 indicate Θ(n) scaling (paper: [Ang+06]); near 0 indicates \
         poly-logarithmic scaling (paper: [MST18] and this work)."
            .to_string(),
        "States exponents: Fratricide stays at 2 states (exponent ≈ 0); the lottery's state \
         usage grows with n; P_LL's distinct states grow ≈ linearly in m = ⌈lg n⌉."
            .to_string(),
        format!(
            "Crossover shape: at n = {}, P_LL is ~{:.0}× faster than Fratricide, and the gap \
             widens with n — matching Table 1's O(log n) vs O(n).",
            ns[ns.len() - 1],
            frat.last().unwrap().times.mean() / pll.last().unwrap().times.mean()
        ),
    ];

    Ok(Some(ExperimentOutput {
        id: "table1",
        title: "Table 1 — states vs. expected stabilization time",
        notes,
        tables,
    }))
}
