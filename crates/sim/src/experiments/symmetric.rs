//! **Section 4** — the symmetric variant: correctness, overhead, and the
//! exactly-fair coin machinery (`#F0 = #F1` at all times).

use super::{f3, mean_ci};
use crate::{parallel_map, stabilization_sweep, ExperimentOutput};
use pp_core::{Coin, Pll, SymPll};
use pp_engine::{Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::Table;

/// Runs the Section 4 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![256, 512, 1024, 2048, 4096]
    };
    let seeds = if quick { 5 } else { 20 };

    let asym = stabilization_sweep(
        |n| Pll::for_population(n).expect("n >= 2"),
        &ns,
        seeds,
        41,
        u64::MAX,
    );
    let sym = stabilization_sweep(
        |n| SymPll::for_population(n).expect("n >= 3"),
        &ns,
        seeds,
        42,
        u64::MAX,
    );

    let mut timing = Table::new([
        "n",
        "asymmetric P_LL (par. time)",
        "symmetric P_LL (par. time)",
        "overhead ×",
    ]);
    for (a, s) in asym.iter().zip(&sym) {
        timing.push_row([
            a.n.to_string(),
            mean_ci(&a.times),
            mean_ci(&s.times),
            format!("{:.2}", s.times.mean() / a.times.mean()),
        ]);
    }

    // Fairness: the #F0 = #F1 invariant and the head-rate of usable coins,
    // sampled along real runs.
    let fairness_ns: Vec<usize> = if quick { vec![128] } else { vec![512, 2048] };
    let seq = SeedSequence::new(400);
    let jobs: Vec<(usize, u64)> = fairness_ns
        .iter()
        .flat_map(|&n| (0..seeds).map(move |s| (n, seq.seed_at((n as u64) << 32 | s))))
        .collect();
    let fairness = parallel_map(&jobs, |&(n, seed)| {
        let p = SymPll::for_population(n).expect("n >= 3");
        let mut sim = Simulation::new(p, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
        let mut max_imbalance = 0i64;
        let mut usable_frac_sum = 0.0;
        let checkpoints = 60;
        for _ in 0..checkpoints {
            sim.run((n as u64 / 2).max(1));
            let f0 = sim
                .states()
                .iter()
                .filter(|s| s.coin() == Some(Coin::F0))
                .count() as i64;
            let f1 = sim
                .states()
                .iter()
                .filter(|s| s.coin() == Some(Coin::F1))
                .count() as i64;
            let followers = sim.states().iter().filter(|s| !s.is_leader()).count();
            max_imbalance = max_imbalance.max((f0 - f1).abs());
            usable_frac_sum += (f0 + f1) as f64 / followers.max(1) as f64;
        }
        (n, max_imbalance, usable_frac_sum / checkpoints as f64)
    });

    let mut coins = Table::new([
        "n",
        "max |#F0 − #F1| over run (invariant: 0)",
        "usable-coin fraction of followers (mean)",
    ]);
    for &n in &fairness_ns {
        let rows: Vec<_> = fairness.iter().filter(|r| r.0 == n).collect();
        let worst = rows.iter().map(|r| r.1).max().unwrap_or(0);
        let usable = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
        coins.push_row([n.to_string(), worst.to_string(), f3(usable)]);
    }

    let notes = vec![
        "The symmetric variant pays a constant-factor overhead: leaders can only flip when \
         they meet a follower holding a usable coin (F0/F1), and the charging dance (J/K) \
         consumes follower meetings."
            .to_string(),
        "max |#F0 − #F1| = 0 in every sampled configuration: usable coins are minted in \
         balanced pairs and never destroyed, so each observed coin is exactly Bernoulli(½) \
         — the paper's 'totally independent and fair coin flips'. The same invariant is \
         checked per-step in `pp-core` tests and exhaustively in `pp-verify`."
            .to_string(),
        "Symmetry itself (T(p,p) = (p',p')) is property-tested over the full state domain in \
         `pp-core::symmetric`."
            .to_string(),
    ];

    ExperimentOutput {
        id: "symmetric",
        title: "Section 4 — symmetric P_LL and exactly fair coins",
        notes,
        tables: vec![
            ("stabilization overhead".to_string(), timing),
            ("coin fairness".to_string(), coins),
        ],
    }
}
