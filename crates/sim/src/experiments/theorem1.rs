//! **Theorem 1** — `P_LL` stabilizes in `O(log n)` parallel time in
//! expectation: the headline result.

use super::{f1, f3, mean_ci};
use crate::{stabilization_sweep, ExperimentOutput};
use pp_core::Pll;
use pp_stats::{fit_log2, fit_power_law, Table};

/// Runs the Theorem 1 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 128, 256, 512]
    } else {
        vec![256, 512, 1024, 2048, 4096, 8192, 16384, 32768]
    };
    let seeds = if quick { 5 } else { 30 };

    let points = stabilization_sweep(
        |n| Pll::for_population(n).expect("n >= 2"),
        &ns,
        seeds,
        0x7EE1,
        u64::MAX,
    );

    let mut table = Table::new([
        "n",
        "lg n",
        "parallel time (mean ± 95% CI)",
        "median",
        "p95",
        "time / lg n",
        "unconverged",
    ]);
    for p in &points {
        let lg = (p.n as f64).log2();
        table.push_row([
            p.n.to_string(),
            f1(lg),
            mean_ci(&p.times),
            f1(p.times.median()),
            f1(p.times.quantile(0.95)),
            f3(p.times.mean() / lg),
            p.unconverged.to_string(),
        ]);
    }

    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.n as f64, p.times.mean()))
        .collect();
    let log_fit = fit_log2(&pts);
    let pow_fit = fit_power_law(&pts);

    let notes = vec![
        format!(
            "Fit T(n) ≈ a·lg n + b: a = {:.2}, b = {:.2}, R² = {:.4} — the paper's O(log n) \
             with the implementation constant a ≈ 20·m/lg n (epoch pacing is c_max/2 = 20.5·m \
             interactions per timer agent).",
            log_fit.slope, log_fit.intercept, log_fit.r_squared
        ),
        format!(
            "Power-law exponent e in T(n) ~ n^e: {:.3} — near zero, decisively sub-linear \
             (compare the Fratricide exponent ≈ 1 in `table1`).",
            pow_fit.slope
        ),
        "All runs converge (unconverged = 0): stabilization is certain, not just expected — \
         the BackUp() phase guarantees it (Theorem 1's probability-1 clause)."
            .to_string(),
    ];

    ExperimentOutput {
        id: "theorem1",
        title: "Theorem 1 — O(log n) expected parallel stabilization time",
        notes,
        tables: vec![("stabilization sweep".to_string(), table)],
    }
}
