//! **Lemmas 9–12** — `BackUp()` elects a unique leader in `O(log² n)`
//! expected parallel time from adversarial fourth-epoch configurations, with
//! the `O(n)` simple-election fallback when levels saturate.

use super::f1;
use crate::{parallel_map, ExperimentOutput};
use pp_core::{Pll, PllState};
use pp_engine::{Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::{Summary, Table};

/// Builds a `B_start`-style configuration (Definition 3): everyone in epoch
/// 4, same color, `k` tied leaders at `levelB = level`, half the population
/// timer agents.
fn b_start(n: usize, k: usize, level: u32) -> Vec<PllState> {
    assert!(k >= 1 && k <= n / 2, "need 1 <= k <= n/2 leaders");
    let mut states = Vec::with_capacity(n);
    for i in 0..n {
        if i < k {
            states.push(PllState::backup(true, level));
        } else if i < n / 2 {
            states.push(PllState::backup(false, level));
        } else {
            let mut t = PllState::timer(0, 0);
            t.epoch = 4;
            t.init = 4;
            states.push(t);
        }
    }
    states
}

/// Runs the Lemma 12 reproduction.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: usize = if quick { 256 } else { 1024 };
    let seeds: u64 = if quick { 10 } else { 50 };
    let ks: Vec<usize> = if quick {
        vec![2, 8, 32]
    } else {
        vec![2, 4, 8, 32, 128, 256]
    };

    let pll = Pll::for_population(n).expect("n >= 2");
    let lmax = pll.params().lmax();
    let seq = SeedSequence::new(1212);

    // (k, saturated?, seed)
    let mut jobs = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((k, false, seq.seed_at(((ki as u64) << 33) | s)));
            jobs.push((k, true, seq.seed_at(((ki as u64) << 33) | (1 << 32) | s)));
        }
    }
    let outcomes = parallel_map(&jobs, |&(k, saturated, seed)| {
        let level = if saturated { lmax } else { 0 };
        let states = b_start(n, k, level);
        let mut sim = Simulation::from_states(
            Pll::for_population(n).expect("n >= 2"),
            states,
            UniformScheduler::seed_from_u64(seed),
        )
        .expect("n >= 2");
        let outcome = sim.run_until_single_leader(u64::MAX);
        (k, saturated, outcome.parallel_time(n))
    });

    let mut table = Table::new([
        "tied leaders k",
        "level race (mean par. time)",
        "saturated levels = simple election (mean par. time)",
        "speedup from levels",
    ]);
    for &k in &ks {
        let race: Summary = outcomes
            .iter()
            .filter(|o| o.0 == k && !o.1)
            .map(|o| o.2)
            .collect();
        let sat: Summary = outcomes
            .iter()
            .filter(|o| o.0 == k && o.1)
            .map(|o| o.2)
            .collect();
        table.push_row([
            k.to_string(),
            f1(race.mean()),
            f1(sat.mean()),
            format!("{:.1}×", sat.mean() / race.mean().max(1e-9)),
        ]);
    }

    let lg = (n as f64).log2();
    let notes = vec![
        format!(
            "n = {n} (lg n = {lg:.0}), {seeds} seeds per cell, starting from B_start-style \
             configurations (Definition 3): all agents in epoch 4, k tied leaders."
        ),
        "Level race: the levelB coin race halves the leader pack every O(log n) parallel \
         time — total O(log² n), nearly flat in k (Lemma 12)."
            .to_string(),
        format!(
            "Saturated levels (levelB = l_max = {lmax}) disable the race, leaving only the \
             simple election of [Ang+06] (line 58): Θ(n/k)·…·expected pairwise meetings — the \
             O(n) fallback of Lemma 10. The gap between the two columns is the value of the \
             level mechanism."
        ),
    ];

    ExperimentOutput {
        id: "lemma12",
        title: "Lemmas 9–12 — BackUp from adversarial configurations",
        notes,
        tables: vec![("BackUp election times".to_string(), table)],
    }
}
