//! **Lemma 4** — once every agent has a status, `|V_A| ≥ n/2`,
//! `|V_F| ≥ n/2`, and `|V_B| ≥ 1` hold forever.

use crate::{parallel_map, ExperimentOutput};
use pp_core::{Pll, Status};
use pp_engine::{Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::Table;

/// Runs the Lemma 4 invariant measurement.
pub fn run(quick: bool) -> ExperimentOutput {
    let ns: Vec<usize> = if quick {
        vec![64, 256]
    } else {
        vec![256, 1024, 4096]
    };
    let seeds: u64 = if quick { 5 } else { 20 };
    let checkpoints = 50u64;

    let seq = SeedSequence::new(44);
    let mut jobs = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((n, seq.seed_at(((ni as u64) << 32) | s)));
        }
    }

    // Each job returns (n, min |V_A|/n, min |V_F|/n, min |V_B|, assignment
    // parallel time).
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let pll = Pll::for_population(n).expect("n >= 2");
        let mut sim =
            Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
        let assign = sim.run_until(n as u64 / 4 + 1, u64::MAX, |sim| {
            sim.states().iter().all(|s| s.status != Status::X)
        });
        let assignment_time = assign.parallel_time(n);
        let mut min_a = f64::INFINITY;
        let mut min_f = f64::INFINITY;
        let mut min_b = usize::MAX;
        for _ in 0..checkpoints {
            sim.run(n as u64 / 2 + 1);
            let a = sim
                .states()
                .iter()
                .filter(|s| s.status == Status::A)
                .count();
            let b = sim
                .states()
                .iter()
                .filter(|s| s.status == Status::B)
                .count();
            let f = sim.states().iter().filter(|s| !s.leader).count();
            min_a = min_a.min(a as f64 / n as f64);
            min_f = min_f.min(f as f64 / n as f64);
            min_b = min_b.min(b);
        }
        (n, min_a, min_f, min_b, assignment_time)
    });

    let mut table = Table::new([
        "n",
        "min |V_A|/n (bound ≥ 0.5)",
        "min |V_F|/n (bound ≥ 0.5)",
        "min |V_B| (bound ≥ 1)",
        "status-assignment parallel time (mean)",
        "holds",
    ]);
    let mut all_hold = true;
    for &n in &ns {
        let rows: Vec<_> = outcomes.iter().filter(|o| o.0 == n).collect();
        let min_a = rows.iter().map(|o| o.1).fold(f64::INFINITY, f64::min);
        let min_f = rows.iter().map(|o| o.2).fold(f64::INFINITY, f64::min);
        let min_b = rows.iter().map(|o| o.3).min().unwrap_or(0);
        let assign = rows.iter().map(|o| o.4).sum::<f64>() / rows.len() as f64;
        let holds = min_a >= 0.5 && min_f >= 0.5 && min_b >= 1;
        all_hold &= holds;
        table.push_row([
            n.to_string(),
            format!("{min_a:.4}"),
            format!("{min_f:.4}"),
            min_b.to_string(),
            format!("{assign:.1}"),
            if holds { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let notes = vec![
        format!(
            "Minima taken over {seeds} seeds × {checkpoints} checkpoints per n, after every \
             agent left status X. Lemma 4: {}.",
            if all_hold {
                "CONFIRMED"
            } else {
                "VIOLATED — investigate"
            }
        ),
        "Status assignment itself completes in Θ(log n) parallel time (the last pristine \
         agent is found by a coupon-collector argument), visible in the last column."
            .to_string(),
        "The same invariants are enforced per-step by unit tests in `pp-core` and \
         exhaustively on small populations by `pp-verify` (workspace integration tests)."
            .to_string(),
    ];

    ExperimentOutput {
        id: "lemma4",
        title: "Lemma 4 — population split invariants",
        notes,
        tables: vec![("observed minima".to_string(), table)],
    }
}
