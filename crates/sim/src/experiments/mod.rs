//! One module per reproduced paper artifact; see the crate docs for the
//! index. Every module exposes `run(quick: bool) -> ExperimentOutput`.

pub mod ablation;
pub mod attribution;
pub mod lemma12;
pub mod lemma2;
pub mod lemma4;
pub mod lemma6;
pub mod lemma7;
pub mod lemma8;
pub mod scheduler;
pub mod symmetric;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod theorem1;

/// Formats a float with three significant decimals for table cells.
pub(crate) fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal for table cells.
pub(crate) fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a mean ± 95% CI pair.
pub(crate) fn mean_ci(s: &pp_stats::Summary) -> String {
    format!("{:.1} ± {:.1}", s.mean(), s.ci95())
}
