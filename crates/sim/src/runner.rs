//! Parallel execution of embarrassingly parallel experiment jobs.

use pp_engine::{LeaderElection, Simulation, UniformScheduler};
use pp_rand::SeedSequence;
use pp_stats::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every job on all available cores, preserving job order.
///
/// Results are deterministic: ordering does not depend on thread scheduling,
/// only on the job list (each job carries its own seed).
///
/// # Example
///
/// ```
/// use pp_sim::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = f(&jobs[i]);
                *results[i].lock().expect("worker never panics holding lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned locks")
                .expect("every job ran")
        })
        .collect()
}

/// One measured point of a stabilization-time sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Population size.
    pub n: usize,
    /// Parallel stabilization times across seeds.
    pub times: Summary,
    /// Number of runs that failed to converge within the step budget
    /// (should be zero for every protocol in this workspace).
    pub unconverged: u64,
}

/// Measures mean parallel stabilization time of a leader-election protocol
/// across population sizes, `seeds` runs per size, in parallel.
///
/// `make` builds the protocol for a given `n`; each run gets a distinct
/// deterministic seed derived from `master_seed`.
pub fn stabilization_sweep<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
) -> Vec<SweepPoint>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    let seq = SeedSequence::new(master_seed);
    for (ni, &n) in ns.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((n, seq.seed_at((ni as u64) << 32 | s)));
        }
    }
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let protocol = make(n);
        let scheduler = UniformScheduler::seed_from_u64(seed);
        let mut sim = Simulation::new(protocol, n, scheduler)
            .expect("population sizes are >= 2 by construction");
        let outcome = sim.run_until_single_leader(max_steps);
        (n, outcome.converged, outcome.parallel_time(n))
    });
    ns.iter()
        .map(|&n| {
            let mut times = Summary::new();
            let mut unconverged = 0;
            for &(jn, converged, t) in outcomes.iter().filter(|&&(jn, _, _)| jn == n) {
                debug_assert_eq!(jn, n);
                if converged {
                    times.push(t);
                } else {
                    unconverged += 1;
                }
            }
            SweepPoint {
                n,
                times,
                unconverged,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::Fratricide;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&jobs, |&x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let out: Vec<u64> = parallel_map(&[], |&x: &u64| x);
        assert!(out.is_empty());
        let out = parallel_map(&[7u64], |&x| x * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn sweep_is_deterministic_and_converges() {
        let ns = [16usize, 32];
        let a = stabilization_sweep(|_| Fratricide, &ns, 5, 42, u64::MAX);
        let b = stabilization_sweep(|_| Fratricide, &ns, 5, 42, u64::MAX);
        assert_eq!(a.len(), 2);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.n, pb.n);
            assert_eq!(pa.unconverged, 0);
            assert_eq!(pa.times.count(), 5);
            assert!((pa.times.mean() - pb.times.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_counts_unconverged_runs() {
        // A 1-step budget cannot elect among 16 leaders.
        let points = stabilization_sweep(|_| Fratricide, &[16], 4, 1, 1);
        assert_eq!(points[0].unconverged, 4);
        assert_eq!(points[0].times.count(), 0);
    }
}
