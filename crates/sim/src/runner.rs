//! Parallel execution of embarrassingly parallel experiment jobs.

use pp_engine::{CountSimulation, LeaderElection, Simulation, UniformScheduler};
use pp_rand::{SeedSequence, Xoshiro256PlusPlus};
use pp_stats::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every job on all available cores, preserving job order.
///
/// Results are deterministic: ordering does not depend on thread scheduling,
/// only on the job list (each job carries its own seed).
///
/// Workers claim job indices from a shared atomic counter and buffer
/// `(index, result)` pairs locally; the buffers are collected through each
/// worker's join handle and scattered into place — no locks anywhere, and no
/// synchronization on the results beyond the joins themselves.
///
/// # Panics
///
/// If `f` panics on any job, the panic propagates out of `parallel_map` (the
/// worker's join handle surfaces it; `std::thread::scope` re-raises panics of
/// scoped threads). Jobs already claimed by other workers still run to
/// completion first; their results are discarded.
///
/// # Example
///
/// ```
/// use pp_sim::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    results.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, f(&jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("a sweep worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job index was claimed exactly once"))
        .collect()
}

/// One measured point of a stabilization-time sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Population size.
    pub n: usize,
    /// Parallel stabilization times across seeds.
    pub times: Summary,
    /// Number of runs that failed to converge within the step budget
    /// (should be zero for every protocol in this workspace).
    pub unconverged: u64,
}

/// Measures mean parallel stabilization time of a leader-election protocol
/// across population sizes, `seeds` runs per size, in parallel.
///
/// `make` builds the protocol for a given `n`; each run gets a distinct
/// deterministic seed derived from `master_seed`. Seeds are derived from the
/// packed job index `(size_index << 32) | seed_index`, so `seeds` must stay
/// below `2^32` — far beyond any realistic sweep; asserted at entry rather
/// than silently reusing seed streams across sizes.
///
/// Runs on the exact count engine
/// ([`CountSimulation`]) — the compiled-pair fast path with the null-skipping
/// jump scheduler engaged wherever null interactions dominate — which
/// simulates the uniformly random scheduler exactly, so the measured
/// distribution is the same law as the per-agent engine's at a vanishing
/// fraction of the cost (a fratricide sweep point at `n = 2^28` telescopes
/// `~10^16` null interactions and completes in seconds). Use
/// [`stabilization_sweep_agents`] to drive the per-agent reference engine
/// instead (e.g. to cross-validate the engines against each other).
///
/// Repeated entries in `ns` are measured independently (each job range
/// aggregates into its own [`SweepPoint`]).
pub fn stabilization_sweep<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
) -> Vec<SweepPoint>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    sweep_impl(ns, seeds, master_seed, |n, seed| {
        let protocol = make(n);
        let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut sim = CountSimulation::new(protocol, n, rng)
            .expect("population sizes are >= 2 by construction");
        let outcome = sim.run_until_single_leader(max_steps);
        (outcome.converged, outcome.parallel_time(n))
    })
}

/// [`stabilization_sweep`] on the per-agent reference engine
/// ([`Simulation`] + [`UniformScheduler`]).
///
/// Slower and `O(n)` memory per run, but exercises the engine whose
/// semantics are the most direct reading of the model — useful when a sweep
/// doubles as an engine cross-check.
pub fn stabilization_sweep_agents<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
) -> Vec<SweepPoint>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    sweep_impl(ns, seeds, master_seed, |n, seed| {
        let protocol = make(n);
        let scheduler = UniformScheduler::seed_from_u64(seed);
        let mut sim = Simulation::new(protocol, n, scheduler)
            .expect("population sizes are >= 2 by construction");
        let outcome = sim.run_until_single_leader(max_steps);
        (outcome.converged, outcome.parallel_time(n))
    })
}

/// Builds a sweep's `(n, seed)` job list: `seeds` jobs per entry of `ns`, in
/// entry order, each job seeded from the packed index
/// `(size_index << 32) | seed_index` so every (size, run) pair draws an
/// independent deterministic stream.
///
/// # Panics
///
/// Panics when `seeds ≥ 2^32`: the packed index would silently collide the
/// seed streams of different sizes.
pub(crate) fn sweep_jobs(ns: &[usize], seeds: u64, master_seed: u64) -> Vec<(usize, u64)> {
    assert!(
        seeds < 1 << 32,
        "sweeps support at most 2^32 - 1 seeds per size (got {seeds})"
    );
    let seq = SeedSequence::new(master_seed);
    let mut jobs = Vec::with_capacity(ns.len() * seeds as usize);
    for (ni, &n) in ns.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((n, seq.seed_at((ni as u64) << 32 | s)));
        }
    }
    jobs
}

fn sweep_impl<R>(ns: &[usize], seeds: u64, master_seed: u64, run: R) -> Vec<SweepPoint>
where
    R: Fn(usize, u64) -> (bool, f64) + Sync,
{
    let jobs = sweep_jobs(ns, seeds, master_seed);
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let (converged, t) = run(n, seed);
        (converged, t)
    });
    // Aggregate by contiguous job range, not by population-size value: a
    // repeated n in `ns` must yield independent points instead of
    // double-counting every run of that size into each of them.
    ns.iter()
        .enumerate()
        .map(|(ni, &n)| {
            let mut times = Summary::new();
            let mut unconverged = 0;
            let range = ni * seeds as usize..(ni + 1) * seeds as usize;
            for &(converged, t) in &outcomes[range] {
                if converged {
                    times.push(t);
                } else {
                    unconverged += 1;
                }
            }
            SweepPoint {
                n,
                times,
                unconverged,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::Fratricide;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&jobs, |&x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn parallel_map_propagates_worker_panics() {
        // A panicking job must surface in the caller (via the worker's join
        // handle), not silently poison a result slot.
        let jobs: Vec<u64> = (0..64).collect();
        parallel_map(&jobs, |&x| {
            assert!(x != 13, "unlucky job");
            x
        });
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let out: Vec<u64> = parallel_map(&[], |&x: &u64| x);
        assert!(out.is_empty());
        let out = parallel_map(&[7u64], |&x| x * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn sweep_is_deterministic_and_converges() {
        let ns = [16usize, 32];
        let a = stabilization_sweep(|_| Fratricide, &ns, 5, 42, u64::MAX);
        let b = stabilization_sweep(|_| Fratricide, &ns, 5, 42, u64::MAX);
        assert_eq!(a.len(), 2);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.n, pb.n);
            assert_eq!(pa.unconverged, 0);
            assert_eq!(pa.times.count(), 5);
            assert!((pa.times.mean() - pb.times.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_sweeps_agree_distributionally() {
        // The count-engine sweep and the agent-engine sweep sample the same
        // Markov chain: over enough seeds their means must agree loosely
        // (fratricide at n=32 has E[parallel time] ≈ n).
        let ns = [32usize];
        let fast = stabilization_sweep(|_| Fratricide, &ns, 24, 7, u64::MAX);
        let slow = stabilization_sweep_agents(|_| Fratricide, &ns, 24, 7, u64::MAX);
        assert_eq!(fast[0].unconverged, 0);
        assert_eq!(slow[0].unconverged, 0);
        let (a, b) = (fast[0].times.mean(), slow[0].times.mean());
        assert!((a / b - 1.0).abs() < 0.5, "count {a} vs agent {b}");
    }

    #[test]
    fn sweep_counts_unconverged_runs() {
        // A 1-step budget cannot elect among 16 leaders.
        let points = stabilization_sweep(|_| Fratricide, &[16], 4, 1, 1);
        assert_eq!(points[0].unconverged, 4);
        assert_eq!(points[0].times.count(), 0);
    }

    #[test]
    fn repeated_sizes_aggregate_into_independent_points() {
        // Regression: aggregation used to filter outcomes by the size
        // *value*, so ns = [8, 8] double-counted every run of that size
        // into both points (2 × seeds observations each). Each point must
        // hold exactly its own seeds — and distinct ones, since job seeds
        // derive from the packed (size index, seed index).
        let seeds = 6;
        let points = stabilization_sweep(|_| Fratricide, &[8, 8], seeds, 99, u64::MAX);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.n, 8);
            assert_eq!(p.times.count() + p.unconverged, seeds);
        }
        // Different seed blocks: equality of the two means would be a
        // (astronomically unlikely) coincidence.
        assert!(
            (points[0].times.mean() - points[1].times.mean()).abs() > 1e-9,
            "repeated sizes appear to share seed streams"
        );
    }

    #[test]
    fn sweep_rides_the_jump_scheduler_at_scale() {
        // 2^14 fratricide takes Θ(n²) ≈ 2.7e8 interactions per run — hours
        // of debug-build stepping without the jump scheduler, milliseconds
        // with it. Completing at all (under an effectively unbounded budget)
        // is the assertion.
        let points = stabilization_sweep(|_| Fratricide, &[1 << 14], 2, 5, u64::MAX);
        assert_eq!(points[0].unconverged, 0);
        assert_eq!(points[0].times.count(), 2);
        // E[parallel time] ≈ n for fratricide.
        let mean = points[0].times.mean();
        let n = (1 << 14) as f64;
        assert!(
            (mean / n - 1.0).abs() < 0.5,
            "mean parallel time {mean} far from the Θ(n) law at n = {n}"
        );
    }
}
