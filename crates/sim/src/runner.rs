//! Parallel execution of embarrassingly parallel experiment jobs.
//!
//! Two levels of parallelism compose here: [`parallel_map`] fans jobs out
//! across worker **threads**, and [`stabilization_sweep`] packs same-`n`
//! seeds into wide **lane bundles** (one [`WideSimulation`] advancing many
//! seeds in lockstep through a shared pair cache) so each thread's job
//! amortizes compilation, tier reviews, and sampling across its whole
//! bundle. Both knobs have env overrides for reproducible benchmarking:
//! `PP_SIM_THREADS` pins the worker count and `PP_SIM_LANES` the lanes per
//! bundle. A third override, `PP_SIM_LAW`, selects the batch tier's
//! [round law](pp_engine::LawMode) (`sequence` / `contingency` /
//! `multiround`) for every engine a sweep constructs — law-equivalent
//! execution modes, so measured distributions agree while RNG streams (and
//! throughput) differ.

use pp_engine::{
    CountSimulation, EngineConfig, LawMode, LeaderElection, RunOutcome, Simulation,
    UniformScheduler, WideSimulation, WideTierPolicy,
};
use pp_rand::{SeedSequence, Xoshiro256PlusPlus};
use pp_stats::Summary;
use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on the `PP_SIM_THREADS` override (clamped, `EngineConfig`
/// style, rather than erroring).
const MAX_WORKERS: usize = 1024;

/// Hard cap on the `PP_SIM_LANES` override.
const MAX_LANES: usize = 64;

/// Default lanes per wide sweep bundle. Eight keeps the SoA count rows
/// within one cache line while the per-seed win from sharing the pair
/// cache and amortizing reviews has already saturated.
const DEFAULT_LANES: usize = 8;

/// `PP_SIM_THREADS` resolution: a parseable override is clamped to
/// `1..=MAX_WORKERS` (validation in the `EngineConfig::validated` style —
/// out-of-range values clamp, they don't error); anything else falls back
/// to the detected parallelism.
fn worker_override(raw: Option<&str>, detected: usize) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(v) => v.clamp(1, MAX_WORKERS),
        None => detected.clamp(1, MAX_WORKERS),
    }
}

/// Worker threads for `jobs` jobs: the `PP_SIM_THREADS` override if set,
/// else [`std::thread::available_parallelism`], never more than the jobs.
pub(crate) fn worker_count(jobs: usize) -> usize {
    let detected = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = std::env::var("PP_SIM_THREADS");
    worker_override(threads.as_deref().ok(), detected).min(jobs.max(1))
}

/// `PP_SIM_LANES` resolution: parseable overrides clamp to
/// `1..=MAX_LANES`; anything else is the default width.
fn lane_override(raw: Option<&str>) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(v) => v.clamp(1, MAX_LANES),
        None => DEFAULT_LANES,
    }
}

/// Lanes per wide sweep bundle: the `PP_SIM_LANES` override (clamped to
/// `1..=64`), default 8.
pub fn sweep_lane_width() -> usize {
    let lanes = std::env::var("PP_SIM_LANES");
    lane_override(lanes.as_deref().ok())
}

/// `PP_SIM_LAW` resolution: a recognized round-law name selects that law;
/// anything else (including absence) falls back to the bit-identical
/// default, mirroring how [`lane_override`] treats garbage.
fn law_override(raw: Option<&str>) -> LawMode {
    match raw.map(str::trim) {
        Some("sequence") => LawMode::SequenceExpansion,
        Some("contingency") => LawMode::Contingency,
        Some("multiround") => LawMode::MultiRound,
        _ => LawMode::default(),
    }
}

/// Batch-tier round law for every engine a sweep constructs: the
/// `PP_SIM_LAW` override (`sequence` / `contingency` / `multiround`),
/// default [`LawMode::SequenceExpansion`].
pub fn sweep_law_mode() -> LawMode {
    let law = std::env::var("PP_SIM_LAW");
    law_override(law.as_deref().ok())
}

/// Whether [`parallel_map`] should report live progress: stderr is a
/// terminal and `PP_SIM_PROGRESS` is not `0`.
fn progress_enabled(jobs: usize) -> bool {
    jobs > 1
        && std::io::stderr().is_terminal()
        && std::env::var("PP_SIM_PROGRESS").map_or(true, |v| v != "0")
}

/// Throughput and progress aggregate of one [`parallel_map`] fan-out,
/// recorded when rollup collection is enabled (see
/// [`enable_sweep_rollup`]). One rollup per `parallel_map` call — a
/// sweep's experiment typically accumulates several.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRollup {
    /// Jobs the fan-out executed.
    pub jobs: u64,
    /// Worker threads it ran on.
    pub workers: u64,
    /// Wall-clock duration of the whole fan-out.
    pub wall_seconds: f64,
    /// `jobs / wall_seconds` (0 when the fan-out was instantaneous).
    pub jobs_per_second: f64,
    /// OS process that ran the fan-out. With the multi-process sweep fabric
    /// a grid's fan-outs span several worker processes; the pid is what lets
    /// a metrics consumer group per-process rows before summing throughput
    /// across them.
    pub pid: u32,
    /// Sweep-fabric shard identity ([`set_sweep_shard`]), `None` outside
    /// `ppsweep` worker mode.
    pub shard: Option<u64>,
}

impl SweepRollup {
    /// Serializes the rollup as one JSON object (hand-rolled; the
    /// workspace takes no serde dependency). `shard` is `null` outside
    /// fabric worker mode.
    pub fn to_json(&self) -> String {
        let shard = self
            .shard
            .map_or_else(|| "null".to_string(), |s| s.to_string());
        format!(
            "{{\"jobs\":{},\"workers\":{},\"wall_seconds\":{},\"jobs_per_second\":{},\
             \"pid\":{},\"shard\":{shard}}}",
            self.jobs, self.workers, self.wall_seconds, self.jobs_per_second, self.pid
        )
    }
}

static ROLLUPS: OnceLock<Mutex<Vec<SweepRollup>>> = OnceLock::new();
static ROLLUP_ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-global shard identity for rollups: `-1` encodes `None` (shard
/// ids are far below `i64::MAX` — the fabric caps shard counts at 4096).
static SWEEP_SHARD: AtomicI64 = AtomicI64::new(-1);

/// Declares which sweep-fabric shard this process is (or `None` to clear);
/// every subsequent [`SweepRollup`] carries it. Called once at `ppsweep`
/// worker startup so `--metrics-out`-style reports can attribute fan-outs
/// to shards when aggregating cross-process throughput.
pub fn set_sweep_shard(shard: Option<u64>) {
    let encoded = shard.map_or(-1, |s| i64::try_from(s).expect("shard ids are small"));
    SWEEP_SHARD.store(encoded, Ordering::Release);
}

/// The shard identity declared by [`set_sweep_shard`], if any.
pub fn sweep_shard() -> Option<u64> {
    match SWEEP_SHARD.load(Ordering::Acquire) {
        -1 => None,
        s => Some(s as u64),
    }
}

/// Turns on process-wide rollup collection: every subsequent
/// [`parallel_map`] records a [`SweepRollup`] retrievable with
/// [`take_sweep_rollups`]. Collection is off by default — the recorder
/// costs one relaxed atomic load per fan-out when disabled.
pub fn enable_sweep_rollup() {
    ROLLUP_ENABLED.store(true, Ordering::Release);
}

/// Drains and returns every rollup recorded since the last call (empty
/// when collection was never enabled).
pub fn take_sweep_rollups() -> Vec<SweepRollup> {
    ROLLUPS
        .get()
        .map(|m| std::mem::take(&mut *m.lock().expect("rollup lock poisoned")))
        .unwrap_or_default()
}

fn record_rollup(rollup: SweepRollup) {
    ROLLUPS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("rollup lock poisoned")
        .push(rollup);
}

/// Records a rollup on behalf of a fan-out that drives its own worker
/// threads instead of going through [`parallel_map`] (the sweep fabric's
/// claim loop). No-op unless collection is enabled, like the inline
/// recorder.
pub(crate) fn record_fanout_rollup(jobs: u64, workers: u64, wall_seconds: f64) {
    if !ROLLUP_ENABLED.load(Ordering::Acquire) {
        return;
    }
    record_rollup(SweepRollup {
        jobs,
        workers,
        wall_seconds,
        jobs_per_second: if wall_seconds > 0.0 {
            jobs as f64 / wall_seconds
        } else {
            0.0
        },
        pid: std::process::id(),
        shard: sweep_shard(),
    });
}

/// Progress-line ETA suffix, based on the **completed-job** rate.
///
/// Sweep job laws are heavy-tailed (stabilization time is a random variable
/// with a long upper tail), so a linear extrapolation can mislead in a
/// specific way: late in a fan-out most remaining "work" is a handful of
/// claimed-but-unfinished stragglers whose cost the completed-job average
/// does not represent. The estimate itself stays the completed-rate
/// extrapolation — anything cleverer would be guessing — but when the
/// claimed-but-unfinished jobs make up at least half of what remains, the
/// line shows a visible `≥` qualifier: the stragglers already in flight put
/// a floor, not a ceiling, on the time left. Empty until the first job
/// completes (there is no completed rate to extrapolate from).
pub(crate) fn eta_suffix(done: usize, claimed: usize, total: usize, elapsed_secs: f64) -> String {
    if done == 0 || done >= total {
        return String::new();
    }
    let rate = done as f64 / elapsed_secs.max(1e-9);
    let remaining = total - done;
    let in_flight = claimed.saturating_sub(done).min(remaining);
    let qualifier = if 2 * in_flight >= remaining {
        "\u{2265} "
    } else {
        ""
    };
    format!(", eta {qualifier}{:.0}s", remaining as f64 / rate.max(1e-9))
}

/// Sets the flag on drop, so the progress monitor stops even when a worker
/// panic unwinds the scope.
struct StopOnDrop<'a>(&'a AtomicBool);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Applies `f` to every job on all available cores, preserving job order.
///
/// Results are deterministic: ordering does not depend on thread scheduling,
/// only on the job list (each job carries its own seed).
///
/// Workers claim job indices from a shared atomic counter and buffer
/// `(index, result)` pairs locally; the buffers are collected through each
/// worker's join handle and scattered into place — no locks anywhere, and no
/// synchronization on the results beyond the joins themselves.
///
/// The worker count is [`std::thread::available_parallelism`], overridable
/// through `PP_SIM_THREADS` (clamped to `1..=1024`) so bench and CI runs can
/// pin it for reproducible throughput numbers. When stderr is a terminal a
/// monitor thread repaints a `claimed/done` progress line a few times a
/// second (suppressed with `PP_SIM_PROGRESS=0`, and entirely absent when
/// output is piped — progress never lands in redirected logs).
///
/// # Panics
///
/// If `f` panics on any job, the panic propagates out of `parallel_map` (the
/// worker's join handle surfaces it; `std::thread::scope` re-raises panics of
/// scoped threads). Jobs already claimed by other workers still run to
/// completion first; their results are discarded.
///
/// # Example
///
/// ```
/// use pp_sim::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count(jobs.len());
    let total = jobs.len();
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut results: Vec<Option<R>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    std::thread::scope(|scope| {
        let _stop_guard = StopOnDrop(&stop);
        if progress_enabled(total) {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let claimed = next.load(Ordering::Relaxed).min(total);
                    let done = finished.load(Ordering::Relaxed);
                    let eta = eta_suffix(done, claimed, total, started.elapsed().as_secs_f64());
                    eprint!("\r  sweep: {done}/{total} jobs done, {claimed} claimed{eta}");
                    let _ = std::io::stderr().flush();
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
                // Clear the line so the next stderr write starts clean.
                eprint!("\r{:64}\r", "");
                let _ = std::io::stderr().flush();
            });
        }
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        local.push((i, f(&jobs[i])));
                        finished.fetch_add(1, Ordering::Relaxed);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("a sweep worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    if ROLLUP_ENABLED.load(Ordering::Acquire) {
        let wall = started.elapsed().as_secs_f64();
        record_rollup(SweepRollup {
            jobs: total as u64,
            workers: workers as u64,
            wall_seconds: wall,
            jobs_per_second: if wall > 0.0 { total as f64 / wall } else { 0.0 },
            pid: std::process::id(),
            shard: sweep_shard(),
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every job index was claimed exactly once"))
        .collect()
}

/// One measured point of a stabilization-time sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Population size.
    pub n: usize,
    /// Parallel stabilization times across seeds.
    pub times: Summary,
    /// Number of runs that failed to converge within the step budget
    /// (should be zero for every protocol in this workspace).
    pub unconverged: u64,
}

/// Measures mean parallel stabilization time of a leader-election protocol
/// across population sizes, `seeds` runs per size, in parallel.
///
/// `make` builds the protocol for a given `n`; each run gets a distinct
/// deterministic seed derived from `master_seed`. Seeds are derived from the
/// packed job index `(size_index << 32) | seed_index`, so `seeds` must stay
/// below `2^32` — far beyond any realistic sweep; asserted at entry rather
/// than silently reusing seed streams across sizes.
///
/// Each [`parallel_map`] worker receives a **lane bundle** — up to
/// [`sweep_lane_width`] same-`n` seeds advanced in lockstep by one
/// [`WideSimulation`] through a shared compiled pair cache (threads ×
/// lanes composition; `PP_SIM_LANES` overrides the width). Lanes the wide
/// engine spills out of its null-dominated tail finish on a scalar
/// [`CountSimulation`] continuation, whose jump scheduler telescopes the
/// nulls (a fratricide sweep point at `n = 2^28` telescopes `~10^16` null
/// interactions and completes in seconds). Every lane is an exact
/// simulation of the uniformly random scheduler, so the measured
/// distribution is the same law as the per-agent engine's at a vanishing
/// fraction of the cost; results are deterministic for a fixed
/// `(master_seed, width)` but — like the engine's own heuristic tiers —
/// not bit-comparable across different widths. Use
/// [`stabilization_sweep_agents`] to drive the per-agent reference engine
/// instead (e.g. to cross-validate the engines against each other).
///
/// Repeated entries in `ns` are measured independently (each job range
/// aggregates into its own [`SweepPoint`]).
pub fn stabilization_sweep<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
) -> Vec<SweepPoint>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    stabilization_sweep_wide(make, ns, seeds, master_seed, max_steps, sweep_lane_width())
}

/// [`stabilization_sweep`] with an explicit lane-bundle width (ignoring
/// `PP_SIM_LANES`), for callers pinning reproducible bundle compositions.
pub fn stabilization_sweep_wide<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
    lanes: usize,
) -> Vec<SweepPoint>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    let flat = sweep_flat_wide(&make, ns, seeds, master_seed, max_steps, lanes);
    aggregate_points(ns, seeds, &flat)
}

/// Cost-model ordering of a bundle fan-out: indices into `bundles`,
/// most-expensive-first.
///
/// Per-bundle cost is monotone in `n` for every protocol in this workspace
/// (the power-law fits recorded in `BENCH_engine.json` and table 1's
/// scaling exponents all have positive slope: even the `O(log n)`-time
/// protocols cost `Ω(n)` work per seed since steps scale as `n · time`), so
/// largest-`n`-first **is** the fitted-cost order — no per-protocol rate
/// table needed for ordering to be correct, only monotonicity. The sort is
/// stable, so same-`n` bundles keep job order.
///
/// Why ordering matters: stabilization times are heavy-tailed per seed, and
/// a mixed-`n` grid's biggest bundles dominate the makespan. A FIFO
/// fan-out can hand a worker a largest-`n` bundle *last*, leaving every
/// other worker idle behind it; scheduling the expensive work first bounds
/// that idle tail by the cheapest bundle's cost instead of the dearest's
/// (classic LPT scheduling). Results are scattered back by bundle start
/// index, so observable output is unchanged.
pub(crate) fn cost_order(bundles: &[SweepBundle]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..bundles.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(bundles[i].n));
    order
}

/// Job-ordered flat `(converged, parallel_time)` outcomes of a wide sweep:
/// the shared core of [`stabilization_sweep_wide`] and the sweep fabric's
/// sequential mode. Bundles fan out largest-`n`-first ([`cost_order`]) and
/// results scatter back by bundle start, so the returned order — and every
/// bit of every result — is independent of the scheduling.
pub(crate) fn sweep_flat_wide<P, F>(
    make: &F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
    lanes: usize,
) -> Vec<(bool, f64)>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    let bundles = sweep_bundles(ns, seeds, master_seed, lanes);
    let law = sweep_law_mode();
    let order = cost_order(&bundles);
    let ordered: Vec<&SweepBundle> = order.iter().map(|&i| &bundles[i]).collect();
    let outcomes = parallel_map(&ordered, |bundle| {
        (
            bundle.start,
            run_bundle(make, bundle.n, &bundle.seeds, max_steps, law),
        )
    });
    // Scatter each bundle's lane results back into flat job order (the
    // aggregation slices by contiguous job range).
    let total: usize = bundles.iter().map(|b| b.seeds.len()).sum();
    let mut flat: Vec<Option<(bool, f64)>> = vec![None; total];
    for (start, results) in outcomes {
        for (k, r) in results.into_iter().enumerate() {
            flat[start + k] = Some(r);
        }
    }
    flat.into_iter()
        .map(|r| r.expect("bundles partition the job list"))
        .collect()
}

/// [`stabilization_sweep`] on the per-agent reference engine
/// ([`Simulation`] + [`UniformScheduler`]).
///
/// Slower and `O(n)` memory per run, but exercises the engine whose
/// semantics are the most direct reading of the model — useful when a sweep
/// doubles as an engine cross-check.
pub fn stabilization_sweep_agents<P, F>(
    make: F,
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    max_steps: u64,
) -> Vec<SweepPoint>
where
    P: LeaderElection,
    F: Fn(usize) -> P + Sync,
{
    sweep_impl(ns, seeds, master_seed, |n, seed| {
        let protocol = make(n);
        let scheduler = UniformScheduler::seed_from_u64(seed);
        let mut sim = Simulation::new(protocol, n, scheduler)
            .expect("population sizes are >= 2 by construction");
        let outcome = sim.run_until_single_leader(max_steps);
        (outcome.converged, outcome.parallel_time(n))
    })
}

/// Builds a sweep's `(n, seed)` job list: `seeds` jobs per entry of `ns`, in
/// entry order, each job seeded from the packed index
/// `(size_index << 32) | seed_index` so every (size, run) pair draws an
/// independent deterministic stream.
///
/// # Panics
///
/// Panics when `seeds ≥ 2^32`: the packed index would silently collide the
/// seed streams of different sizes.
pub(crate) fn sweep_jobs(ns: &[usize], seeds: u64, master_seed: u64) -> Vec<(usize, u64)> {
    assert!(
        seeds < 1 << 32,
        "sweeps support at most 2^32 - 1 seeds per size (got {seeds})"
    );
    let seq = SeedSequence::new(master_seed);
    let mut jobs = Vec::with_capacity(ns.len() * seeds as usize);
    for (ni, &n) in ns.iter().enumerate() {
        for s in 0..seeds {
            jobs.push((n, seq.seed_at((ni as u64) << 32 | s)));
        }
    }
    jobs
}

/// One wide sweep job: a contiguous block of same-`n` seed-stream jobs,
/// advanced in lockstep by a single [`WideSimulation`].
#[derive(Debug, Clone)]
pub(crate) struct SweepBundle {
    /// Population size shared by every lane.
    pub n: usize,
    /// Flat job index of the bundle's first lane (the aggregation order).
    pub start: usize,
    /// Per-lane RNG seeds, in job order.
    pub seeds: Vec<u64>,
}

/// Partitions the flat job list of [`sweep_jobs`] into lane bundles of up
/// to `lanes` same-`n` jobs. Bundles never span two entries of `ns` (each
/// size's seed range chunks independently), so aggregation ranges stay
/// contiguous.
pub(crate) fn sweep_bundles(
    ns: &[usize],
    seeds: u64,
    master_seed: u64,
    lanes: usize,
) -> Vec<SweepBundle> {
    let lanes = lanes.clamp(1, MAX_LANES);
    let jobs = sweep_jobs(ns, seeds, master_seed);
    let per_size = seeds as usize;
    let mut bundles = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        let base = ni * per_size;
        let mut offset = 0;
        while offset < per_size {
            let width = lanes.min(per_size - offset);
            let start = base + offset;
            bundles.push(SweepBundle {
                n,
                start,
                seeds: jobs[start..start + width]
                    .iter()
                    .map(|&(_, seed)| seed)
                    .collect(),
            });
            offset += width;
        }
    }
    bundles
}

/// Runs one lane bundle to stabilization: a wide auto-policy election,
/// with spilled (null-dominated) lanes finished on scalar
/// [`CountSimulation`] continuations that inherit the lane's exact counts,
/// RNG, and step counter. Both the wide engine and the continuations draw
/// their batch rounds from `law`. Returns `(converged, parallel_time)` per
/// lane in job order.
pub(crate) fn run_bundle<P, F>(
    make: &F,
    n: usize,
    seeds: &[u64],
    max_steps: u64,
    law: LawMode,
) -> Vec<(bool, f64)>
where
    P: LeaderElection,
    F: Fn(usize) -> P,
{
    let config = EngineConfig {
        law_mode: law,
        ..EngineConfig::default()
    };
    let rngs = seeds
        .iter()
        .map(|&seed| Xoshiro256PlusPlus::seed_from_u64(seed))
        .collect();
    let mut wide = WideSimulation::with_config(make(n), n, rngs, config, WideTierPolicy::Auto)
        .expect("population sizes are >= 2 by construction");
    let election = wide.run_until_single_leader(max_steps);
    let mut results: Vec<Option<(bool, f64)>> = election
        .outcomes
        .iter()
        .map(|outcome| outcome.map(|o| (o.converged, o.parallel_time(n))))
        .collect();
    for export in election.spilled {
        let lane = export.index;
        let start = export.steps;
        let mut scalar =
            CountSimulation::from_counts_with_config(make(n), export.counts, export.rng, config)
                .expect("spilled lanes keep their full population");
        let out = scalar.run_until_single_leader(max_steps - start);
        let total = RunOutcome {
            steps: start + out.steps,
            converged: out.converged,
        };
        results[lane] = Some((total.converged, total.parallel_time(n)));
    }
    results
        .into_iter()
        .map(|r| r.expect("every lane is finished or spilled"))
        .collect()
}

/// Aggregates flat per-job outcomes into one [`SweepPoint`] per entry of
/// `ns`, by contiguous job range, not by population-size value: a repeated
/// n in `ns` must yield independent points instead of double-counting
/// every run of that size into each of them.
pub(crate) fn aggregate_points(
    ns: &[usize],
    seeds: u64,
    outcomes: &[(bool, f64)],
) -> Vec<SweepPoint> {
    ns.iter()
        .enumerate()
        .map(|(ni, &n)| {
            let mut times = Summary::new();
            let mut unconverged = 0;
            let range = ni * seeds as usize..(ni + 1) * seeds as usize;
            for &(converged, t) in &outcomes[range] {
                if converged {
                    times.push(t);
                } else {
                    unconverged += 1;
                }
            }
            SweepPoint {
                n,
                times,
                unconverged,
            }
        })
        .collect()
}

fn sweep_impl<R>(ns: &[usize], seeds: u64, master_seed: u64, run: R) -> Vec<SweepPoint>
where
    R: Fn(usize, u64) -> (bool, f64) + Sync,
{
    let jobs = sweep_jobs(ns, seeds, master_seed);
    let outcomes = parallel_map(&jobs, |&(n, seed)| {
        let (converged, t) = run(n, seed);
        (converged, t)
    });
    aggregate_points(ns, seeds, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::Fratricide;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&jobs, |&x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn parallel_map_propagates_worker_panics() {
        // A panicking job must surface in the caller (via the worker's join
        // handle), not silently poison a result slot.
        let jobs: Vec<u64> = (0..64).collect();
        parallel_map(&jobs, |&x| {
            assert!(x != 13, "unlucky job");
            x
        });
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let out: Vec<u64> = parallel_map(&[], |&x: &u64| x);
        assert!(out.is_empty());
        let out = parallel_map(&[7u64], |&x| x * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn rollups_record_fanout_throughput() {
        // The flag is process-global, so concurrent tests may add rollups
        // of their own; assert ours is among the drained set.
        enable_sweep_rollup();
        let jobs: Vec<u64> = (0..137).collect();
        let _ = parallel_map(&jobs, |&x| x);
        let rollups = take_sweep_rollups();
        let ours = rollups
            .iter()
            .find(|r| r.jobs == 137)
            .expect("the fan-out recorded a rollup");
        assert!(ours.workers >= 1);
        assert!(ours.wall_seconds >= 0.0);
        assert!(ours.jobs_per_second > 0.0);
        let json = ours.to_json();
        assert!(json.contains("\"jobs\":137"), "{json}");
    }

    #[test]
    fn rollup_json_carries_process_and_shard_identity() {
        let mut rollup = SweepRollup {
            jobs: 4,
            workers: 2,
            wall_seconds: 2.0,
            jobs_per_second: 2.0,
            pid: 7,
            shard: None,
        };
        let json = rollup.to_json();
        assert!(json.contains("\"pid\":7"), "{json}");
        assert!(json.contains("\"shard\":null"), "{json}");
        rollup.shard = Some(3);
        let json = rollup.to_json();
        assert!(json.contains("\"shard\":3"), "{json}");
    }

    #[test]
    fn eta_suffix_qualifies_straggler_dominated_estimates() {
        // No completed jobs yet, or nothing left: no estimate.
        assert_eq!(eta_suffix(0, 4, 10, 1.0), "");
        assert_eq!(eta_suffix(10, 10, 10, 1.0), "");
        // Completed-rate extrapolation: 5 done in 5 s → 1 job/s, 5 remain.
        // Nothing claimed beyond the finished jobs — plain estimate.
        assert_eq!(eta_suffix(5, 5, 10, 5.0), ", eta 5s");
        // In-flight stragglers below half the remainder — still plain.
        assert_eq!(eta_suffix(5, 7, 10, 5.0), ", eta 5s");
        // Claimed-but-unfinished ≥ half of what remains: the extrapolation
        // is a floor, and the line must say so.
        assert_eq!(eta_suffix(5, 9, 10, 5.0), ", eta \u{2265} 5s");
        assert_eq!(eta_suffix(2, 10, 10, 4.0), ", eta \u{2265} 16s");
    }

    #[test]
    fn cost_order_is_largest_n_first_and_stable() {
        // ns deliberately not sorted: 5 seeds at width 2 → bundles
        // [2, 2, 1] per size, and the order must pick every n = 64 bundle
        // first while preserving job order within each size.
        let bundles = sweep_bundles(&[16, 64, 32], 5, 3, 2);
        let order = cost_order(&bundles);
        let ns: Vec<usize> = order.iter().map(|&i| bundles[i].n).collect();
        assert_eq!(ns, vec![64, 64, 64, 32, 32, 32, 16, 16, 16]);
        let starts: Vec<usize> = order.iter().map(|&i| bundles[i].start).collect();
        assert_eq!(starts, vec![5, 7, 9, 10, 12, 14, 0, 2, 4]);
    }

    #[test]
    fn largest_n_first_scheduling_keeps_results_in_job_order() {
        // The scheduled sweep must scatter back to exactly the flat
        // job-order results of a plain bundle-by-bundle traversal — same
        // order, same bits.
        let ns = [32usize, 16];
        let law = sweep_law_mode();
        let flat = sweep_flat_wide(&|_| Fratricide, &ns, 5, 42, u64::MAX, 2);
        let bundles = sweep_bundles(&ns, 5, 42, 2);
        let expected: Vec<(bool, f64)> = bundles
            .iter()
            .flat_map(|b| run_bundle(&|_| Fratricide, b.n, &b.seeds, u64::MAX, law))
            .collect();
        assert_eq!(flat.len(), expected.len());
        for (a, b) in flat.iter().zip(&expected) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn worker_override_clamps_like_engine_config() {
        // Parseable values clamp into 1..=MAX_WORKERS; garbage and absence
        // fall back to the detected parallelism (itself clamped).
        assert_eq!(worker_override(Some("4"), 8), 4);
        assert_eq!(worker_override(Some(" 12 "), 8), 12);
        assert_eq!(worker_override(Some("0"), 8), 1);
        assert_eq!(worker_override(Some("9999999"), 8), MAX_WORKERS);
        assert_eq!(worker_override(Some("two"), 8), 8);
        assert_eq!(worker_override(Some(""), 8), 8);
        assert_eq!(worker_override(None, 8), 8);
        assert_eq!(worker_override(None, 0), 1);
    }

    #[test]
    fn lane_override_clamps_like_engine_config() {
        assert_eq!(lane_override(Some("4")), 4);
        assert_eq!(lane_override(Some("0")), 1);
        assert_eq!(lane_override(Some("500")), MAX_LANES);
        assert_eq!(lane_override(Some("wide")), DEFAULT_LANES);
        assert_eq!(lane_override(None), DEFAULT_LANES);
    }

    #[test]
    fn law_override_recognizes_round_laws() {
        assert_eq!(law_override(Some("sequence")), LawMode::SequenceExpansion);
        assert_eq!(law_override(Some(" contingency ")), LawMode::Contingency);
        assert_eq!(law_override(Some("multiround")), LawMode::MultiRound);
        // Garbage and absence fall back to the bit-identical default.
        assert_eq!(law_override(Some("hypergeometric")), LawMode::default());
        assert_eq!(law_override(Some("")), LawMode::default());
        assert_eq!(law_override(None), LawMode::default());
    }

    #[test]
    fn round_laws_agree_distributionally_in_sweeps() {
        // The round law, like lane width, is a law-preserving execution
        // knob: bundles run under each law draw differently but must sample
        // the same stabilization-time distribution (pinned tightly by the
        // chi-square suites; this is the sweep-level smoke check).
        let ns = [32usize];
        let bundles = sweep_bundles(&ns, 24, 7, 6);
        let mut means = Vec::new();
        for law in [
            LawMode::SequenceExpansion,
            LawMode::Contingency,
            LawMode::MultiRound,
        ] {
            let flat: Vec<(bool, f64)> = bundles
                .iter()
                .flat_map(|b| run_bundle(&|_| Fratricide, b.n, &b.seeds, u64::MAX, law))
                .collect();
            let points = aggregate_points(&ns, 24, &flat);
            assert_eq!(points[0].unconverged, 0, "{law} runs failed to converge");
            means.push(points[0].times.mean());
        }
        for pair in means.windows(2) {
            assert!(
                (pair[0] / pair[1] - 1.0).abs() < 0.5,
                "law means diverge: {means:?}"
            );
        }
    }

    #[test]
    fn sweep_bundles_partition_the_job_list() {
        // 5 seeds at width 2 → [2, 2, 1] per size; bundles never span
        // sizes, starts are the flat job indices, seeds match sweep_jobs.
        let ns = [16usize, 32];
        let (seeds, master) = (5u64, 3u64);
        let jobs = sweep_jobs(&ns, seeds, master);
        let bundles = sweep_bundles(&ns, seeds, master, 2);
        assert_eq!(bundles.len(), 6);
        let widths: Vec<usize> = bundles.iter().map(|b| b.seeds.len()).collect();
        assert_eq!(widths, vec![2, 2, 1, 2, 2, 1]);
        let mut flat = 0;
        for bundle in &bundles {
            assert_eq!(bundle.start, flat);
            for (k, &seed) in bundle.seeds.iter().enumerate() {
                assert_eq!((bundle.n, seed), jobs[flat + k]);
            }
            flat += bundle.seeds.len();
        }
        assert_eq!(flat, jobs.len());
    }

    #[test]
    fn sweep_is_deterministic_and_converges() {
        let ns = [16usize, 32];
        let a = stabilization_sweep(|_| Fratricide, &ns, 5, 42, u64::MAX);
        let b = stabilization_sweep(|_| Fratricide, &ns, 5, 42, u64::MAX);
        assert_eq!(a.len(), 2);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.n, pb.n);
            assert_eq!(pa.unconverged, 0);
            assert_eq!(pa.times.count(), 5);
            assert!((pa.times.mean() - pb.times.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_sweeps_agree_distributionally() {
        // The wide count-engine sweep and the agent-engine sweep sample the
        // same Markov chain: over enough seeds their means must agree
        // loosely (fratricide at n=32 has E[parallel time] ≈ n).
        let ns = [32usize];
        let fast = stabilization_sweep(|_| Fratricide, &ns, 24, 7, u64::MAX);
        let slow = stabilization_sweep_agents(|_| Fratricide, &ns, 24, 7, u64::MAX);
        assert_eq!(fast[0].unconverged, 0);
        assert_eq!(slow[0].unconverged, 0);
        let (a, b) = (fast[0].times.mean(), slow[0].times.mean());
        assert!((a / b - 1.0).abs() < 0.5, "count {a} vs agent {b}");
    }

    #[test]
    fn bundle_widths_agree_distributionally() {
        // Lane width is a law-preserving execution knob, like the engine's
        // heuristic tiers: different widths draw differently but must
        // sample the same stabilization-time distribution.
        let ns = [32usize];
        let narrow = stabilization_sweep_wide(|_| Fratricide, &ns, 24, 7, u64::MAX, 1);
        let wide = stabilization_sweep_wide(|_| Fratricide, &ns, 24, 7, u64::MAX, 6);
        assert_eq!(narrow[0].unconverged, 0);
        assert_eq!(wide[0].unconverged, 0);
        let (a, b) = (narrow[0].times.mean(), wide[0].times.mean());
        assert!((a / b - 1.0).abs() < 0.5, "width 1 {a} vs width 6 {b}");
    }

    #[test]
    fn sweep_counts_unconverged_runs() {
        // A 1-step budget cannot elect among 16 leaders.
        let points = stabilization_sweep(|_| Fratricide, &[16], 4, 1, 1);
        assert_eq!(points[0].unconverged, 4);
        assert_eq!(points[0].times.count(), 0);
    }

    #[test]
    fn repeated_sizes_aggregate_into_independent_points() {
        // Regression: aggregation used to filter outcomes by the size
        // *value*, so ns = [8, 8] double-counted every run of that size
        // into both points (2 × seeds observations each). Each point must
        // hold exactly its own seeds — and distinct ones, since job seeds
        // derive from the packed (size index, seed index).
        let seeds = 6;
        let points = stabilization_sweep(|_| Fratricide, &[8, 8], seeds, 99, u64::MAX);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.n, 8);
            assert_eq!(p.times.count() + p.unconverged, seeds);
        }
        // Different seed blocks: equality of the two means would be a
        // (astronomically unlikely) coincidence.
        assert!(
            (points[0].times.mean() - points[1].times.mean()).abs() > 1e-9,
            "repeated sizes appear to share seed streams"
        );
    }

    #[test]
    fn sweep_rides_the_jump_scheduler_at_scale() {
        // 2^14 fratricide takes Θ(n²) ≈ 2.7e8 interactions per run — hours
        // of debug-build stepping without null telescoping, milliseconds
        // with it. The wide engine spills its null-dominated lanes onto
        // scalar jump-scheduler continuations; completing at all (under an
        // effectively unbounded budget) is the assertion.
        let points = stabilization_sweep(|_| Fratricide, &[1 << 14], 2, 5, u64::MAX);
        assert_eq!(points[0].unconverged, 0);
        assert_eq!(points[0].times.count(), 2);
        // E[parallel time] ≈ n for fratricide.
        let mean = points[0].times.mean();
        let n = (1 << 14) as f64;
        assert!(
            (mean / n - 1.0).abs() < 0.5,
            "mean parallel time {mean} far from the Θ(n) law at n = {n}"
        );
    }
}
