//! Single-run trajectory capture for the observability CLI surface.
//!
//! Two captures over the paper's `P_LL`, both deterministic for a fixed
//! `(n, seed, every)`:
//!
//! * [`pll_attribution_trajectory`] — the per-agent reference engine,
//!   sampling the leader count **and** the cumulative per-[`Demotion`]
//!   elimination counts every `every` interactions. This is the CSV behind
//!   the `--trajectory` flag: the paper's three-mechanism cascade (status
//!   assignment → `QuickElimination()` → `Tournament()`, with `BackUp()`
//!   as the rare tail) becomes a plottable time series keyed by
//!   interactions and by `interactions / n²`.
//! * [`observed_pll_election`] — the count engine under an attached
//!   [`EngineObserver`] with a trajectory sampler, yielding the unified
//!   [`EngineMetrics`] snapshot and the JSONL event log behind
//!   `--metrics-out` / `--events-out`.
//!
//! The final trace row of either capture always reflects the run's
//! reported outcome (same step count, leader count 1 on convergence), so
//! downstream checkers can validate CSV against summary without slack.

use pp_core::metrics::DemotionTally;
use pp_core::Pll;
use pp_engine::{
    Configuration, CountSimulation, EngineMetrics, EngineObserver, RunOutcome, Scheduler, Trace,
    UniformScheduler,
};
use pp_rand::Xoshiro256PlusPlus;
use pp_stats::Table;

/// Result of [`pll_attribution_trajectory`]: the sampled series plus the
/// run's reported outcome, kept together so the caller can assert the two
/// agree.
#[derive(Debug, Clone)]
pub struct PllTrajectory {
    /// Population size.
    pub n: usize,
    /// Sampling stride in interactions.
    pub every: u64,
    /// The election outcome (step count, convergence).
    pub outcome: RunOutcome,
    /// Leader count at the final step.
    pub final_leaders: u64,
    /// Final cumulative per-mechanism demotion tally.
    pub tally: DemotionTally,
    /// The sampled series: `leaders` plus one cumulative count per
    /// demotion mechanism and their total.
    pub trace: Trace,
}

/// Series names of the attribution trace, in column order.
pub const ATTRIBUTION_SERIES: [&str; 7] = [
    "leaders",
    "status_assignment",
    "quick_elimination",
    "tournament",
    "backup_level",
    "backup_duel",
    "demotions_total",
];

impl PllTrajectory {
    /// Renders the trajectory as a [`Table`] with the step count, both
    /// normalized time axes (`steps / n` and `steps / n²`), the leader
    /// count, and the cumulative per-mechanism demotions.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new([
            "step",
            "parallel_time",
            "steps_over_n2",
            "leaders",
            "status_assignment",
            "quick_elimination",
            "tournament",
            "backup_level",
            "backup_duel",
            "demotions_total",
        ]);
        let n = self.n as f64;
        for (step, values) in self.trace.rows() {
            let mut row = vec![
                step.to_string(),
                format!("{}", *step as f64 / n),
                format!("{}", *step as f64 / (n * n)),
            ];
            row.extend(values.iter().map(|v| format!("{v}")));
            table.push_row(row);
        }
        table
    }
}

/// Runs one `P_LL` election on the per-agent reference engine, sampling
/// the leader count and the cumulative per-[`Demotion`] elimination
/// counts every `every` interactions (floored at 1). The first row lands
/// at step 0 and the last row at the exact stabilization (or budget)
/// step, so `trace.last_step() == Some(outcome.steps)` always holds.
///
/// [`Demotion`]: pp_core::metrics::Demotion
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn pll_attribution_trajectory(
    n: usize,
    seed: u64,
    every: u64,
    max_steps: u64,
) -> PllTrajectory {
    let every = every.max(1);
    let pll = Pll::for_population(n).expect("n >= 2");
    let mut config = Configuration::initial(&pll, n).expect("n >= 2");
    let mut scheduler = UniformScheduler::seed_from_u64(seed);
    let mut tally = DemotionTally::new();
    let mut trace = Trace::new(ATTRIBUTION_SERIES);
    let mut leaders = config.leader_count(&pll) as u64;
    let mut steps: u64 = 0;
    let sample = |trace: &mut Trace, steps: u64, leaders: u64, tally: &DemotionTally| {
        trace.record(
            steps,
            &[
                leaders as f64,
                tally.status_assignment as f64,
                tally.quick_elimination as f64,
                tally.tournament as f64,
                tally.backup_level as f64,
                tally.backup_duel as f64,
                tally.total() as f64,
            ],
        );
    };
    sample(&mut trace, steps, leaders, &tally);
    while leaders > 1 && steps < max_steps {
        let interaction = scheduler.next_interaction(n);
        let pre_i = *config.state(interaction.initiator).expect("in bounds");
        let pre_r = *config.state(interaction.responder).expect("in bounds");
        config.apply(&pll, interaction).expect("valid interaction");
        let post_i = *config.state(interaction.initiator).expect("in bounds");
        let post_r = *config.state(interaction.responder).expect("in bounds");
        let before = tally.total();
        tally.observe((&pre_i, &pre_r), (&post_i, &post_r));
        leaders -= tally.total() - before;
        steps += 1;
        if steps % every == 0 {
            sample(&mut trace, steps, leaders, &tally);
        }
    }
    if trace.last_step() != Some(steps) {
        sample(&mut trace, steps, leaders, &tally);
    }
    PllTrajectory {
        n,
        every,
        outcome: RunOutcome {
            steps,
            converged: leaders == 1,
        },
        final_leaders: leaders,
        tally,
        trace,
    }
}

/// Result of [`observed_pll_election`]: the count engine's unified
/// metrics, its structured event log, and the sampled leader/support
/// trajectory.
#[derive(Debug, Clone)]
pub struct ObservedElection {
    /// The election outcome.
    pub outcome: RunOutcome,
    /// Unified metrics at stabilization.
    pub metrics: EngineMetrics,
    /// The event log, one JSON object per line (schema in
    /// [`pp_engine::obs`]).
    pub events_jsonl: String,
    /// Leader count and support size sampled every `every` interactions.
    pub trace: Trace,
}

/// Runs one `P_LL` election on the count engine (auto tiers) under an
/// attached observer with an `every`-interaction trajectory sampler, and
/// returns everything the observer saw.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn observed_pll_election(n: usize, seed: u64, every: u64, max_steps: u64) -> ObservedElection {
    let pll = Pll::for_population(n).expect("n >= 2");
    let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut sim = CountSimulation::new(pll, n, rng).expect("n >= 2");
    sim.set_observer(EngineObserver::new().with_trajectory(every.max(1)));
    let outcome = sim.run_until_single_leader(max_steps);
    let metrics = sim.metrics();
    let observer = sim.take_observer().expect("observer was attached");
    ObservedElection {
        outcome,
        metrics,
        events_jsonl: observer.events_to_jsonl(),
        trace: observer.into_trace().expect("sampler was attached"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_trajectory_final_row_matches_the_outcome() {
        let report = pll_attribution_trajectory(128, 11, 64, u64::MAX);
        assert!(report.outcome.converged);
        assert_eq!(report.final_leaders, 1);
        assert_eq!(report.trace.last_step(), Some(report.outcome.steps));
        assert_eq!(report.trace.last_value("leaders"), Some(1.0));
        // Conservation: n agents start as leaders, n − 1 are demoted.
        assert_eq!(report.tally.total(), 127);
        assert_eq!(
            report.trace.last_value("demotions_total"),
            Some(report.tally.total() as f64)
        );
        // The table carries one row per sample, plus the header.
        let table = report.to_table();
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), report.trace.len() + 1);
        assert!(csv.starts_with("step,parallel_time,steps_over_n2,leaders,"));
    }

    #[test]
    fn attribution_trajectory_respects_a_step_budget() {
        let report = pll_attribution_trajectory(128, 11, 32, 100);
        assert!(!report.outcome.converged);
        assert_eq!(report.outcome.steps, 100);
        assert_eq!(report.trace.last_step(), Some(100));
    }

    #[test]
    fn observed_election_reports_metrics_and_events() {
        // n >= 4096 so the batch tier engages and the event log is
        // non-empty (below that, an auto-tier P_LL election stays on the
        // compiled tier and fires no transitions).
        let observed = observed_pll_election(4096, 23, 512, u64::MAX);
        assert!(observed.outcome.converged);
        assert_eq!(observed.metrics.steps, observed.outcome.steps);
        assert_eq!(observed.metrics.population, 4096);
        assert!(observed.metrics.timeline.is_some());
        assert_eq!(observed.trace.last_step(), Some(observed.outcome.steps));
        assert_eq!(observed.trace.last_value("leaders"), Some(1.0));
        assert!(
            !observed.events_jsonl.is_empty(),
            "a batch-regime election emits events"
        );
    }
}
