//! Shard-merge bit-identity suite: the sweep fabric's merge contract,
//! enforced end-to-end through the public API.
//!
//! Sequential, 1-shard, and 4-concurrent-shard runs of the same spec must
//! produce byte-for-byte equal canonical journals, table CSVs, and
//! `Summary` observations; a killed (suspended) worker must resume from
//! its journal to the identical merged result; and shard directories of a
//! different sweep must be refused, not merged.

use pp_protocols::Fratricide;
use pp_sim::fabric::{merge_shards, points_table, run_sequential, run_worker_shard, FabricSpec};
use pp_sim::SweepPoint;
use std::path::PathBuf;

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ppfabric_it_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spec() -> FabricSpec {
    FabricSpec {
        protocol: "fratricide".into(),
        // Mixed sizes out of order, so largest-n-first scheduling visibly
        // reorders execution — and must not reorder a byte of output.
        ns: vec![16, 48, 32],
        seeds: 6,
        master_seed: 1234,
        max_steps: u64::MAX,
        lanes: 2,
    }
}

fn assert_points_bit_identical(a: &[SweepPoint], b: &[SweepPoint]) {
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(b) {
        assert_eq!(pa.n, pb.n);
        assert_eq!(pa.unconverged, pb.unconverged);
        assert_eq!(
            pa.times.checksum(),
            pb.times.checksum(),
            "summaries diverge at n = {}",
            pa.n
        );
        let (va, vb) = (pa.times.values(), pb.times.values());
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb) {
            assert_eq!(x.to_bits(), y.to_bits(), "n = {}", pa.n);
        }
    }
}

#[test]
fn sequential_one_shard_and_four_shards_are_byte_identical() {
    let spec = spec();

    let seq = Scratch::new("eq_seq");
    let seq_points = run_sequential(|_| Fratricide, &spec, &seq.0).expect("sequential runs");

    let one = Scratch::new("eq_one");
    let outcome = run_worker_shard(|_| Fratricide, &spec, &one.0, 0, None).expect("worker runs");
    assert!(!outcome.suspended);
    let one_points = merge_shards(&spec, &one.0, 1)
        .expect("1-shard merge")
        .points
        .expect("complete");

    // Four workers racing over the shared claim directory, each with its
    // own journal — whichever interleaving the scheduler picks, the merge
    // must land on the same bytes.
    let four = Scratch::new("eq_four");
    std::fs::create_dir_all(&four.0).unwrap();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|shard| {
                let spec = &spec;
                let dir = &four.0;
                scope.spawn(move || {
                    run_worker_shard(|_| Fratricide, spec, dir, shard, None)
                        .expect("shard worker runs")
                })
            })
            .collect();
        let fresh: usize = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread").fresh_jobs)
            .sum();
        // Claims partition the work: the union is exactly the grid.
        assert_eq!(fresh, spec.total_jobs());
    });
    let four_points = merge_shards(&spec, &four.0, 4)
        .expect("4-shard merge")
        .points
        .expect("complete");

    assert_points_bit_identical(&seq_points, &one_points);
    assert_points_bit_identical(&seq_points, &four_points);

    // Canonical journals: byte-for-byte equal across all three runs.
    let seq_journal = std::fs::read(seq.0.join("journal.txt")).unwrap();
    assert_eq!(
        seq_journal,
        std::fs::read(one.0.join("journal.txt")).unwrap()
    );
    assert_eq!(
        seq_journal,
        std::fs::read(four.0.join("journal.txt")).unwrap()
    );

    // Table CSVs (including the Summary checksum column): equal bytes.
    let csv = points_table(&seq_points).to_csv();
    assert_eq!(csv, points_table(&one_points).to_csv());
    assert_eq!(csv, points_table(&four_points).to_csv());
}

#[test]
fn killed_worker_resumes_from_its_journal_to_the_identical_merge() {
    let spec = spec();
    let seq = Scratch::new("kill_seq");
    let seq_points = run_sequential(|_| Fratricide, &spec, &seq.0).expect("sequential runs");

    // Shard 0 "dies" (suspends) after a few jobs; shard 1 then works the
    // remainder; a final shard-0 invocation finds nothing left to do.
    let dir = Scratch::new("kill_shards");
    let killed =
        run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, Some(4)).expect("limited worker");
    assert!(killed.suspended);
    assert!(killed.fresh_jobs < spec.total_jobs());
    let second = run_worker_shard(|_| Fratricide, &spec, &dir.0, 1, None).expect("second worker");
    assert_eq!(killed.fresh_jobs + second.fresh_jobs, spec.total_jobs());
    let resumed = run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("resume");
    assert!(!resumed.suspended);
    assert_eq!(resumed.fresh_jobs, 0, "everything was claimed or journaled");

    let merged = merge_shards(&spec, &dir.0, 2)
        .expect("merge")
        .points
        .expect("complete");
    assert_points_bit_identical(&seq_points, &merged);
    assert_eq!(
        std::fs::read(seq.0.join("journal.txt")).unwrap(),
        std::fs::read(dir.0.join("journal.txt")).unwrap()
    );
}

#[test]
fn mixed_fingerprint_shard_dirs_are_refused() {
    let spec = spec();
    let dir = Scratch::new("mixed");
    run_worker_shard(|_| Fratricide, &spec, &dir.0, 0, None).expect("shard 0 runs");

    // Shard 1 belongs to a different sweep — a wider lane bundle, which
    // changes bundle composition and therefore every draw. Its journal
    // header cannot match, and the merge must refuse rather than blend
    // non-comparable results.
    let mut foreign = spec.clone();
    foreign.lanes = 3;
    run_worker_shard(|_| Fratricide, &foreign, &dir.0, 1, None).expect("foreign shard runs");

    let err = merge_shards(&spec, &dir.0, 2).expect_err("mixed fingerprints refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
