//! Integration tests for the PRNG substrate: known-answer vectors against
//! the published reference implementations, and end-to-end determinism of
//! seed derivation down to the interaction schedules it drives.

use pp_rand::{Pcg32, Rng64, SeedSequence, SplitMix64, Xoshiro256PlusPlus};

/// First ten outputs of xoshiro256++ for state `{1, 2, 3, 4}`, from the
/// reference C implementation (https://prng.di.unimi.it/xoshiro256plusplus.c).
#[test]
fn xoshiro256pp_known_answer() {
    let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
    let expected: [u64; 10] = [
        41_943_041,
        58_720_359,
        3_588_806_011_781_223,
        3_591_011_842_654_386,
        9_228_616_714_210_784_205,
        9_973_669_472_204_895_162,
        14_011_001_112_246_962_877,
        12_406_186_145_184_390_807,
        15_849_039_046_786_891_736,
        10_450_023_813_501_588_000,
    ];
    for e in expected {
        assert_eq!(rng.next_u64(), e);
    }
}

/// First five outputs of SplitMix64 for seed 1234567, from the reference C
/// implementation (https://prng.di.unimi.it/splitmix64.c).
#[test]
fn splitmix64_known_answer() {
    let mut sm = SplitMix64::new(1234567);
    let expected: [u64; 5] = [
        6_457_827_717_110_365_317,
        3_203_168_211_198_807_973,
        9_817_491_932_198_370_423,
        4_593_380_528_125_082_431,
        16_408_922_859_458_223_821,
    ];
    for e in expected {
        assert_eq!(sm.next_u64(), e);
    }
}

/// First six outputs of PCG-XSH-RR 64/32 for seed 42, stream 54 — the
/// `pcg32_demo` vector from the reference library (https://www.pcg-random.org).
#[test]
fn pcg32_known_answer() {
    let mut rng = Pcg32::new(42, 54);
    let expected: [u32; 6] = [
        0xa15c_02b7,
        0x7b47_f409,
        0xba1d_3330,
        0x83d2_f293,
        0xbfa4_784b,
        0xcbed_606e,
    ];
    for e in expected {
        assert_eq!(rng.next_u32_native(), e);
    }
}

/// `Rng64::next_u64` on PCG32 is defined as hi32 ‖ lo32 of two native draws,
/// so the 64-bit stream is pinned by the 32-bit known answers.
#[test]
fn pcg32_next_u64_concatenates_native_draws() {
    let mut rng = Pcg32::new(42, 54);
    assert_eq!(rng.next_u64(), (0xa15c_02b7u64 << 32) | 0x7b47_f409);
    assert_eq!(rng.next_u64(), (0xba1d_3330u64 << 32) | 0x83d2_f293);
}

/// The same `SeedSequence` yields bit-identical interaction schedules: the
/// uniformly random scheduler draws the same ordered pairs of agents, run
/// after run, for every derived per-run seed.
#[test]
fn seed_sequence_reproduces_interaction_schedules() {
    let schedule = |run: u64| -> Vec<(usize, usize)> {
        let seq = SeedSequence::new(0xDEAD_BEEF).derive(17);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seq.seed_at(run));
        (0..10_000).map(|_| rng.distinct_pair(1_000)).collect()
    };
    for run in 0..4 {
        let a = schedule(run);
        let b = schedule(run);
        assert_eq!(a, b, "schedule for run {run} is not reproducible");
        assert!(a.iter().all(|&(u, v)| u != v && u < 1_000 && v < 1_000));
    }
    // Distinct runs get distinct schedules (the sweep is not degenerate).
    assert_ne!(schedule(0), schedule(1));
}

/// Cursor-based and positional seed access agree, so parallel workers that
/// index into the sequence see the same seeds as a serial driver.
#[test]
fn seed_sequence_positional_matches_cursor() {
    let mut cursor = SeedSequence::new(31337);
    let fixed = SeedSequence::new(31337);
    for i in 0..64 {
        assert_eq!(cursor.next_seed(), fixed.seed_at(i));
    }
}
