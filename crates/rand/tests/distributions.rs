//! Known-answer vectors for the discrete-distribution samplers.
//!
//! The inverse-CDF paths of [`Binomial`] and [`Hypergeometric`] are
//! deterministic functions of one scripted RNG word, so they can be pinned
//! against an **exact-rational reference implementation** (Python
//! `fractions`, inverting the exact CDF at `u = (word >> 11)·2⁻⁵³` with the
//! same symmetry reductions). Every vector was screened to lie at least
//! `1e-9` of CDF mass away from a pmf boundary, so `f64` rounding in the
//! recurrence cannot flip the answer. The rejection paths (BTRD / HRUA)
//! consume data-dependent numbers of words and are pinned distributionally
//! instead — by the chi-square goodness-of-fit suites in the crate's unit
//! tests.

use pp_rand::{Binomial, Hypergeometric, Rng64};

/// An `Rng64` yielding a scripted word sequence (panics when exhausted).
struct ScriptedRng {
    words: Vec<u64>,
    pos: usize,
}

impl ScriptedRng {
    fn one(word: u64) -> Self {
        Self {
            words: vec![word],
            pos: 0,
        }
    }
}

impl Rng64 for ScriptedRng {
    fn next_u64(&mut self) -> u64 {
        let w = self.words[self.pos];
        self.pos += 1;
        w
    }
}

/// `(n, p, rng word, expected)` — exact-rational CDF inversion reference.
const BINOMIAL_KAT: &[(u64, f64, u64, u64)] = &[
    (30, 1.0 / 10.0, 0x6cab5efdd7e84541, 3),
    (30, 1.0 / 10.0, 0x793acf45ac116629, 3),
    (30, 1.0 / 10.0, 0xb1fa6c1b617d1db2, 4),
    (9, 1.0 / 2.0, 0x33bff6c8d396ceaa, 3),
    (9, 1.0 / 2.0, 0xdf531a4649823d78, 6),
    (9, 1.0 / 2.0, 0x2c2665153d55b278, 3),
    (500, 1.0 / 100.0, 0x3a065b732f9ede9b, 3),
    (500, 1.0 / 100.0, 0xc7f2272347fc7c5e, 7),
    (500, 1.0 / 100.0, 0x21e90aae84374f21, 3),
    // p > ½ exercises the n − X(n, 1−p) reduction.
    (20, 8.0 / 10.0, 0xde5e35dad35b2753, 14),
    (20, 8.0 / 10.0, 0x51ec24d27510ada7, 17),
    (20, 8.0 / 10.0, 0x52db775092995c91, 17),
    (12, 9.0 / 10.0, 0xb8c12ed2b8277083, 10),
    (12, 9.0 / 10.0, 0x357f59e85812b7d9, 12),
    (12, 9.0 / 10.0, 0x47bf1c14b0f43fa0, 12),
    (64, 1.0 / 8.0, 0x08d17fdcadb59067, 4),
    (64, 1.0 / 8.0, 0xbd1f4cbac2ff194c, 10),
    (64, 1.0 / 8.0, 0x697abe45189a0314, 7),
];

/// `(N, K, r, rng word, expected)` — exact-rational CDF inversion reference,
/// including every combination of the two symmetry flips.
const HYPERGEOMETRIC_KAT: &[(u64, u64, u64, u64, u64)] = &[
    (1000, 40, 50, 0x02f2e78c9f3b9015, 0),
    (1000, 40, 50, 0x81cb6393f2eaf8a9, 2),
    (1000, 40, 50, 0x4ce14ec57a7b50a3, 1),
    (50, 7, 20, 0xbf606b88cbd6f14d, 4),
    (50, 7, 20, 0xc77a9a0e8635fa2b, 4),
    (50, 7, 20, 0xede45941ce8b4d53, 5),
    // The batch tier's regime: tiny per-state mean at a 2^20 population.
    (1048576, 5000, 300, 0x5c48de95d84b83bd, 1),
    (1048576, 5000, 300, 0xd22e0bf06e2d4cc8, 2),
    (1048576, 5000, 300, 0x77f6e2753f879a33, 1),
    // K > N/2 (flip K).
    (100, 80, 30, 0xf9548b509226c210, 20),
    (100, 80, 30, 0x93e74ac4e22f0cf5, 24),
    (100, 80, 30, 0xd598efd2fbba56b9, 22),
    // r > N/2 (flip r).
    (100, 30, 80, 0xa4c8c410e2fdda7e, 23),
    (100, 30, 80, 0x9e8e56b28c7841dc, 23),
    (100, 30, 80, 0xf74358e37d64c6da, 21),
    // Both flips.
    (100, 80, 70, 0x809ab41edac8eba8, 56),
    (100, 80, 70, 0x4023529fdc865e23, 55),
    (100, 80, 70, 0x9f96f92d1dbf4960, 57),
    (37, 21, 19, 0x0d7a7d6579e4732c, 8),
    (37, 21, 19, 0xa57df4c809358663, 11),
    (37, 21, 19, 0x087a5380e1e2cddb, 8),
];

#[test]
fn binomial_inversion_matches_exact_rational_reference() {
    for &(n, p, word, expected) in BINOMIAL_KAT {
        let b = Binomial::new(n, p).unwrap();
        let got = b.sample(&mut ScriptedRng::one(word));
        assert_eq!(
            got, expected,
            "Binomial({n}, {p}) with word {word:#x}: {got} != {expected}"
        );
    }
}

#[test]
fn hypergeometric_inversion_matches_exact_rational_reference() {
    for &(total, k, r, word, expected) in HYPERGEOMETRIC_KAT {
        let h = Hypergeometric::new(total, k, r).unwrap();
        let got = h.sample(&mut ScriptedRng::one(word));
        assert_eq!(
            got, expected,
            "Hypergeometric({total}, {k}, {r}) with word {word:#x}: {got} != {expected}"
        );
    }
}

#[test]
fn inversion_paths_consume_exactly_one_word() {
    // The KAT construction relies on the inverse-CDF paths reading a single
    // uniform; a second read would panic the scripted RNG above, but assert
    // the position explicitly for clarity.
    let mut rng = ScriptedRng {
        words: vec![0x33bff6c8d396ceaa, 0xdead],
        pos: 0,
    };
    Binomial::new(9, 0.5).unwrap().sample(&mut rng);
    assert_eq!(rng.pos, 1);
    let mut rng = ScriptedRng {
        words: vec![0xbf606b88cbd6f14d, 0xdead],
        pos: 0,
    };
    Hypergeometric::new(50, 7, 20).unwrap().sample(&mut rng);
    assert_eq!(rng.pos, 1);
}
