//! PCG32: an independent generator family used to cross-check results.

use crate::Rng64;

/// PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit state, 32-bit output.
///
/// Structurally unrelated to the xoshiro family, which makes it useful for
/// verifying that statistical conclusions do not depend on the generator.
/// Implements [`Rng64`] by concatenating two 32-bit outputs.
///
/// # Example
///
/// ```
/// use pp_rand::{Pcg32, Rng64};
///
/// let mut rng = Pcg32::new(42, 54);
/// assert!(rng.below(100) < 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream selector.
    ///
    /// Different `stream` values give statistically independent sequences for
    /// the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut pcg = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Returns the current state as `[state, increment]` (for checkpointing
    /// executions).
    pub fn state(&self) -> [u64; 2] {
        [self.state, self.inc]
    }

    /// Builds a generator from an explicit `[state, increment]` pair.
    ///
    /// # Panics
    ///
    /// Panics if the increment is even: the PCG LCG step requires an odd
    /// increment (which [`new`](Self::new) guarantees by construction), so an
    /// even one cannot have come from [`state`](Self::state).
    pub fn from_state(state: [u64; 2]) -> Self {
        assert!(state[1] & 1 == 1, "pcg32 increment must be odd");
        Self {
            state: state[0],
            inc: state[1],
        }
    }

    /// Returns the next 32 random bits.
    pub fn next_u32_native(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Default for Pcg32 {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl Rng64 for Pcg32 {
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32_native() as u64;
        let lo = self.next_u32_native() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_u32_native()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pcg32_demo known-answer vector lives in tests/substrate.rs with
    // the other generators'.

    #[test]
    fn streams_are_distinct() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let equal = (0..64)
            .filter(|_| a.next_u32_native() == b.next_u32_native())
            .count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn rng64_uniformity_smoke() {
        let mut rng = Pcg32::new(7, 7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.index(8)] += 1;
        }
        for c in counts {
            let dev = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05);
        }
    }
}
