//! Hypergeometric sampling — the without-replacement counterpart of
//! [`Binomial`](crate::Binomial) — plus the multivariate (conditional)
//! decomposition the count engine's batch tier is built on.
//!
//! `Hypergeometric(N, K, r)` is the number of successes when drawing `r`
//! items without replacement from a population of `N` items containing `K`
//! successes. The batch engine samples, per `Θ(√n)`-length collision-free
//! round, how many of the round's interaction slots land in each state —
//! exactly a sequence of conditional hypergeometric draws (see
//! [`multivariate_hypergeometric`]).
//!
//! Two sampling paths, selected per draw:
//!
//! * **Inverse CDF** (mean `< 10` after symmetry reduction): the starting
//!   mass `P(X = 0) = C(N−K, r)/C(N, r)` is computed through log-factorials
//!   and the CDF is walked with the exact pmf ratio recurrence. `O(mean)`
//!   expected iterations.
//! * **HRUA** (mean `≥ 10`): Stadlober's ratio-of-uniforms rejection
//!   (E. Stadlober, *The ratio of uniforms approach for generating discrete
//!   random variates*, 1990; the algorithm behind NumPy's hypergeometric) —
//!   a squeeze-accepted `O(1)` sampler whose exact test runs only on the
//!   sliver the two squeeze inequalities cannot decide.
//!
//! Both paths are exact up to `f64` resolution of the uniform inputs (the
//! workspace-wide caveat carried by [`Geometric`](crate::Geometric)), and are
//! pinned against the exact pmf, against each other across the path cutoff,
//! and against the binomial limit `N → ∞` by the test suite.

use crate::lnfact::{ln_choose, ln_factorial};
use crate::Rng64;

/// Below this mean (after symmetry reduction) the inverse-CDF walk is
/// cheaper than a rejection iteration; above it HRUA is `O(1)`.
const INVERSION_CUTOFF: f64 = 10.0;

/// `2·sqrt(2/e)` — the ratio-of-uniforms width constant of HRUA.
const HRUA_D1: f64 = 1.715_527_769_921_413_5;
/// `3 − 2·sqrt(3/e)` — the ratio-of-uniforms offset constant of HRUA.
const HRUA_D2: f64 = 0.898_916_162_058_898_8;

/// A hypergeometric distribution sampler: successes in `draws` items taken
/// without replacement from `total` items of which `successes` qualify.
///
/// # Example
///
/// ```
/// use pp_rand::{Hypergeometric, Rng64, Xoshiro256PlusPlus};
///
/// // 1024 draws from a population of 2^20 with half marked.
/// let h = Hypergeometric::new(1 << 20, 1 << 19, 1024).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
/// let x = h.sample(&mut rng);
/// assert!(x <= 1024);
/// assert!((x as f64 - 512.0).abs() < 6.0 * 16.0); // ~6σ
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    total: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Creates a sampler for `draws` from a population of `total` with
    /// `successes` marked items.
    ///
    /// Returns `None` when `successes > total` or `draws > total`.
    pub fn new(total: u64, successes: u64, draws: u64) -> Option<Self> {
        if successes > total || draws > total {
            return None;
        }
        Some(Self {
            total,
            successes,
            draws,
        })
    }

    /// The population size `N`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The number of marked items `K`.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// The number of draws `r`.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// The mean `r·K/N`.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.draws as f64 * self.successes as f64 / self.total as f64
    }

    /// The variance `r·(K/N)·(1−K/N)·(N−r)/(N−1)`.
    pub fn variance(&self) -> f64 {
        if self.total <= 1 {
            return 0.0;
        }
        let n = self.total as f64;
        let p = self.successes as f64 / n;
        self.draws as f64 * p * (1.0 - p) * (n - self.draws as f64) / (n - 1.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        let (total, mut k, mut r) = (self.total, self.successes, self.draws);
        // Trivial edges: empty draw, all-or-nothing populations.
        if r == 0 || k == 0 {
            return 0;
        }
        if k == total {
            return r;
        }
        if r == total {
            return k;
        }
        // Symmetry reduction to k ≤ N/2 and r ≤ N/2: X(N,K,r) = r − X(N,N−K,r)
        // and X(N,K,r) = K − X(N,K,N−r). Both samplers are fastest (and HRUA
        // is parameterized) on the reduced quadrant.
        let flip_k = k * 2 > total;
        if flip_k {
            k = total - k;
        }
        let flip_r = r * 2 > total;
        if flip_r {
            r = total - r;
        }
        let mean = r as f64 * k as f64 / total as f64;
        let x = if mean < INVERSION_CUTOFF {
            inverse_cdf(rng, total, k, r)
        } else {
            hrua(rng, total, k, r)
        };
        // Undo the reductions in reverse order of application: the r-flip
        // relates the reduced draw to X(N, k, draws), and the k-flip then
        // reflects within the original draw count.
        let x = if flip_r { k - x } else { x };
        if flip_k {
            self.draws - x
        } else {
            x
        }
    }
}

/// Sequential CDF inversion from 0. Requires the reduced quadrant
/// (`k ≤ N/2`, `r ≤ N/2`, so the support starts at 0) and a small mean (so
/// `P(X = 0)` is far from underflow and the walk is short).
fn inverse_cdf<R: Rng64 + ?Sized>(rng: &mut R, total: u64, k: u64, r: u64) -> u64 {
    // P(0) = C(N−k, r) / C(N, r).
    let ln_p0 = ln_choose(total - k, r) - ln_choose(total, r);
    let mut pmf = ln_p0.exp();
    let mut u = rng.unit_f64();
    let max = r.min(k);
    let mut x = 0u64;
    loop {
        if u < pmf {
            return x;
        }
        u -= pmf;
        if x == max {
            // f64 residue past the support; the exact CDF reaches 1 here.
            return max;
        }
        // p(x+1)/p(x) = (k−x)(r−x) / ((x+1)(N−k−r+x+1)).
        pmf *= (k - x) as f64 * (r - x) as f64 / ((x + 1) as f64 * (total - k - r + x + 1) as f64);
        x += 1;
    }
}

/// Stadlober's HRUA ratio-of-uniforms rejection. Requires the reduced
/// quadrant and a mean of at least ~10 (mode well inside the support).
fn hrua<R: Rng64 + ?Sized>(rng: &mut R, total: u64, k: u64, r: u64) -> u64 {
    let ln_tail = |z: u64| {
        ln_factorial(z)
            + ln_factorial(k - z)
            + ln_factorial(r - z)
            + ln_factorial(total - k - r + z)
    };
    let nf = total as f64;
    let p = k as f64 / nf;
    let q = 1.0 - p;
    let mu = r as f64 * p + 0.5;
    // Scale of the hat: the hypergeometric standard deviation plus a guard.
    let sigma = ((nf - r as f64) * r as f64 * p * q / (nf - 1.0) + 0.5).sqrt();
    let width = HRUA_D1 * sigma + HRUA_D2;
    let mode = ((r + 1) as f64 * (k + 1) as f64 / (nf + 2.0)).floor() as u64;
    let ln_mode = ln_tail(mode);
    // Proposals past ~16σ carry less mass than f64 resolves; capping them
    // keeps the subtraction arguments in range.
    let cap = (r.min(k) as f64 + 1.0).min((mu + 16.0 * sigma).floor());
    loop {
        let x = rng.unit_f64();
        if x == 0.0 {
            continue;
        }
        let y = rng.unit_f64();
        let w = mu + width * (y - 0.5) / x;
        if !(0.0..cap).contains(&w) {
            continue;
        }
        let z = w.floor() as u64;
        let t = ln_mode - ln_tail(z);
        // Squeeze accept / squeeze reject bracket the exact log test.
        if x * (4.0 - x) - 3.0 <= t {
            return z;
        }
        if x * (x - t) >= 1.0 {
            continue;
        }
        if 2.0 * x.ln() <= t {
            return z;
        }
    }
}

/// Draws a multivariate hypergeometric sample: `draws` items without
/// replacement from classes of sizes `counts`, writing how many land in each
/// class into `out` (which must have `counts.len()` entries; entries beyond
/// the early-exit point are zeroed).
///
/// This is the conditional decomposition: class `i` receives
/// `Hypergeometric(N_i, counts[i], r_i)` where `N_i` and `r_i` are the
/// population and draws remaining after classes `0..i`. Any fixed visiting
/// order yields the same joint law; iterating large classes first (as the
/// count engine's batch tier does with a sorted index) exhausts `r` sooner.
/// The loop exits as soon as the remaining draw count hits zero.
///
/// # Panics
///
/// Panics if `draws` exceeds the total count or `out` is shorter than
/// `counts`.
pub fn multivariate_hypergeometric<R: Rng64 + ?Sized>(
    rng: &mut R,
    counts: &[u64],
    draws: u64,
    out: &mut [u64],
) {
    assert!(out.len() >= counts.len(), "output slice too short");
    let mut remaining_pop: u64 = counts.iter().sum();
    assert!(draws <= remaining_pop, "cannot draw {draws} items");
    let mut remaining = draws;
    for (i, &c) in counts.iter().enumerate() {
        if remaining == 0 {
            out[i..counts.len()].fill(0);
            return;
        }
        let x = if c == 0 {
            0
        } else if remaining_pop == c {
            remaining
        } else {
            Hypergeometric::new(remaining_pop, c, remaining)
                .expect("class within population")
                .sample(rng)
        };
        out[i] = x;
        remaining -= x;
        remaining_pop -= c;
    }
    debug_assert_eq!(remaining, 0, "draws must be exhausted by the classes");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Binomial, Xoshiro256PlusPlus};

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn rejects_inconsistent_parameters() {
        assert!(Hypergeometric::new(10, 11, 5).is_none());
        assert!(Hypergeometric::new(10, 5, 11).is_none());
        assert!(Hypergeometric::new(10, 10, 10).is_some());
        assert!(Hypergeometric::new(0, 0, 0).is_some());
    }

    #[test]
    fn degenerate_parameters() {
        let mut r = rng(1);
        assert_eq!(Hypergeometric::new(10, 0, 5).unwrap().sample(&mut r), 0);
        assert_eq!(Hypergeometric::new(10, 10, 5).unwrap().sample(&mut r), 5);
        assert_eq!(Hypergeometric::new(10, 4, 10).unwrap().sample(&mut r), 4);
        assert_eq!(Hypergeometric::new(10, 4, 0).unwrap().sample(&mut r), 0);
    }

    #[test]
    fn samples_stay_in_support() {
        let mut r = rng(2);
        for &(n, k, d) in &[
            (10u64, 3u64, 7u64),
            (100, 99, 2),
            (1 << 20, 1 << 10, 1 << 12),
            (1 << 30, 3, 1 << 20),
            (97, 53, 61),
        ] {
            let h = Hypergeometric::new(n, k, d).unwrap();
            let lo = (k + d).saturating_sub(n);
            let hi = k.min(d);
            for _ in 0..2000 {
                let x = h.sample(&mut r);
                assert!((lo..=hi).contains(&x), "N={n} K={k} r={d}: {x}");
            }
        }
    }

    /// Exact pmf over the full support, mode-anchored (no underflow).
    fn exact_pmf(n: u64, k: u64, d: u64) -> (u64, Vec<f64>) {
        let lo = (k + d).saturating_sub(n);
        let hi = k.min(d);
        let len = (hi - lo + 1) as usize;
        let mut pmf = vec![0.0f64; len];
        let mode =
            (((d + 1) as f64 * (k + 1) as f64 / (n as f64 + 2.0)).floor() as u64).clamp(lo, hi);
        pmf[(mode - lo) as usize] = 1.0;
        // x ≥ lo ≥ k + d − n keeps (n − k) + x − d non-negative, so the
        // intermediate order matters for u64 arithmetic.
        for x in mode + 1..=hi {
            let prev = pmf[(x - 1 - lo) as usize];
            pmf[(x - lo) as usize] = prev * (k - x + 1) as f64 * (d - x + 1) as f64
                / (x as f64 * ((n - k) + x - d) as f64);
        }
        for x in (lo..mode).rev() {
            let next = pmf[(x + 1 - lo) as usize];
            pmf[(x - lo) as usize] = next * (x + 1) as f64 * ((n - k) + x + 1 - d) as f64
                / ((k - x) as f64 * (d - x) as f64);
        }
        let total: f64 = pmf.iter().sum();
        for v in &mut pmf {
            *v /= total;
        }
        (lo, pmf)
    }

    /// Wilson–Hilferty chi-square 0.001 critical value (df ≥ 3 here).
    fn critical(df: usize) -> f64 {
        let d = df as f64;
        let z = 3.090_232_306_167_813;
        let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
        d * t * t * t
    }

    fn assert_matches_exact_pmf(n: u64, k: u64, d: u64, draws: u64, seed: u64) {
        let (lo, pmf) = exact_pmf(n, k, d);
        let h = Hypergeometric::new(n, k, d).unwrap();
        let mut r = rng(seed);
        let mut observed = vec![0u64; pmf.len()];
        for _ in 0..draws {
            observed[(h.sample(&mut r) - lo) as usize] += 1;
        }
        let mut bins: Vec<(f64, u64)> = Vec::new();
        let (mut e_acc, mut o_acc) = (0.0, 0u64);
        for i in 0..pmf.len() {
            e_acc += pmf[i] * draws as f64;
            o_acc += observed[i];
            if e_acc >= 10.0 {
                bins.push((e_acc, o_acc));
                e_acc = 0.0;
                o_acc = 0;
            }
        }
        if let Some(last) = bins.last_mut() {
            last.0 += e_acc;
            last.1 += o_acc;
        }
        assert!(bins.len() >= 3, "degenerate binning for N={n} K={k} r={d}");
        let statistic: f64 = bins
            .iter()
            .map(|&(e, o)| (o as f64 - e) * (o as f64 - e) / e)
            .sum();
        let crit = critical(bins.len() - 1);
        assert!(
            statistic < crit,
            "N={n} K={k} r={d}: chi2 {statistic:.1} >= {crit:.1} (df {})",
            bins.len() - 1
        );
    }

    #[test]
    fn inversion_path_matches_exact_pmf() {
        // Reduced means below 10 stay on the inverse-CDF walk.
        assert_matches_exact_pmf(1000, 40, 50, 60_000, 11);
        assert_matches_exact_pmf(50, 7, 20, 60_000, 12);
        assert_matches_exact_pmf(1 << 20, 5000, 300, 60_000, 13);
    }

    #[test]
    fn hrua_path_matches_exact_pmf() {
        // Reduced means of 10+ force HRUA, exercising both squeezes.
        assert_matches_exact_pmf(1000, 300, 400, 60_000, 21);
        assert_matches_exact_pmf(1 << 16, 1 << 15, 1 << 10, 60_000, 22);
        assert_matches_exact_pmf(200, 100, 100, 60_000, 23);
    }

    #[test]
    fn symmetry_flips_match_exact_pmf() {
        // K > N/2 and r > N/2 exercise each un-flip branch combination.
        assert_matches_exact_pmf(100, 80, 30, 60_000, 31); // flip K
        assert_matches_exact_pmf(100, 30, 80, 60_000, 32); // flip r
        assert_matches_exact_pmf(100, 80, 70, 60_000, 33); // flip both
    }

    #[test]
    fn huge_population_moments() {
        // N = 2^30, draws ~ √N: the batch tier's regime.
        let h = Hypergeometric::new(1 << 30, 1 << 28, 1 << 15).unwrap();
        let mut r = rng(41);
        let draws = 20_000;
        let samples: Vec<f64> = (0..draws).map(|_| h.sample(&mut r) as f64).collect();
        let mean: f64 = samples.iter().sum::<f64>() / draws as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (draws - 1) as f64;
        let se = (h.variance() / draws as f64).sqrt();
        assert!(
            (mean - h.mean()).abs() < 5.0 * se,
            "mean {mean} vs {}",
            h.mean()
        );
        let rel = (var / h.variance() - 1.0).abs();
        assert!(rel < 0.05, "variance off by {rel:.3}");
    }

    #[test]
    fn approaches_binomial_limit() {
        // For N ≫ r the hypergeometric converges to Binomial(r, K/N); at
        // N = 2^26, r = 256 the total-variation gap is ~r²/N ≈ 1e-3, far
        // below the Monte-Carlo noise floor of this comparison of means.
        let n = 1u64 << 26;
        let k = n / 3;
        let r_draws = 256u64;
        let h = Hypergeometric::new(n, k, r_draws).unwrap();
        let b = Binomial::new(r_draws, k as f64 / n as f64).unwrap();
        let mut r = rng(51);
        let draws = 50_000;
        let mh: f64 = (0..draws).map(|_| h.sample(&mut r) as f64).sum::<f64>() / draws as f64;
        let mb: f64 = (0..draws).map(|_| b.sample(&mut r) as f64).sum::<f64>() / draws as f64;
        let se = 2.0 * (b.variance() / draws as f64).sqrt();
        assert!((mh - mb).abs() < 3.0 * se, "{mh} vs {mb}");
    }

    #[test]
    fn multivariate_counts_sum_and_marginals() {
        let counts = [500u64, 300, 0, 150, 50];
        let total: u64 = counts.iter().sum();
        let draws = 200u64;
        let mut out = [0u64; 5];
        let mut sums = [0f64; 5];
        let runs = 4000;
        let mut r = rng(61);
        for _ in 0..runs {
            multivariate_hypergeometric(&mut r, &counts, draws, &mut out);
            assert_eq!(out.iter().sum::<u64>(), draws);
            assert_eq!(out[2], 0);
            for (s, &o) in sums.iter_mut().zip(&out) {
                *s += o as f64;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = draws as f64 * c as f64 / total as f64;
            let got = sums[i] / runs as f64;
            assert!(
                (got - expect).abs() < 0.05 * expect.max(1.0),
                "class {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn multivariate_tiny_case_exact_law() {
        // counts = [2, 1], draws = 2: P(I = (2,0)) = C(2,2)/C(3,2) = 1/3.
        let mut r = rng(71);
        let mut out = [0u64; 2];
        let mut two_zero = 0u64;
        let runs = 60_000;
        for _ in 0..runs {
            multivariate_hypergeometric(&mut r, &[2, 1], 2, &mut out);
            if out == [2, 0] {
                two_zero += 1;
            }
        }
        let p = two_zero as f64 / runs as f64;
        assert!((p - 1.0 / 3.0).abs() < 0.01, "P[(2,0)] = {p}");
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn multivariate_rejects_overdraw() {
        let mut r = rng(0);
        let mut out = [0u64; 2];
        multivariate_hypergeometric(&mut r, &[1, 1], 3, &mut out);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use proptest::prelude::*;

    proptest! {
        /// Sample mean and variance track the analytic moments for random
        /// parameters spanning both algorithm paths and all four symmetry
        /// quadrants.
        #[test]
        fn sample_moments_match_theory(
            total in 2u64..1 << 22,
            k_mill in 0u64..=1000,
            r_mill in 1u64..=1000,
            seed in 0u64..1 << 48,
        ) {
            let k = total * k_mill / 1000;
            let r = (total * r_mill / 1000).max(1);
            let h = Hypergeometric::new(total, k, r).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let draws = 1500u64;
            let lo = (k + r).saturating_sub(total);
            let hi = k.min(r);
            let mut sum = 0.0;
            let mut sum2 = 0.0;
            for _ in 0..draws {
                let x = h.sample(&mut rng);
                prop_assert!((lo..=hi).contains(&x), "N={total} K={k} r={r}: {x}");
                let x = x as f64;
                sum += x;
                sum2 += x * x;
            }
            let mean = sum / draws as f64;
            let var = (sum2 - sum * sum / draws as f64) / (draws - 1) as f64;
            let se_mean = (h.variance() / draws as f64).sqrt();
            prop_assert!(
                (mean - h.mean()).abs() <= 5.0 * se_mean + 1e-9,
                "N={total} K={k} r={r}: mean {mean} vs {}", h.mean()
            );
            let tol = 6.0 * (2.0 / draws as f64).sqrt() * h.variance()
                + 6.0 * h.variance().sqrt() / draws as f64
                + 1e-9;
            prop_assert!(
                (var - h.variance()).abs() <= tol,
                "N={total} K={k} r={r}: var {var} vs {}", h.variance()
            );
        }

        /// The multivariate decomposition conserves draws and never
        /// overdraws a class, for arbitrary class layouts.
        #[test]
        fn multivariate_is_a_partition(
            counts in proptest::collection::vec(0u64..500, 1..12),
            draw_mill in 0u64..=1000,
            seed in 0u64..1 << 48,
        ) {
            let total: u64 = counts.iter().sum();
            let draws = total * draw_mill / 1000;
            let mut out = vec![0u64; counts.len()];
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            multivariate_hypergeometric(&mut rng, &counts, draws, &mut out);
            prop_assert_eq!(out.iter().sum::<u64>(), draws);
            for (o, c) in out.iter().zip(&counts) {
                prop_assert!(o <= c, "class overdrawn: {o} > {c}");
            }
        }
    }
}
