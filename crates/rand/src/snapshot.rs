//! Uniform state export/import across the crate's generators.
//!
//! Every generator here already exposes an inherent
//! `state() -> [u64; K]` / `from_state([u64; K])` pair; this module erases
//! the per-type `K` behind one trait so checkpointing code (the engine
//! snapshot format, sweep shard journals) can persist and restore *any*
//! generator through a uniform word-vector interface.
//!
//! The contract is exact: a generator rebuilt from
//! [`RngSnapshot::export_state`] output produces the identical draw sequence
//! the original would have produced from that point on — draw-for-draw, not
//! merely in distribution. The known-answer tests below pin this mid-stream.

use crate::{Pcg32, SeedSequence, SplitMix64, Xoshiro256PlusPlus};

/// Checkpointable generator state: word-vector export and fallible import.
///
/// Unlike the inherent `from_state` constructors (which panic on invalid
/// states, a programmer error), [`import_state`](Self::import_state) returns
/// `None` — deserialization of external bytes must never panic.
///
/// # Example
///
/// ```
/// use pp_rand::{Rng64, RngSnapshot, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
/// rng.next_u64();
/// let words = rng.export_state();
/// let mut twin = Xoshiro256PlusPlus::import_state(&words).unwrap();
/// assert_eq!(rng.next_u64(), twin.next_u64());
/// ```
pub trait RngSnapshot: Sized {
    /// Exports the full generator state as 64-bit words.
    fn export_state(&self) -> Vec<u64>;

    /// Rebuilds a generator from exported words.
    ///
    /// Returns `None` when the word count is wrong or the words violate the
    /// generator's state invariant (all-zero xoshiro state, even PCG
    /// increment).
    fn import_state(words: &[u64]) -> Option<Self>;
}

impl RngSnapshot for Xoshiro256PlusPlus {
    fn export_state(&self) -> Vec<u64> {
        self.state().to_vec()
    }

    fn import_state(words: &[u64]) -> Option<Self> {
        let state: [u64; 4] = words.try_into().ok()?;
        if state == [0; 4] {
            return None;
        }
        Some(Self::from_state(state))
    }
}

impl RngSnapshot for Pcg32 {
    fn export_state(&self) -> Vec<u64> {
        self.state().to_vec()
    }

    fn import_state(words: &[u64]) -> Option<Self> {
        let state: [u64; 2] = words.try_into().ok()?;
        if state[1] & 1 == 0 {
            return None;
        }
        Some(Self::from_state(state))
    }
}

impl RngSnapshot for SplitMix64 {
    fn export_state(&self) -> Vec<u64> {
        self.state().to_vec()
    }

    fn import_state(words: &[u64]) -> Option<Self> {
        Some(Self::from_state(words.try_into().ok()?))
    }
}

impl RngSnapshot for SeedSequence {
    fn export_state(&self) -> Vec<u64> {
        self.state().to_vec()
    }

    fn import_state(words: &[u64]) -> Option<Self> {
        Some(Self::from_state(words.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// Restores `G` mid-stream and checks the next draws match exactly.
    fn assert_midstream_identical<G: RngSnapshot + Rng64>(mut rng: G) {
        for _ in 0..17 {
            rng.next_u64();
        }
        let words = rng.export_state();
        let mut twin = G::import_state(&words).expect("exported state reimports");
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), twin.next_u64());
        }
    }

    #[test]
    fn xoshiro_restore_is_draw_identical() {
        assert_midstream_identical(Xoshiro256PlusPlus::seed_from_u64(42));
    }

    #[test]
    fn pcg_restore_is_draw_identical() {
        assert_midstream_identical(Pcg32::new(42, 54));
    }

    #[test]
    fn splitmix_restore_is_draw_identical() {
        assert_midstream_identical(SplitMix64::new(42));
    }

    #[test]
    fn seed_sequence_restore_resumes_cursor() {
        let mut seq = SeedSequence::new(123);
        seq.next_seed();
        seq.next_seed();
        let words = seq.export_state();
        let mut twin = SeedSequence::import_state(&words).unwrap();
        for _ in 0..8 {
            assert_eq!(seq.next_seed(), twin.next_seed());
        }
    }

    // Known-answer pins: exported words are the raw internal state, so these
    // fail if export/import ever reroutes through a lossy representation.

    #[test]
    fn xoshiro_export_kat() {
        let rng = Xoshiro256PlusPlus::seed_from_u64(0);
        // SplitMix64(0) first four outputs — the documented seeding scheme.
        let mut sm = SplitMix64::new(0);
        let expect: Vec<u64> = (0..4).map(|_| sm.next_u64()).collect();
        assert_eq!(rng.export_state(), expect);
    }

    #[test]
    fn pcg_export_kat() {
        let rng = Pcg32::new(42, 54);
        // state after the two seeding steps of PCG-XSH-RR 64/32(42, 54);
        // the increment word is (54 << 1) | 1 = 109.
        let words = rng.export_state();
        assert_eq!(words[1], 109);
        assert_eq!(
            Pcg32::import_state(&words).unwrap().state(),
            rng.state(),
            "roundtrip must preserve the raw LCG state"
        );
    }

    #[test]
    fn splitmix_export_kat() {
        assert_eq!(SplitMix64::new(7).export_state(), vec![7]);
    }

    #[test]
    fn seed_sequence_export_kat() {
        let mut seq = SeedSequence::new(9);
        seq.next_seed();
        assert_eq!(seq.export_state(), vec![9, 1]);
    }

    #[test]
    fn import_rejects_bad_states() {
        assert!(Xoshiro256PlusPlus::import_state(&[0; 4]).is_none());
        assert!(Xoshiro256PlusPlus::import_state(&[1; 3]).is_none());
        assert!(Pcg32::import_state(&[5, 4]).is_none(), "even increment");
        assert!(Pcg32::import_state(&[5]).is_none());
        assert!(SplitMix64::import_state(&[]).is_none());
        assert!(SeedSequence::import_state(&[1, 2, 3]).is_none());
    }

    #[test]
    #[should_panic(expected = "increment must be odd")]
    fn pcg_from_state_rejects_even_increment() {
        Pcg32::from_state([1, 2]);
    }
}
