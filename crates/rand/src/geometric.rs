//! Geometric sampling with arbitrary success probability.

use crate::Rng64;

/// A geometric distribution sampler: the number of failures before the first
/// success in Bernoulli(`p`) trials (support `{0, 1, 2, …}`).
///
/// For `p = 1/2` prefer [`Rng64::heads_run`], which is exact and branch-light.
/// For general `p` this uses inversion: `⌊ln U / ln(1-p)⌋`, exact up to f64
/// resolution, `O(1)` per sample.
///
/// # Example
///
/// ```
/// use pp_rand::{Geometric, Rng64, Xoshiro256PlusPlus};
///
/// let geo = Geometric::new(0.25).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let sample = geo.sample(&mut rng);
/// assert!(sample < u64::MAX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    ln_q: f64,
}

impl Geometric {
    /// Creates a sampler for success probability `p ∈ (0, 1]`.
    ///
    /// Returns `None` if `p` is not in `(0, 1]` or is NaN.
    pub fn new(p: f64) -> Option<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return None;
        }
        Some(Self {
            p,
            // ln(1 − p) via ln_1p: the naive (1.0 − p).ln() rounds to 0 for
            // p below ~5.6e-17, which would make sample() return 0 forever —
            // the regime the count engine's jump scheduler actually visits
            // (success probabilities ~k²/n² at populations of 2^28 and up).
            ln_q: (-p).ln_1p(),
        })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `(1-p)/p` of the distribution.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inversion; U in (0,1] to avoid ln(0).
        let u = 1.0 - rng.unit_f64();
        let v = (u.ln() / self.ln_q).floor();
        if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_probabilities() {
        assert!(Geometric::new(0.0).is_none());
        assert!(Geometric::new(-0.5).is_none());
        assert!(Geometric::new(1.5).is_none());
        assert!(Geometric::new(f64::NAN).is_none());
        assert!(Geometric::new(1.0).is_some());
    }

    #[test]
    fn p_one_always_zero() {
        let geo = Geometric::new(1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(geo.sample(&mut rng), 0);
        }
    }

    #[test]
    fn sample_mean_close_to_theory() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
        for p in [0.5, 0.25, 0.1] {
            let geo = Geometric::new(p).unwrap();
            let n = 200_000;
            let total: u64 = (0..n).map(|_| geo.sample(&mut rng)).sum();
            let mean = total as f64 / n as f64;
            let expect = geo.mean();
            let dev = (mean - expect).abs() / expect;
            assert!(dev < 0.03, "p={p}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn tiny_probabilities_keep_their_scale() {
        // Regression: ln(1 − p) must not round to zero for sub-epsilon p.
        // With p = 2.8e-17 (fratricide's two-leader stage at n = 2^28) the
        // mean is ~3.6e16; any draw above 2^40 already rules the collapsed
        // sampler (which returns 0 forever) out.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for p in [1e-12, 2.8e-17, 1e-18] {
            let geo = Geometric::new(p).unwrap();
            // A draw lands below 1/(1000·p) with probability ~0.1% — and the
            // collapsed sampler would sit at 0 every time.
            let floor = (0.001 / p) as u64;
            for _ in 0..8 {
                let sample = geo.sample(&mut rng);
                assert!(
                    sample > floor,
                    "p = {p}: sample {sample} far below the 1/p scale"
                );
            }
        }
    }

    #[test]
    fn half_matches_heads_run_distribution() {
        use crate::Rng64 as _;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(23);
        let geo = Geometric::new(0.5).unwrap();
        let n = 100_000;
        let mean_geo: f64 = (0..n).map(|_| geo.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let mean_run: f64 = (0..n).map(|_| rng.heads_run() as f64).sum::<f64>() / n as f64;
        assert!((mean_geo - mean_run).abs() < 0.05);
    }
}
