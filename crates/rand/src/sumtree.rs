//! A complete-binary-sum-tree weighted sampler: the branch-predictable
//! sibling of [`FenwickSampler`](crate::FenwickSampler).
//!
//! Both structures answer the same queries — `O(log k)` weight updates,
//! `O(log k)` inverse-CDF draws — and, being exact inverse-CDF samplers,
//! they return **identical slots for identical RNG draws**. The difference
//! is purely micro-architectural. The Fenwick layout walks data-dependent
//! ancestor chains of *variable* length, so its hot loops branch on data and
//! mispredict; the complete tree stores node `k`'s children at `2k` and
//! `2k + 1` with leaves (= raw weights) at `cap + slot`, making every walk a
//! fixed `log₂ cap` iterations of branch-free arithmetic:
//!
//! * [`select`](SumTreeSampler::sample): descend from the root taking the
//!   right child iff the left subtree's sum is `≤ target` (a flag-to-integer
//!   multiply, no branch);
//! * [`add`](SumTreeSampler::add): climb leaf→root via `k >>= 1`, adding the
//!   delta to every node unconditionally;
//! * [`transfer`](SumTreeSampler::transfer): climb the two leaf→root paths
//!   *in lockstep* (`-1` on one, `+1` on the other) and stop where they
//!   merge — above the lowest common ancestor the updates cancel exactly.
//!
//! The count engine's hot loop uses this sampler; `FenwickSampler` remains
//! the general-purpose structure (and the cross-check oracle in tests).

use crate::{Rng64, WeightedError};

/// What a [`SumTreeSampler::transfer`] did to the occupancy of its
/// endpoints — lets callers maintain a support-size counter without
/// re-reading any weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferEffect {
    /// The `from` slot dropped to weight 0.
    pub emptied: bool,
    /// The `to` slot rose to weight 1 (was 0).
    pub populated: bool,
}

/// Dynamic weighted sampler over integer weights, backed by a complete
/// binary sum tree (see the [module docs](self) for the layout and why it
/// beats the Fenwick layout on branch prediction).
///
/// # Example
///
/// ```
/// use pp_rand::{SumTreeSampler, Rng64, Xoshiro256PlusPlus};
///
/// let mut s = SumTreeSampler::from_weights(&[3, 0, 7]).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
/// let i = s.sample(&mut rng).unwrap();
/// assert!(i == 0 || i == 2);
/// s.add(1, 5).unwrap(); // slot 1 now has weight 5
/// assert_eq!(s.total(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumTreeSampler {
    /// `nodes[1]` is the root (= total); node `k` has children `2k` and
    /// `2k + 1`; the leaf of slot `x` is `nodes[cap + x]` (= its weight).
    /// `nodes[0]` is unused.
    nodes: Vec<u64>,
    /// Number of logical slots (`<= cap`).
    len: usize,
    /// Leaf capacity: a power of two, minimum 1.
    cap: usize,
    /// Tree depth: `log2(cap)`, the fixed trip count of every walk.
    levels: u32,
}

impl SumTreeSampler {
    /// Creates a sampler with `len` zero-weight slots.
    pub fn new(len: usize) -> Self {
        let cap = len.next_power_of_two().max(1);
        Self {
            nodes: vec![0; 2 * cap],
            len,
            cap,
            levels: cap.trailing_zeros(),
        }
    }

    /// Creates a sampler from initial weights.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::Empty`] for an empty slice.
    pub fn from_weights(weights: &[u64]) -> Result<Self, WeightedError> {
        if weights.is_empty() {
            return Err(WeightedError::Empty);
        }
        let mut s = Self::new(weights.len());
        s.nodes[s.cap..s.cap + weights.len()].copy_from_slice(weights);
        s.rebuild_internal();
        Ok(s)
    }

    fn rebuild_internal(&mut self) {
        for k in (1..self.cap).rev() {
            self.nodes[k] = self.nodes[2 * k] + self.nodes[2 * k + 1];
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sampler has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    #[inline]
    pub fn total(&self) -> u64 {
        // With cap == 1 the root *is* the single leaf; either way nodes[1]
        // carries the grand total.
        self.nodes[1]
    }

    /// Current weight of `index`, in `O(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if `index >= len`.
    pub fn weight(&self, index: usize) -> Result<u64, WeightedError> {
        if index >= self.len {
            return Err(WeightedError::IndexOutOfBounds {
                index,
                len: self.len,
            });
        }
        Ok(self.nodes[self.cap + index])
    }

    /// All per-slot weights, as a slice (`O(1)` point reads for hot loops).
    pub fn weights(&self) -> &[u64] {
        &self.nodes[self.cap..self.cap + self.len]
    }

    /// Adds `delta` (possibly negative) to the weight of `index`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if `index >= len`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the update would make the weight negative.
    #[inline]
    pub fn add(&mut self, index: usize, delta: i64) -> Result<(), WeightedError> {
        if index >= self.len {
            return Err(WeightedError::IndexOutOfBounds {
                index,
                len: self.len,
            });
        }
        debug_assert!(
            delta >= 0 || self.nodes[self.cap + index] as i64 >= -delta,
            "weight of slot {index} would become negative"
        );
        let mut k = self.cap + index;
        while k >= 1 {
            self.nodes[k] = (self.nodes[k] as i64 + delta) as u64;
            k >>= 1;
        }
        Ok(())
    }

    /// Moves one unit of weight from slot `from` to slot `to` — the count
    /// engine's "one agent changed state" update. The two leaf→root walks
    /// run in lockstep (`-1` on one side, `+1` on the other) and stop at
    /// the lowest common ancestor, above which the updates would cancel;
    /// every iteration performs the same two unconditional updates, so
    /// nothing in the loop body branches on data. A self-transfer
    /// (`from == to`) exits immediately and is a free no-op, so callers can
    /// skip their own "did anything change" branch.
    ///
    /// Returns a [`TransferEffect`] describing occupancy changes at the two
    /// endpoints (both `false` for a self-transfer).
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if either slot is out of
    /// range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if slot `from` is empty.
    #[inline]
    pub fn transfer(&mut self, from: usize, to: usize) -> Result<TransferEffect, WeightedError> {
        if from >= self.len || to >= self.len {
            return Err(WeightedError::IndexOutOfBounds {
                index: from.max(to),
                len: self.len,
            });
        }
        debug_assert!(self.nodes[self.cap + from] >= 1, "slot {from} is empty");
        let mut i = self.cap + from;
        let mut j = self.cap + to;
        while i != j {
            self.nodes[i] -= 1;
            self.nodes[j] += 1;
            i >>= 1;
            j >>= 1;
        }
        let distinct = from != to;
        Ok(TransferEffect {
            emptied: distinct && self.nodes[self.cap + from] == 0,
            populated: distinct && self.nodes[self.cap + to] == 1,
        })
    }

    /// Grows the sampler by one zero-weight slot and returns its index.
    pub fn push_slot(&mut self) -> usize {
        self.len += 1;
        if self.len > self.cap {
            let cap = self.len.next_power_of_two();
            let mut nodes = vec![0; 2 * cap];
            nodes[cap..cap + self.len - 1]
                .copy_from_slice(&self.nodes[self.cap..self.cap + self.len - 1]);
            self.nodes = nodes;
            self.cap = cap;
            self.levels = cap.trailing_zeros();
            self.rebuild_internal();
        }
        // Within capacity the new slot's leaf already exists with weight 0.
        self.len - 1
    }

    /// One double-level descent step: drops from node `k` straight to one of
    /// its four grandchildren (`4k .. 4k+3`, adjacent in memory), skipping
    /// the intermediate level entirely.
    ///
    /// The four loads use addresses that depend only on `k`, so they issue
    /// before the comparisons resolve — two tree levels cost barely more
    /// latency than one. With `p_d` the prefix sums of the grandchildren,
    /// the flags `m_d = (p_d ≤ r)` are monotone, their sum is the chosen
    /// grandchild, and `Σ g_d · m_{d+1}` is exactly the weight to deduct.
    #[inline(always)]
    fn grandchild_step(nodes: &[u64], k: usize, r: u64) -> (usize, u64) {
        let base = 4 * k;
        let g = &nodes[base..base + 3];
        let g0 = g[0];
        let g1 = g[1];
        let g2 = g[2];
        let p1 = g0;
        let p2 = p1 + g1;
        let p3 = p2 + g2;
        // Straight-line conditional assignments compile to conditional
        // moves: the deduction is selected rather than reconstructed with
        // multiplies on the critical path.
        let mut deduct = 0u64;
        let mut d = 0usize;
        if p1 <= r {
            deduct = p1;
            d = 1;
        }
        if p2 <= r {
            deduct = p2;
            d = 2;
        }
        if p3 <= r {
            deduct = p3;
            d = 3;
        }
        (base + d, r - deduct)
    }

    /// Finds the smallest slot whose cumulative weight exceeds `target`
    /// (`target < total`), returning `(slot, cumulative_below_slot)`.
    #[inline]
    fn select_prefix(&self, target: u64) -> (usize, u64) {
        debug_assert!(target < self.total());
        let mut remaining = target;
        let mut k = 1usize;
        let mut lv = self.levels;
        while lv >= 2 {
            (k, remaining) = Self::grandchild_step(&self.nodes, k, remaining);
            lv -= 2;
        }
        if lv == 1 {
            let left = self.nodes[2 * k];
            let take = u64::from(left <= remaining);
            remaining -= left * take;
            k = 2 * k + take as usize;
        }
        (k - self.cap, target - remaining)
    }

    /// Draws an index with probability proportional to its weight.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::AllZero`] if the total weight is zero.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Result<usize, WeightedError> {
        let total = self.total();
        if total == 0 {
            return Err(WeightedError::AllZero);
        }
        Ok(self.select_prefix(rng.below(total)).0)
    }

    /// Draws an ordered pair of slots `(i, j)` where `i` is weighted by the
    /// current weights and `j` by the weights with one unit removed from
    /// slot `i` — identical semantics, RNG consumption, and results to
    /// [`FenwickSampler::sample_pair_distinct`](crate::FenwickSampler::sample_pair_distinct)
    /// (see there for the urn-renumbering argument).
    ///
    /// The urn-renumbering shifts the responder target by at most one, and
    /// the unshifted responder descent does not depend on the initiator at
    /// all — so this routine runs the initiator descent and the raw
    /// responder descent *interleaved* in one loop (out-of-order hardware
    /// overlaps the per-level loads, bringing the latency of the whole draw
    /// close to one descent). Shifting the target by one changes the
    /// selected slot only when the raw target hit the very last unit of its
    /// slot — probability `≈ support/total` — in which rare case a third,
    /// standalone descent resolves it.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::TotalTooSmall`] if the total weight is < 2.
    #[inline]
    pub fn sample_pair_distinct<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<(usize, usize), WeightedError> {
        let total = self.total();
        if total < 2 {
            return Err(WeightedError::TotalTooSmall { total, required: 2 });
        }
        let (ta, tb) = crate::weighted::pair_targets(rng, total);
        let (mut ka, mut ra) = (1usize, ta);
        let (mut kb, mut rb) = (1usize, tb);
        let mut lv = self.levels;
        while lv >= 2 {
            (ka, ra) = Self::grandchild_step(&self.nodes, ka, ra);
            (kb, rb) = Self::grandchild_step(&self.nodes, kb, rb);
            lv -= 2;
        }
        if lv == 1 {
            let la = self.nodes[2 * ka];
            let lb = self.nodes[2 * kb];
            let da = u64::from(la <= ra);
            let db = u64::from(lb <= rb);
            ra -= la * da;
            rb -= lb * db;
            ka = 2 * ka + da as usize;
            kb = 2 * kb + db as usize;
        }
        let i = ka - self.cap;
        let below_i = ta - ra;
        let removed_unit = below_i + self.nodes[self.cap + i] - 1;
        let mut j = kb - self.cap;
        // The renumbered target tb + 1 selects a different slot only when
        // the shift applies (tb ≥ removed_unit) AND tb pointed at the very
        // last unit of j's interval (rb == w(j) − 1). Evaluate the
        // conjunction branchlessly: its halves are each near-random, but
        // together they are true with probability ≈ support/total, so the
        // single fused branch predicts essentially always.
        let shifted = tb >= removed_unit;
        let on_last_unit = rb + 1 == self.nodes[kb];
        if shifted & on_last_unit {
            j = self.select_prefix(tb + 1).0;
        }
        Ok((i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FenwickSampler, Xoshiro256PlusPlus};

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(999)
    }

    #[test]
    fn mirrors_weights_and_total() {
        let weights = [5u64, 0, 3, 9, 1, 0, 0, 2, 11];
        let s = SumTreeSampler::from_weights(&weights).unwrap();
        assert_eq!(s.total(), weights.iter().sum::<u64>());
        assert_eq!(s.weights(), &weights);
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(s.weight(i).unwrap(), w);
        }
        assert!(s.weight(9).is_err());
    }

    #[test]
    fn degenerate_single_slot() {
        let mut s = SumTreeSampler::new(1);
        assert!(matches!(s.sample(&mut rng()), Err(WeightedError::AllZero)));
        s.add(0, 4).unwrap();
        assert_eq!(s.total(), 4);
        assert_eq!(s.sample(&mut rng()).unwrap(), 0);
    }

    #[test]
    fn add_transfer_and_bounds() {
        let mut s = SumTreeSampler::from_weights(&[4, 7, 1, 0]).unwrap();
        s.transfer(0, 3).unwrap();
        assert_eq!(s.weights(), &[3, 7, 1, 1]);
        assert_eq!(s.total(), 12);
        s.transfer(1, 1).unwrap(); // self-transfer is a no-op
        assert_eq!(s.weights(), &[3, 7, 1, 1]);
        assert!(s.add(4, 1).is_err());
        assert!(s.transfer(0, 4).is_err());
        assert!(s.transfer(9, 0).is_err());
    }

    #[test]
    fn push_slot_grows_and_preserves() {
        let mut s = SumTreeSampler::from_weights(&[4, 7, 1]).unwrap();
        for k in 0..20 {
            let i = s.push_slot();
            assert_eq!(i, 3 + k as usize);
            s.add(i, k + 1).unwrap();
        }
        let mut expect = vec![4u64, 7, 1];
        expect.extend((0..20).map(|k| k + 1));
        assert_eq!(s.weights(), &expect[..]);
        assert_eq!(s.total(), expect.iter().sum::<u64>());
    }

    #[test]
    fn agrees_with_fenwick_on_identical_draws() {
        // Both samplers are exact inverse-CDF draws over the same weights:
        // the same RNG stream must produce the same slots, for both single
        // draws and fused pairs.
        let weights = [5u64, 0, 3, 9, 1, 0, 0, 2, 11, 3, 3, 0, 1];
        let fen = FenwickSampler::from_weights(&weights).unwrap();
        let tree = SumTreeSampler::from_weights(&weights).unwrap();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..5000 {
            assert_eq!(fen.sample(&mut r1).unwrap(), tree.sample(&mut r2).unwrap());
        }
        for _ in 0..5000 {
            assert_eq!(
                fen.sample_pair_distinct(&mut r1).unwrap(),
                tree.sample_pair_distinct(&mut r2).unwrap()
            );
        }
    }

    #[test]
    fn agrees_with_fenwick_under_dynamic_updates() {
        let mut fen = FenwickSampler::from_weights(&[2, 2, 2, 2, 2]).unwrap();
        let mut tree = SumTreeSampler::from_weights(&[2, 2, 2, 2, 2]).unwrap();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..5000 {
            let (i1, j1) = fen.sample_pair_distinct(&mut r1).unwrap();
            let (i2, j2) = tree.sample_pair_distinct(&mut r2).unwrap();
            assert_eq!((i1, j1), (i2, j2));
            // Move one agent i → j, as the count engine would.
            fen.transfer(i1, j1).unwrap();
            tree.transfer(i2, j2).unwrap();
            assert_eq!(fen.weights(), tree.weights());
        }
    }

    #[test]
    fn sampling_distribution() {
        let weights = [1u64, 2, 3, 4];
        let s = SumTreeSampler::from_weights(&weights).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[s.sample(&mut r).unwrap()] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = draws as f64 * w as f64 / 10.0;
            let dev = (counts[i] as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "slot {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(
            SumTreeSampler::from_weights(&[]),
            Err(WeightedError::Empty)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{FenwickSampler, Xoshiro256PlusPlus};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_fenwick_for_random_weights_and_ops(
            weights in proptest::collection::vec(0u64..20, 2..48),
            seed in 0u64..10_000,
        ) {
            let total: u64 = weights.iter().sum();
            prop_assume!(total >= 2);
            let mut fen = FenwickSampler::from_weights(&weights).unwrap();
            let mut tree = SumTreeSampler::from_weights(&weights).unwrap();
            let mut r1 = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut r2 = Xoshiro256PlusPlus::seed_from_u64(seed);
            for _ in 0..64 {
                let p1 = fen.sample_pair_distinct(&mut r1).unwrap();
                let p2 = tree.sample_pair_distinct(&mut r2).unwrap();
                prop_assert_eq!(p1, p2);
                fen.transfer(p1.0, p1.1).unwrap();
                tree.transfer(p2.0, p2.1).unwrap();
                prop_assert_eq!(fen.weights(), tree.weights());
            }
        }
    }
}
