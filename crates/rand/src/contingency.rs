//! Contingency-table sampling with fixed margins — the round structure
//! behind the count engine's contingency batch law.
//!
//! A collision-free batch round pairs `T` initiator slots with `T`
//! responder slots by a uniformly random bijection. When only the
//! *per-ordered-pair interaction counts* matter (no exact leader walk), the
//! round is fully described by the contingency table `M` with
//! `M[i][j] =` number of slots pairing initiator class `i` with responder
//! class `j` — distributed as the multivariate hypergeometric law on tables
//! with fixed margins:
//!
//! ```text
//! P(M = m) = (∏ᵢ rᵢ!)(∏ⱼ cⱼ!) / (T! ∏ᵢⱼ mᵢⱼ!)
//! ```
//!
//! [`contingency_table`] samples that law exactly by the row-conditional
//! decomposition: reveal the uniform bijection one initiator class at a
//! time — given the previous rows, the responders matched to row `i` are a
//! uniform without-replacement sample of the remaining responder pool, so
//! row `i` is one [`multivariate_hypergeometric`] draw over the *remaining*
//! column margins. `O(R·C)` conditional [`Hypergeometric`] draws worst
//! case, far fewer in practice (each row stops once its margin is
//! exhausted) — versus the `Θ(T)` index draws of a full Fisher–Yates
//! shuffle of the responder multiset. That gap is the point: for
//! small-support protocols `R·C ≪ T ≈ √n` and the table replaces the
//! shuffle outright.

use crate::hypergeom::Hypergeometric;
use crate::Rng64;

/// Samples a contingency table with fixed margins: the per-cell counts of a
/// uniformly random bijection between `rows.iter().sum()` row items
/// (classes of sizes `rows`) and the same number of column items (classes
/// of sizes `cols`). Writes the table row-major into `out` (which must hold
/// `rows.len() * cols.len()` entries) and returns the number of
/// [`Hypergeometric`] draws consumed — the caller's cost model for deciding
/// when the table beats a shuffle.
///
/// Row `i` is the conditional multivariate hypergeometric draw of `rows[i]`
/// items from the column margins left over by rows `0..i`; any fixed row
/// order yields the same joint law (exchangeability of the uniform
/// bijection). Iterating large columns first within a row exhausts the row
/// margin sooner, so callers that can present `cols` in descending order
/// pay fewer conditional draws; correctness does not depend on the order.
///
/// # Panics
///
/// Panics if the row and column totals differ or `out` is shorter than
/// `rows.len() * cols.len()`.
pub fn contingency_table<R: Rng64 + ?Sized>(
    rng: &mut R,
    rows: &[u64],
    cols: &[u64],
    out: &mut [u64],
) -> u64 {
    let cells = rows.len() * cols.len();
    assert!(out.len() >= cells, "output slice too short");
    let row_total: u64 = rows.iter().sum();
    let col_total: u64 = cols.iter().sum();
    assert_eq!(row_total, col_total, "row/column totals must match");
    out[..cells].fill(0);
    // Remaining column margins, consumed as rows are revealed. (The count
    // engine keeps an equivalent buffer in its round scratch; this is the
    // allocation-per-call reference implementation, like
    // `multivariate_hypergeometric`.)
    let mut rem: Vec<u64> = cols.to_vec();
    let mut pool = col_total;
    let mut draws = 0u64;
    for (i, &r) in rows.iter().enumerate() {
        let mut remaining = r;
        let mut sub_pool = pool;
        for j in 0..cols.len() {
            if remaining == 0 {
                break;
            }
            let c = rem[j];
            if c == 0 {
                continue;
            }
            let x = if sub_pool == c {
                remaining
            } else {
                draws += 1;
                Hypergeometric::new(sub_pool, c, remaining)
                    .expect("column margin within remaining pool")
                    .sample(rng)
            };
            out[i * cols.len() + j] = x;
            rem[j] -= x;
            remaining -= x;
            sub_pool -= c;
        }
        debug_assert_eq!(remaining, 0, "row margin must be exhausted");
        pool -= r;
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{multivariate_hypergeometric, Xoshiro256PlusPlus};

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    fn margins(out: &[u64], r: usize, c: usize) -> (Vec<u64>, Vec<u64>) {
        let row_sums = (0..r)
            .map(|i| out[i * c..(i + 1) * c].iter().sum())
            .collect();
        let col_sums = (0..c)
            .map(|j| (0..r).map(|i| out[i * c + j]).sum())
            .collect();
        (row_sums, col_sums)
    }

    #[test]
    fn preserves_margins() {
        let rows = [500u64, 130, 0, 70];
        let cols = [300u64, 250, 150];
        let mut out = [0u64; 12];
        let mut r = rng(1);
        for _ in 0..500 {
            contingency_table(&mut r, &rows, &cols, &mut out);
            let (rs, cs) = margins(&out, 4, 3);
            assert_eq!(rs, rows);
            assert_eq!(cs, cols);
        }
    }

    #[test]
    fn degenerate_tables() {
        let mut r = rng(2);
        let mut out = [0u64; 4];
        // Empty round.
        contingency_table(&mut r, &[0, 0], &[0, 0], &mut out);
        assert_eq!(out, [0; 4]);
        // Single row: exactly one multivariate hypergeometric draw — here
        // forced, all items land per column margin.
        contingency_table(&mut r, &[10], &[4, 6], &mut out);
        assert_eq!(&out[..2], &[4, 6]);
    }

    #[test]
    #[should_panic(expected = "totals must match")]
    fn rejects_mismatched_margins() {
        let mut r = rng(0);
        let mut out = [0u64; 4];
        contingency_table(&mut r, &[3, 1], &[1, 2], &mut out);
    }

    /// rows = [2, 1], cols = [1, 2]: the exact table law puts mass 2/3 on
    /// m₀₀ = 1 and 1/3 on m₀₀ = 0 (Fisher's hypergeometric table law).
    #[test]
    fn tiny_table_exact_law() {
        let mut r = rng(7);
        let mut out = [0u64; 4];
        let runs = 60_000;
        let mut m00_one = 0u64;
        for _ in 0..runs {
            contingency_table(&mut r, &[2, 1], &[1, 2], &mut out);
            if out[0] == 1 {
                m00_one += 1;
            }
        }
        let p = m00_one as f64 / runs as f64;
        assert!((p - 2.0 / 3.0).abs() < 0.01, "P[m00 = 1] = {p}");
    }

    /// The m₀₀ marginal of any table is Hypergeometric(T, r₀, c₀); pin the
    /// full pmf for rows = [3, 2], cols = [2, 3]: P(m₀₀ = 0, 1, 2) =
    /// (0.1, 0.6, 0.3).
    #[test]
    fn corner_cell_marginal_law() {
        let mut r = rng(8);
        let mut out = [0u64; 4];
        let runs = 60_000;
        let mut hits = [0u64; 3];
        for _ in 0..runs {
            contingency_table(&mut r, &[3, 2], &[2, 3], &mut out);
            hits[out[0] as usize] += 1;
        }
        for (k, &expect) in [0.1, 0.6, 0.3].iter().enumerate() {
            let p = hits[k] as f64 / runs as f64;
            assert!((p - expect).abs() < 0.01, "P[m00 = {k}] = {p} vs {expect}");
        }
    }

    /// Cell means match E[mᵢⱼ] = rᵢ·cⱼ/T and cell variances match
    /// Var(mᵢⱼ) = rᵢcⱼ(T−rᵢ)(T−cⱼ)/(T²(T−1)) — the batch-regime moment
    /// check at margins the engine actually draws (support ~4, T ~ √n).
    #[test]
    fn cell_moments_match_theory() {
        let rows = [400u64, 150, 80, 10];
        let cols = [300u64, 200, 140];
        let t: u64 = rows.iter().sum();
        let runs = 4000usize;
        let mut r = rng(9);
        let mut out = [0u64; 12];
        let mut sums = [0f64; 12];
        let mut sums2 = [0f64; 12];
        for _ in 0..runs {
            contingency_table(&mut r, &rows, &cols, &mut out);
            for (k, &v) in out.iter().enumerate() {
                sums[k] += v as f64;
                sums2[k] += (v * v) as f64;
            }
        }
        let tf = t as f64;
        for (i, &ri) in rows.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                let k = i * cols.len() + j;
                let mean = sums[k] / runs as f64;
                let var = (sums2[k] - sums[k] * sums[k] / runs as f64) / (runs - 1) as f64;
                let e = ri as f64 * cj as f64 / tf;
                let v = ri as f64 * cj as f64 * (tf - ri as f64) * (tf - cj as f64)
                    / (tf * tf * (tf - 1.0));
                let se = (v / runs as f64).sqrt();
                assert!(
                    (mean - e).abs() < 5.0 * se + 1e-9,
                    "cell ({i},{j}): mean {mean} vs {e}"
                );
                assert!(
                    (var / v.max(1e-12) - 1.0).abs() < 0.2 || v < 1.0,
                    "cell ({i},{j}): var {var} vs {v}"
                );
            }
        }
    }

    /// The first row of a table is exactly one multivariate hypergeometric
    /// draw over the column margins: pin the two samplers draw-for-draw on
    /// identically seeded RNG streams. (Fresh streams per iteration — the
    /// table's remaining rows consume extra randomness.)
    #[test]
    fn first_row_matches_multivariate() {
        let cols = [50u64, 30, 0, 20];
        let draws = 60u64;
        let mut table = [0u64; 8];
        let mut mv = [0u64; 4];
        for seed in 0..200 {
            contingency_table(
                &mut rng(1000 + seed),
                &[draws, 100 - draws],
                &cols,
                &mut table,
            );
            multivariate_hypergeometric(&mut rng(1000 + seed), &cols, draws, &mut mv);
            assert_eq!(&table[..4], &mv);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use proptest::prelude::*;

    proptest! {
        /// Margins are preserved exactly for arbitrary layouts (including
        /// zero classes), and every cell stays within both of its margins.
        #[test]
        fn margins_are_invariant(
            rows in proptest::collection::vec(0u64..400, 1..8),
            cols_shape in proptest::collection::vec(1u64..=1000, 1..8),
            seed in 0u64..1 << 48,
        ) {
            // Scale the column shape to the row total so margins match.
            let total: u64 = rows.iter().sum();
            let shape: u64 = cols_shape.iter().sum();
            let mut cols: Vec<u64> =
                cols_shape.iter().map(|&w| total * w / shape).collect();
            let assigned: u64 = cols.iter().sum();
            cols[0] += total - assigned;
            let mut out = vec![0u64; rows.len() * cols.len()];
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            contingency_table(&mut rng, &rows, &cols, &mut out);
            for (i, &r) in rows.iter().enumerate() {
                let row: u64 = out[i * cols.len()..(i + 1) * cols.len()].iter().sum();
                prop_assert!(row == r, "row {} margin: {} vs {}", i, row, r);
            }
            for (j, &c) in cols.iter().enumerate() {
                let col: u64 = (0..rows.len()).map(|i| out[i * cols.len() + j]).sum();
                prop_assert!(col == c, "col {} margin: {} vs {}", j, col, c);
            }
        }

        /// Cell means track rᵢ·cⱼ/T for random margins — the marginal-law
        /// check the round-law suite leans on.
        #[test]
        fn cell_means_match_marginal_law(
            rows in proptest::collection::vec(1u64..200, 2..5),
            seed in 0u64..1 << 48,
        ) {
            let total: u64 = rows.iter().sum();
            // Two columns splitting the total near-evenly.
            let cols = [total / 2, total - total / 2];
            let mut out = vec![0u64; rows.len() * 2];
            let mut sums = vec![0f64; rows.len() * 2];
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let runs = 400usize;
            for _ in 0..runs {
                contingency_table(&mut rng, &rows, &cols, &mut out);
                for (k, &v) in out.iter().enumerate() {
                    sums[k] += v as f64;
                }
            }
            let tf = total as f64;
            for (i, &ri) in rows.iter().enumerate() {
                for (j, &cj) in cols.iter().enumerate() {
                    let e = ri as f64 * cj as f64 / tf;
                    let v = ri as f64 * cj as f64 * (tf - ri as f64) * (tf - cj as f64)
                        / (tf * tf * (tf - 1.0));
                    let got = sums[i * 2 + j] / runs as f64;
                    let tol = 6.0 * (v / runs as f64).sqrt() + 1e-9;
                    prop_assert!(
                        (got - e).abs() <= tol,
                        "cell ({}, {}): {} vs {}", i, j, got, e
                    );
                }
            }
        }
    }
}
