//! Reproducible derivation of per-run seeds from one master seed.

use crate::{SplitMix64, Xoshiro256PlusPlus};

/// A deterministic sequence of well-mixed 64-bit seeds.
///
/// Experiment sweeps run thousands of independent simulations; each needs its
/// own seed, and results must not depend on scheduling order of worker
/// threads. `SeedSequence` derives the `i`-th seed purely from
/// `(master, i)`, so run `i` is reproducible in isolation.
///
/// # Example
///
/// ```
/// use pp_rand::SeedSequence;
///
/// let mut seq = SeedSequence::new(7);
/// let s0 = seq.next_seed();
/// let s1 = seq.next_seed();
/// assert_ne!(s0, s1);
/// assert_eq!(SeedSequence::new(7).seed_at(1), s1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    master: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        Self { master, counter: 0 }
    }

    /// The master seed this sequence derives from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Returns the current state as `[master, cursor]` (for checkpointing
    /// executions).
    pub fn state(&self) -> [u64; 2] {
        [self.master, self.counter]
    }

    /// Rebuilds a sequence from an explicit `[master, cursor]` pair. Every
    /// state is valid.
    pub fn from_state(state: [u64; 2]) -> Self {
        Self {
            master: state[0],
            counter: state[1],
        }
    }

    /// Returns the seed at position `index` without advancing the cursor.
    pub fn seed_at(&self, index: u64) -> u64 {
        // Feistel-ish double mix of (master, index); collision-free in index
        // for fixed master because mix64 is a bijection.
        SplitMix64::mix64(self.master ^ SplitMix64::mix64(index))
    }

    /// Returns the next seed and advances the cursor.
    pub fn next_seed(&mut self) -> u64 {
        let s = self.seed_at(self.counter);
        self.counter += 1;
        s
    }

    /// A ready simulation RNG for run `index`: the
    /// `Xoshiro256PlusPlus::seed_from_u64(seq.seed_at(i))` pattern every
    /// sweep and equivalence suite repeats, as one call.
    pub fn rng_at(&self, index: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(self.seed_at(index))
    }

    /// Independent simulation RNGs for runs `0..count` — the lane-bundle
    /// form of [`rng_at`](Self::rng_at), as consumed by wide (multi-seed)
    /// engines.
    pub fn rngs(&self, count: usize) -> Vec<Xoshiro256PlusPlus> {
        (0..count as u64).map(|i| self.rng_at(i)).collect()
    }

    /// Derives a named sub-sequence, e.g. one per experiment, that is
    /// independent of this sequence's cursor.
    pub fn derive(&self, label: u64) -> SeedSequence {
        SeedSequence::new(SplitMix64::mix64(
            self.master
                .wrapping_add(SplitMix64::mix64(label ^ 0xA076_1D64_78BD_642F)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn positional_access_matches_iteration() {
        let mut seq = SeedSequence::new(99);
        let iterated: Vec<u64> = (0..16).map(|_| seq.next_seed()).collect();
        let fixed = SeedSequence::new(99);
        let positional: Vec<u64> = (0..16).map(|i| fixed.seed_at(i)).collect();
        assert_eq!(iterated, positional);
    }

    #[test]
    fn seeds_are_distinct() {
        let seq = SeedSequence::new(5);
        let seeds: HashSet<u64> = (0..10_000).map(|i| seq.seed_at(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn different_masters_give_different_streams() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        let overlap = (0..100).filter(|&i| a.seed_at(i) == b.seed_at(i)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn rng_at_matches_manual_seeding() {
        use crate::Rng64;
        let seq = SeedSequence::new(11);
        let mut direct = seq.rng_at(4);
        let mut manual = Xoshiro256PlusPlus::seed_from_u64(seq.seed_at(4));
        for _ in 0..8 {
            assert_eq!(direct.next_u64(), manual.next_u64());
        }
    }

    #[test]
    fn derived_sequences_are_independent() {
        let base = SeedSequence::new(42);
        let x = base.derive(0);
        let y = base.derive(1);
        assert_ne!(x.master(), y.master());
        assert_ne!(x.seed_at(0), y.seed_at(0));
        // deriving is deterministic
        assert_eq!(base.derive(0).seed_at(3), x.seed_at(3));
    }
}
