//! Log-factorials for the discrete-distribution samplers.
//!
//! [`Binomial`](crate::Binomial) and [`Hypergeometric`](crate::Hypergeometric)
//! evaluate log-probability-mass ratios inside their acceptance tests, which
//! reduces to `ln k!` at integer arguments. Rust's standard library has no
//! stable `ln_gamma`, so this module provides one specialized to what the
//! samplers need: exact products below 16 (where `k!` fits an integer and a
//! single `ln` is correctly rounded), and a Stirling series above, accurate to
//! well under `1e-13` relative — far below the `f64`-resolution caveat the
//! samplers already carry on their uniform inputs.

/// `ln(2π) / 2`.
const HALF_LN_TWO_PI: f64 = 0.918_938_533_204_672_8;

/// Arguments below this bound are served from a precomputed table. The
/// samplers' small arguments (a hypergeometric draw count and the sampled
/// value, both bounded by the batch tier's `Θ(√n)` round length) land here
/// on nearly every call, turning two of the four `ln` evaluations per
/// acceptance test into loads.
const TABLE_LEN: usize = 1024;

/// Lazily computed `ln k!` for `k < TABLE_LEN`, filled by [`ln_factorial_uncached`]
/// itself so cached and uncached answers are bit-identical.
static SMALL: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();

/// `ln(k!)`.
///
/// Exact (one correctly-rounded `ln` of an exact integer) for `k < 16`;
/// Stirling's series with four correction terms beyond, with error below
/// `1e-13` relative at the crossover and falling as `k⁻⁹`. Values below
/// [`TABLE_LEN`] are served from a table precomputed by the same code
/// path, so caching never changes a result bit.
#[inline]
pub(crate) fn ln_factorial(k: u64) -> f64 {
    if k < TABLE_LEN as u64 {
        return SMALL.get_or_init(|| (0..TABLE_LEN as u64).map(ln_factorial_uncached).collect())
            [k as usize];
    }
    ln_factorial_uncached(k)
}

/// The direct evaluation behind [`ln_factorial`].
fn ln_factorial_uncached(k: u64) -> f64 {
    if k < 16 {
        // 15! = 1_307_674_368_000 is exactly representable.
        let mut f = 1u64;
        for i in 2..=k {
            f *= i;
        }
        return (f as f64).ln();
    }
    let x = k as f64;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ln k! = (k + ½) ln k − k + ½ ln 2π + 1/(12k) − 1/(360k³) + 1/(1260k⁵) − 1/(1680k⁷)
    let series = inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 * (1.0 / 1260.0 - inv2 / 1680.0)));
    (x + 0.5) * x.ln() - x + HALF_LN_TWO_PI + series
}

/// `ln C(n, k)` for `k ≤ n`.
#[inline]
pub(crate) fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_summation() {
        // Σ ln i is itself accurate to ~1e-14 · terms; agreement to 1e-10
        // across the crossover pins both the exact branch and the series.
        let mut acc = 0.0f64;
        for k in 1..=2000u64 {
            acc += (k as f64).ln();
            let got = ln_factorial(k);
            assert!(
                (got - acc).abs() <= 1e-10 * acc.max(1.0),
                "k={k}: {got} vs {acc}"
            );
        }
    }

    #[test]
    fn small_values_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert_eq!(ln_factorial(2), 2f64.ln());
        assert_eq!(ln_factorial(5), 120f64.ln());
    }

    #[test]
    fn choose_matches_pascal() {
        for n in 0..30u64 {
            let mut c = 1u64;
            for k in 0..=n {
                let got = ln_choose(n, k).exp();
                assert!(
                    (got - c as f64).abs() < 1e-6 * c as f64 + 1e-9,
                    "C({n},{k}) = {got} vs {c}"
                );
                if k < n {
                    c = c * (n - k) / (k + 1);
                }
            }
        }
    }

    #[test]
    fn table_is_bit_identical_to_direct_evaluation() {
        for k in 0..TABLE_LEN as u64 {
            assert_eq!(
                ln_factorial(k).to_bits(),
                ln_factorial_uncached(k).to_bits()
            );
        }
    }

    #[test]
    fn large_arguments_stay_finite() {
        let big = ln_factorial(u64::MAX / 2);
        assert!(big.is_finite() && big > 0.0);
    }
}
