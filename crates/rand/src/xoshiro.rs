//! Xoshiro256++: the default simulation generator (Blackman & Vigna 2019).

use crate::{Rng64, SplitMix64};

/// Xoshiro256++ generator: 256-bit state, period 2²⁵⁶ − 1, excellent
/// statistical quality, ~1 ns per draw.
///
/// This is the workhorse RNG behind the uniformly random scheduler. Seed it
/// with [`seed_from_u64`](Xoshiro256PlusPlus::seed_from_u64) (expands the seed
/// through SplitMix64, as the algorithm authors recommend) or with a full
/// 256-bit state via [`from_state`](Xoshiro256PlusPlus::from_state).
///
/// # Example
///
/// ```
/// use pp_rand::{Rng64, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
/// let x = rng.below(1_000_000);
/// assert!(x < 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state by running SplitMix64 on `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the single invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Builds a generator from an explicit 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one invalid xoshiro state).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state != [0, 0, 0, 0], "xoshiro256++ state must be non-zero");
        Self { s: state }
    }

    /// Returns the current 256-bit state (for checkpointing executions).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advances the state by 2¹²⁸ draws ("jump"), yielding a generator whose
    /// stream is disjoint from the original for any realistic run length.
    /// Used to derive parallel sub-streams from one master seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    t[0] ^= self.s[0];
                    t[1] ^= self.s[1];
                    t[2] ^= self.s[2];
                    t[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = t;
    }
}

impl Rng64 for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The known-answer vector against the authors' reference C
    // implementation lives in tests/substrate.rs with the other generators'.

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..128 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut base = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut jumped = base.clone();
        jumped.jump();
        let a: Vec<u64> = (0..1024).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..1024).map(|_| jumped.next_u64()).collect();
        let overlap = a.iter().filter(|x| b.contains(x)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        rng.next_u64();
        let snap = rng.state();
        let a = rng.next_u64();
        let mut restored = Xoshiro256PlusPlus::from_state(snap);
        assert_eq!(restored.next_u64(), a);
    }

    #[test]
    fn equidistribution_smoke_bytes() {
        // Count set bits over many words: should be very close to half.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let ones: u64 = (0..20_000)
            .map(|_| rng.next_u64().count_ones() as u64)
            .sum();
        let total = 20_000u64 * 64;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.005, "bit fraction {frac}");
    }
}
