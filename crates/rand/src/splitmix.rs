//! SplitMix64: the canonical seeding generator (Steele, Lea, Flood 2014).

use crate::Rng64;

/// SplitMix64 generator.
///
/// A tiny, very fast generator with a 64-bit state that traverses all 2⁶⁴
/// values. Statistically good enough for seeding and stream derivation; for
/// simulation use [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus), which is
/// seeded from this type exactly as its authors recommend.
///
/// # Example
///
/// ```
/// use pp_rand::{Rng64, SplitMix64};
///
/// let mut sm = SplitMix64::new(7);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(7).next_u64(), a); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed, including 0, is fine.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the current state (for checkpointing executions).
    pub fn state(&self) -> [u64; 1] {
        [self.state]
    }

    /// Builds a generator from an explicit state. Every state is valid.
    pub fn from_state(state: [u64; 1]) -> Self {
        Self { state: state[0] }
    }

    /// One finalization step of SplitMix64: a strong 64-bit mix of `x`.
    ///
    /// Useful as a standalone hash for deriving seeds from coordinates, e.g.
    /// `mix64(base ^ mix64(index))`.
    pub fn mix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The known-answer vector against the public-domain reference
    // implementation lives in tests/substrate.rs with the other generators'.

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut sm = SplitMix64::new(99);
            (0..32).map(|_| sm.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut sm = SplitMix64::new(99);
            (0..32).map(|_| sm.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Injectivity spot check over a contiguous range.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(SplitMix64::mix64(x)));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut sm = SplitMix64::new(0);
        assert_ne!(sm.next_u64(), 0);
    }
}
