//! Weighted index sampling: a Fenwick-tree sampler for dynamic weights and an
//! alias table for static weights.

use crate::sumtree::TransferEffect;
use crate::Rng64;
use std::error::Error;
use std::fmt;

/// Errors from constructing or updating weighted samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight collection was empty.
    Empty,
    /// All weights were zero, so no index can be drawn.
    AllZero,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of slots in the sampler.
        len: usize,
    },
    /// The total weight was too small for the requested draw (e.g. a
    /// distinct pair needs total ≥ 2).
    TotalTooSmall {
        /// Current total weight.
        total: u64,
        /// Minimum total required by the operation.
        required: u64,
    },
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::Empty => write!(f, "weight collection is empty"),
            WeightedError::AllZero => write!(f, "all weights are zero"),
            WeightedError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for sampler of size {len}")
            }
            WeightedError::TotalTooSmall { total, required } => {
                write!(f, "total weight {total} is below the required {required}")
            }
        }
    }
}

impl Error for WeightedError {}

/// One 32-bit Lemire draw in `[0, bound)` from the pre-drawn word half `x`,
/// falling back to fresh words on the (rare, probability `< bound / 2^32`)
/// rejection path.
#[inline(always)]
fn lemire32<R: Rng64 + ?Sized>(rng: &mut R, x: u32, bound: u32) -> u64 {
    debug_assert!(bound > 0);
    let m = (x as u64) * (bound as u64);
    if (m as u32) < bound {
        return lemire32_cold(rng, m, bound);
    }
    m >> 32
}

/// The rejection tail of [`lemire32`]: computes the exact threshold
/// `2^32 mod bound` (one division — why this path is kept out of line) and
/// redraws until the low half clears it.
#[cold]
#[inline(never)]
fn lemire32_cold<R: Rng64 + ?Sized>(rng: &mut R, mut m: u64, bound: u32) -> u64 {
    let threshold = bound.wrapping_neg() % bound;
    while (m as u32) < threshold {
        m = (rng.next_u64() >> 32) * (bound as u64);
    }
    m >> 32
}

/// Draws the two targets of a fused ordered-pair sample: `ta ∈ [0, total)`
/// for the initiator descent and `tb ∈ [0, total − 1)` for the renumbered
/// responder descent.
///
/// When `total` fits in 32 bits — every population-protocol configuration up
/// to `n = 2^32` agents — both targets come from a **single** 64-bit word:
/// the upper half feeds the initiator draw and the lower half the responder
/// draw, each an unbiased 32-bit Lemire multiply-shift with its own
/// rejection fallback. Halving the RNG calls and 128-bit multiplies
/// measurably shortens the serial dependency chain of the count engine's
/// interaction step. Totals above 32 bits take two independent 64-bit
/// [`Rng64::below`] draws instead.
///
/// Shared by [`FenwickSampler::sample_pair_distinct`] and
/// [`SumTreeSampler::sample_pair_distinct`](crate::SumTreeSampler::sample_pair_distinct)
/// so the two samplers stay draw-for-draw identical on the same RNG stream.
#[inline(always)]
pub(crate) fn pair_targets<R: Rng64 + ?Sized>(rng: &mut R, total: u64) -> (u64, u64) {
    debug_assert!(total >= 2);
    if total <= u32::MAX as u64 {
        let word = rng.next_u64();
        let ta = lemire32(rng, (word >> 32) as u32, total as u32);
        let tb = lemire32(rng, word as u32, (total - 1) as u32);
        (ta, tb)
    } else {
        let ta = rng.below(total);
        let tb = rng.below(total - 1);
        (ta, tb)
    }
}

/// Dynamic weighted sampler over integer weights, backed by a Fenwick
/// (binary indexed) tree.
///
/// Supports `O(log k)` weight updates and `O(log k)` draws, where `k` is the
/// number of slots. This is the sampler behind the count-based simulation
/// engine: slot = agent state, weight = number of agents in that state.
///
/// # Example
///
/// ```
/// use pp_rand::{FenwickSampler, Rng64, Xoshiro256PlusPlus};
///
/// let mut s = FenwickSampler::from_weights(&[3, 0, 7]).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
/// let i = s.sample(&mut rng).unwrap();
/// assert!(i == 0 || i == 2);
/// s.add(1, 5).unwrap(); // slot 1 now has weight 5
/// assert_eq!(s.total(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenwickSampler {
    /// 1-based Fenwick tree over weights, padded to `cap` (a power of two)
    /// zero-weight slots so the select descent needs no bounds branching:
    /// with `cap` a power of two, `tree[cap]` is the grand total and the
    /// descent provably never steps past index `cap`.
    tree: Vec<u64>,
    /// Raw per-slot weights, mirrored alongside the tree so point reads
    /// ([`weight`](Self::weight), the pair-sampling boundary) are `O(1)`.
    weights: Vec<u64>,
    /// Padded capacity: `len.next_power_of_two()`, minimum 1.
    cap: usize,
    total: u64,
}

impl FenwickSampler {
    /// Creates a sampler with `len` zero-weight slots.
    pub fn new(len: usize) -> Self {
        let cap = len.next_power_of_two().max(1);
        Self {
            tree: vec![0; cap + 1],
            weights: vec![0; len],
            cap,
            total: 0,
        }
    }

    /// Creates a sampler from initial weights.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::Empty`] for an empty slice.
    pub fn from_weights(weights: &[u64]) -> Result<Self, WeightedError> {
        if weights.is_empty() {
            return Err(WeightedError::Empty);
        }
        let mut s = Self::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 {
                s.add(i, w as i64).expect("index in range");
            }
        }
        Ok(s)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the sampler has zero slots.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current weight of `index`, in `O(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if `index >= len`.
    pub fn weight(&self, index: usize) -> Result<u64, WeightedError> {
        self.weights
            .get(index)
            .copied()
            .ok_or(WeightedError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            })
    }

    /// All per-slot weights, as a slice (`O(1)` point reads for hot loops).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Adds `delta` (possibly negative) to the weight of `index`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if `index >= len`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the update would make the weight negative.
    #[inline]
    pub fn add(&mut self, index: usize, delta: i64) -> Result<(), WeightedError> {
        let Some(w) = self.weights.get_mut(index) else {
            return Err(WeightedError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        };
        debug_assert!(
            delta >= 0 || *w as i64 >= -delta,
            "weight of slot {index} would become negative"
        );
        *w = (*w as i64 + delta) as u64;
        self.total = (self.total as i64 + delta) as u64;
        // Walk ancestors up to the padded capacity (not just `len`) so the
        // padding nodes — including the `tree[cap]` grand total the
        // branch-free select relies on — stay consistent.
        let mut i = index + 1;
        while i <= self.cap {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
        Ok(())
    }

    /// Moves one unit of weight from slot `from` to slot `to` — the count
    /// engine's "one agent changed state" update — cheaper than
    /// `add(from, -1); add(to, +1)`: the total is untouched and the two
    /// ancestor walks are fused, stopping where the chains merge (every
    /// common ancestor would receive `-1 + 1 = 0`).
    ///
    /// Returns a [`TransferEffect`] describing occupancy changes at the two
    /// endpoints (both `false` for a self-transfer).
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if either slot is out of
    /// range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if slot `from` is empty.
    #[inline]
    pub fn transfer(&mut self, from: usize, to: usize) -> Result<TransferEffect, WeightedError> {
        if from >= self.weights.len() || to >= self.weights.len() {
            return Err(WeightedError::IndexOutOfBounds {
                index: from.max(to),
                len: self.weights.len(),
            });
        }
        debug_assert!(self.weights[from] >= 1, "slot {from} is empty");
        if from == to {
            return Ok(TransferEffect {
                emptied: false,
                populated: false,
            });
        }
        self.weights[from] -= 1;
        self.weights[to] += 1;
        // Both ancestor chains reach the root `cap` (a power of two), so
        // advancing the smaller index until the chains meet visits exactly
        // the ancestors that receive a nonzero net update.
        let mut i = from + 1;
        let mut j = to + 1;
        while i != j {
            if i < j {
                self.tree[i] -= 1;
                i += i & i.wrapping_neg();
            } else {
                self.tree[j] += 1;
                j += j & j.wrapping_neg();
            }
        }
        Ok(TransferEffect {
            emptied: self.weights[from] == 0,
            populated: self.weights[to] == 1,
        })
    }

    /// Grows the sampler by one zero-weight slot and returns its index.
    pub fn push_slot(&mut self) -> usize {
        self.weights.push(0);
        let len = self.weights.len();
        if len > self.cap {
            // Double the padded capacity and rebuild from the raw weights.
            self.cap = len.next_power_of_two();
            self.tree = vec![0; self.cap + 1];
            for i in 0..len {
                let w = self.weights[i];
                if w > 0 {
                    let mut j = i + 1;
                    while j <= self.cap {
                        self.tree[j] += w;
                        j += j & j.wrapping_neg();
                    }
                }
            }
        }
        // Within capacity the new slot has zero weight: every ancestor
        // (padding included) already accounts for it.
        len - 1
    }

    /// Finds the smallest index whose cumulative weight exceeds `target`.
    ///
    /// `target` must be in `[0, total)`.
    ///
    /// The descent is branch-free: whether to take a node is a data-random
    /// coin, so a conditional would mispredict roughly half the time on
    /// every level. With `cap` a power of two, `tree[cap]` holds the grand
    /// total (never taken, as `target < total`), and by induction each
    /// probed index stays `<= cap` — no bounds branching needed.
    #[inline]
    fn select(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let mut pos = 0usize;
        let mut mask = self.cap;
        while mask > 0 {
            let node = self.tree[pos + mask];
            let take = u64::from(node <= target);
            target -= node * take;
            pos += mask * take as usize;
            mask >>= 1;
        }
        pos // 0-based index of the selected slot
    }

    /// [`select`](Self::select) that also returns the cumulative weight
    /// *below* the selected slot (`F(pos)`), which the fused pair sampler
    /// needs to place the initiator's last unit inside the urn.
    #[inline]
    fn select_prefix(&self, target: u64) -> (usize, u64) {
        debug_assert!(target < self.total);
        let mut remaining = target;
        let mut pos = 0usize;
        let mut mask = self.cap;
        while mask > 0 {
            let node = self.tree[pos + mask];
            let take = u64::from(node <= remaining);
            remaining -= node * take;
            pos += mask * take as usize;
            mask >>= 1;
        }
        (pos, target - remaining)
    }

    /// Draws an index with probability proportional to its weight.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::AllZero`] if the total weight is zero.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Result<usize, WeightedError> {
        if self.total == 0 {
            return Err(WeightedError::AllZero);
        }
        Ok(self.select(rng.below(self.total)))
    }

    /// Draws an ordered pair of slots `(i, j)` where `i` is weighted by the
    /// current weights and `j` by the weights with one unit removed from
    /// slot `i` — the distribution of (initiator, responder) states under
    /// the uniformly random scheduler when the weights are agent counts.
    ///
    /// `i == j` is possible whenever slot `i` holds weight ≥ 2 (two distinct
    /// agents in the same state).
    ///
    /// This is the fused form of the four-operation sequence
    /// `sample(); add(i, -1); sample(); add(i, +1)`: it consumes the same
    /// two RNG draws and returns bit-identical results, but performs no tree
    /// writes, so the steady-state cost is exactly two `O(log k)` descents.
    ///
    /// The responder draw works by *renumbering the urn* instead of
    /// modifying it: removing one unit of slot `i` deletes cumulative
    /// position `F(i) + w(i) − 1` (the initiator's last unit), so a raw
    /// responder target `t` maps to position `t + 1` when
    /// `t ≥ F(i) + w(i) − 1` and is unchanged otherwise. A plain `select`
    /// on the unmodified tree then lands on exactly the slot the
    /// decremented urn would have produced.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::TotalTooSmall`] if the total weight is < 2.
    ///
    /// # Example
    ///
    /// ```
    /// use pp_rand::{FenwickSampler, Xoshiro256PlusPlus};
    ///
    /// let s = FenwickSampler::from_weights(&[1, 0, 1]).unwrap();
    /// let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    /// let (i, j) = s.sample_pair_distinct(&mut rng).unwrap();
    /// assert_ne!(i, j); // single-unit slots can never pair with themselves
    /// ```
    #[inline]
    pub fn sample_pair_distinct<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<(usize, usize), WeightedError> {
        if self.total < 2 {
            return Err(WeightedError::TotalTooSmall {
                total: self.total,
                required: 2,
            });
        }
        let (ta, t) = pair_targets(rng, self.total);
        let (i, below_i) = self.select_prefix(ta);
        let removed_unit = below_i + self.weights[i] - 1;
        let j = self.select(t + u64::from(t >= removed_unit));
        Ok((i, j))
    }
}

/// Static `O(1)` weighted sampler (Walker's alias method, Vose's algorithm).
///
/// Build once in `O(k)`, draw in `O(1)`. Used for sampling from fixed
/// distributions such as theoretical reference laws in tests.
///
/// # Example
///
/// ```
/// use pp_rand::{AliasTable, Rng64, Xoshiro256PlusPlus};
///
/// let t = AliasTable::new(&[0.5, 0.25, 0.25]).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
/// assert!(t.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (need not sum to 1).
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::Empty`] for an empty slice and
    /// [`WeightedError::AllZero`] when the weights sum to zero.
    pub fn new(weights: &[f64]) -> Result<Self, WeightedError> {
        if weights.is_empty() {
            return Err(WeightedError::Empty);
        }
        let total: f64 = weights.iter().sum();
        // NaN-safe: a NaN total must also be rejected, hence the negation.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(total > 0.0) {
            return Err(WeightedError::AllZero);
        }
        let k = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut alias = vec![0usize; k];
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: set to 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has zero slots.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.index(self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(12345)
    }

    #[test]
    fn fenwick_matches_naive_prefix_sums() {
        let weights = [5u64, 0, 3, 9, 1, 0, 0, 2, 11];
        let s = FenwickSampler::from_weights(&weights).unwrap();
        assert_eq!(s.total(), weights.iter().sum::<u64>());
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(s.weight(i).unwrap(), w);
        }
    }

    #[test]
    fn fenwick_select_boundaries() {
        let s = FenwickSampler::from_weights(&[2, 3, 5]).unwrap();
        // Cumulative: [0,2), [2,5), [5,10).
        assert_eq!(s.select(0), 0);
        assert_eq!(s.select(1), 0);
        assert_eq!(s.select(2), 1);
        assert_eq!(s.select(4), 1);
        assert_eq!(s.select(5), 2);
        assert_eq!(s.select(9), 2);
    }

    #[test]
    fn fenwick_sampling_distribution() {
        let weights = [1u64, 2, 3, 4];
        let s = FenwickSampler::from_weights(&weights).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[s.sample(&mut r).unwrap()] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = draws as f64 * w as f64 / 10.0;
            let dev = (counts[i] as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "slot {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn fenwick_dynamic_updates() {
        let mut s = FenwickSampler::new(4);
        assert_eq!(s.total(), 0);
        assert!(matches!(s.sample(&mut rng()), Err(WeightedError::AllZero)));
        s.add(2, 10).unwrap();
        assert_eq!(s.weight(2).unwrap(), 10);
        s.add(2, -10).unwrap();
        assert_eq!(s.total(), 0);
        s.add(0, 1).unwrap();
        assert_eq!(s.sample(&mut rng()).unwrap(), 0);
        assert!(s.add(4, 1).is_err());
    }

    #[test]
    fn fenwick_push_slot_preserves_weights() {
        let mut s = FenwickSampler::from_weights(&[4, 7, 1]).unwrap();
        let idx = s.push_slot();
        assert_eq!(idx, 3);
        assert_eq!(s.weight(3).unwrap(), 0);
        assert_eq!(s.weight(0).unwrap(), 4);
        assert_eq!(s.weight(1).unwrap(), 7);
        assert_eq!(s.weight(2).unwrap(), 1);
        s.add(3, 9).unwrap();
        assert_eq!(s.total(), 21);
        // grow repeatedly and re-check integrity
        for k in 0..20 {
            let i = s.push_slot();
            s.add(i, k + 1).unwrap();
        }
        let mut expect = vec![4u64, 7, 1, 9];
        expect.extend((0..20).map(|k| k + 1));
        for (i, &w) in expect.iter().enumerate() {
            assert_eq!(s.weight(i).unwrap(), w, "slot {i}");
        }
    }

    #[test]
    fn fused_pair_matches_add_roundtrip() {
        // Given the same pair of targets, the fused sampler must agree
        // exactly with the remove-draw-restore sequence it replaces: the urn
        // renumbering is pure index arithmetic over an unmodified tree.
        // `pair_targets` is called on identical RNG states on both sides, so
        // the fused draw consumes the very targets the reference selects by.
        let weights = [5u64, 0, 3, 9, 1, 0, 0, 2, 11];
        let mut reference = FenwickSampler::from_weights(&weights).unwrap();
        let fused = reference.clone();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..10_000 {
            let (ta, tb) = pair_targets(&mut r1, reference.total());
            let i = reference.select(ta);
            reference.add(i, -1).unwrap();
            let j = reference.select(tb);
            reference.add(i, 1).unwrap();
            assert_eq!(fused.sample_pair_distinct(&mut r2).unwrap(), (i, j));
        }
    }

    #[test]
    fn fused_pair_same_slot_needs_multiplicity() {
        // A slot with weight 1 can never be both initiator and responder.
        let s = FenwickSampler::from_weights(&[1, 1, 1]).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let (i, j) = s.sample_pair_distinct(&mut r).unwrap();
            assert_ne!(i, j);
        }
        // With multiplicity the same slot can (and eventually does) repeat.
        let s = FenwickSampler::from_weights(&[10, 1]).unwrap();
        let mut seen_same = false;
        for _ in 0..1000 {
            let (i, j) = s.sample_pair_distinct(&mut r).unwrap();
            seen_same |= i == 0 && j == 0;
        }
        assert!(seen_same);
    }

    #[test]
    fn fused_pair_rejects_small_totals() {
        let s = FenwickSampler::new(4);
        assert!(matches!(
            s.sample_pair_distinct(&mut rng()),
            Err(WeightedError::TotalTooSmall {
                total: 0,
                required: 2
            })
        ));
        let mut s = FenwickSampler::new(4);
        s.add(1, 1).unwrap();
        assert!(matches!(
            s.sample_pair_distinct(&mut rng()),
            Err(WeightedError::TotalTooSmall {
                total: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn fenwick_empty_errors() {
        assert!(matches!(
            FenwickSampler::from_weights(&[]),
            Err(WeightedError::Empty)
        ));
    }

    #[test]
    fn alias_distribution_matches_weights() {
        let weights = [0.1, 0.0, 0.4, 0.5];
        let t = AliasTable::new(&weights).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[t.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let expect = draws as f64 * w;
            let dev = (counts[i] as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "slot {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn alias_rejects_degenerate_input() {
        assert!(matches!(AliasTable::new(&[]), Err(WeightedError::Empty)));
        assert!(matches!(
            AliasTable::new(&[0.0, 0.0]),
            Err(WeightedError::AllZero)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WeightedError::IndexOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(WeightedError::Empty.to_string().contains("empty"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fenwick_weights_roundtrip(weights in proptest::collection::vec(0u64..1000, 1..64)) {
            let s = FenwickSampler::from_weights(&weights).unwrap();
            prop_assert_eq!(s.total(), weights.iter().sum::<u64>());
            for (i, &w) in weights.iter().enumerate() {
                prop_assert_eq!(s.weight(i).unwrap(), w);
            }
        }

        #[test]
        fn fenwick_sample_never_returns_zero_weight_slot(
            weights in proptest::collection::vec(0u64..5, 2..32),
            seed in 0u64..1000,
        ) {
            let total: u64 = weights.iter().sum();
            prop_assume!(total > 0);
            let s = FenwickSampler::from_weights(&weights).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            for _ in 0..64 {
                let i = s.sample(&mut rng).unwrap();
                prop_assert!(weights[i] > 0, "sampled zero-weight slot {}", i);
            }
        }

        #[test]
        fn fused_pair_agrees_with_roundtrip_for_random_weights(
            weights in proptest::collection::vec(0u64..20, 2..48),
            seed in 0u64..10_000,
        ) {
            let total: u64 = weights.iter().sum();
            prop_assume!(total >= 2);
            let mut reference = FenwickSampler::from_weights(&weights).unwrap();
            let fused = reference.clone();
            let mut r1 = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut r2 = Xoshiro256PlusPlus::seed_from_u64(seed);
            for _ in 0..64 {
                // Same scheme as `fused_pair_matches_add_roundtrip`: both
                // sides consume identical targets, the reference applies them
                // through an actual remove-draw-restore round-trip.
                let (ta, tb) = super::pair_targets(&mut r1, reference.total());
                let i = reference.select(ta);
                reference.add(i, -1).unwrap();
                let j = reference.select(tb);
                reference.add(i, 1).unwrap();
                prop_assert_eq!(fused.sample_pair_distinct(&mut r2).unwrap(), (i, j));
            }
        }

        #[test]
        fn fenwick_updates_agree_with_model(
            ops in proptest::collection::vec((0usize..16, 0i64..50), 1..100)
        ) {
            let mut model = [0i64; 16];
            let mut s = FenwickSampler::new(16);
            for (idx, delta) in ops {
                model[idx] += delta;
                s.add(idx, delta).unwrap();
            }
            for (i, &w) in model.iter().enumerate() {
                prop_assert_eq!(s.weight(i).unwrap() as i64, w);
            }
        }
    }
}
