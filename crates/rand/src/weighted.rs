//! Weighted index sampling: a Fenwick-tree sampler for dynamic weights and an
//! alias table for static weights.

use crate::Rng64;
use std::error::Error;
use std::fmt;

/// Errors from constructing or updating weighted samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight collection was empty.
    Empty,
    /// All weights were zero, so no index can be drawn.
    AllZero,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of slots in the sampler.
        len: usize,
    },
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::Empty => write!(f, "weight collection is empty"),
            WeightedError::AllZero => write!(f, "all weights are zero"),
            WeightedError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for sampler of size {len}")
            }
        }
    }
}

impl Error for WeightedError {}

/// Dynamic weighted sampler over integer weights, backed by a Fenwick
/// (binary indexed) tree.
///
/// Supports `O(log k)` weight updates and `O(log k)` draws, where `k` is the
/// number of slots. This is the sampler behind the count-based simulation
/// engine: slot = agent state, weight = number of agents in that state.
///
/// # Example
///
/// ```
/// use pp_rand::{FenwickSampler, Rng64, Xoshiro256PlusPlus};
///
/// let mut s = FenwickSampler::from_weights(&[3, 0, 7]).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
/// let i = s.sample(&mut rng).unwrap();
/// assert!(i == 0 || i == 2);
/// s.add(1, 5).unwrap(); // slot 1 now has weight 5
/// assert_eq!(s.total(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenwickSampler {
    /// 1-based Fenwick tree over weights.
    tree: Vec<u64>,
    len: usize,
    total: u64,
}

impl FenwickSampler {
    /// Creates a sampler with `len` zero-weight slots.
    pub fn new(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
            len,
            total: 0,
        }
    }

    /// Creates a sampler from initial weights.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::Empty`] for an empty slice.
    pub fn from_weights(weights: &[u64]) -> Result<Self, WeightedError> {
        if weights.is_empty() {
            return Err(WeightedError::Empty);
        }
        let mut s = Self::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 {
                s.add(i, w as i64).expect("index in range");
            }
        }
        Ok(s)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sampler has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current weight of `index`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if `index >= len`.
    pub fn weight(&self, index: usize) -> Result<u64, WeightedError> {
        if index >= self.len {
            return Err(WeightedError::IndexOutOfBounds {
                index,
                len: self.len,
            });
        }
        Ok(self.prefix_sum(index + 1) - self.prefix_sum(index))
    }

    /// Adds `delta` (possibly negative) to the weight of `index`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::IndexOutOfBounds`] if `index >= len`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the update would make the weight negative.
    pub fn add(&mut self, index: usize, delta: i64) -> Result<(), WeightedError> {
        if index >= self.len {
            return Err(WeightedError::IndexOutOfBounds {
                index,
                len: self.len,
            });
        }
        debug_assert!(
            delta >= 0 || self.weight(index).unwrap() as i64 >= -delta,
            "weight of slot {index} would become negative"
        );
        self.total = (self.total as i64 + delta) as u64;
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
        Ok(())
    }

    /// Grows the sampler by one zero-weight slot and returns its index.
    pub fn push_slot(&mut self) -> usize {
        self.len += 1;
        self.tree.push(0);
        // The new Fenwick node must cover the appropriate prefix range.
        let i = self.len;
        let lsb = i & i.wrapping_neg();
        let covered = self.prefix_sum(i - 1) - self.prefix_sum(i - lsb);
        self.tree[i] = covered;
        self.len - 1
    }

    fn prefix_sum(&self, mut i: usize) -> u64 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Finds the smallest index whose cumulative weight exceeds `target`.
    ///
    /// `target` must be in `[0, total)`.
    fn select(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let mut pos = 0usize;
        let mut mask = self.len.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos // 0-based index of the selected slot
    }

    /// Draws an index with probability proportional to its weight.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::AllZero`] if the total weight is zero.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Result<usize, WeightedError> {
        if self.total == 0 {
            return Err(WeightedError::AllZero);
        }
        Ok(self.select(rng.below(self.total)))
    }
}

/// Static `O(1)` weighted sampler (Walker's alias method, Vose's algorithm).
///
/// Build once in `O(k)`, draw in `O(1)`. Used for sampling from fixed
/// distributions such as theoretical reference laws in tests.
///
/// # Example
///
/// ```
/// use pp_rand::{AliasTable, Rng64, Xoshiro256PlusPlus};
///
/// let t = AliasTable::new(&[0.5, 0.25, 0.25]).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
/// assert!(t.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (need not sum to 1).
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::Empty`] for an empty slice and
    /// [`WeightedError::AllZero`] when the weights sum to zero.
    pub fn new(weights: &[f64]) -> Result<Self, WeightedError> {
        if weights.is_empty() {
            return Err(WeightedError::Empty);
        }
        let total: f64 = weights.iter().sum();
        // NaN-safe: a NaN total must also be rejected, hence the negation.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(total > 0.0) {
            return Err(WeightedError::AllZero);
        }
        let k = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut alias = vec![0usize; k];
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: set to 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has zero slots.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.index(self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(12345)
    }

    #[test]
    fn fenwick_matches_naive_prefix_sums() {
        let weights = [5u64, 0, 3, 9, 1, 0, 0, 2, 11];
        let s = FenwickSampler::from_weights(&weights).unwrap();
        assert_eq!(s.total(), weights.iter().sum::<u64>());
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(s.weight(i).unwrap(), w);
        }
    }

    #[test]
    fn fenwick_select_boundaries() {
        let s = FenwickSampler::from_weights(&[2, 3, 5]).unwrap();
        // Cumulative: [0,2), [2,5), [5,10).
        assert_eq!(s.select(0), 0);
        assert_eq!(s.select(1), 0);
        assert_eq!(s.select(2), 1);
        assert_eq!(s.select(4), 1);
        assert_eq!(s.select(5), 2);
        assert_eq!(s.select(9), 2);
    }

    #[test]
    fn fenwick_sampling_distribution() {
        let weights = [1u64, 2, 3, 4];
        let s = FenwickSampler::from_weights(&weights).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[s.sample(&mut r).unwrap()] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = draws as f64 * w as f64 / 10.0;
            let dev = (counts[i] as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "slot {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn fenwick_dynamic_updates() {
        let mut s = FenwickSampler::new(4);
        assert_eq!(s.total(), 0);
        assert!(matches!(s.sample(&mut rng()), Err(WeightedError::AllZero)));
        s.add(2, 10).unwrap();
        assert_eq!(s.weight(2).unwrap(), 10);
        s.add(2, -10).unwrap();
        assert_eq!(s.total(), 0);
        s.add(0, 1).unwrap();
        assert_eq!(s.sample(&mut rng()).unwrap(), 0);
        assert!(s.add(4, 1).is_err());
    }

    #[test]
    fn fenwick_push_slot_preserves_weights() {
        let mut s = FenwickSampler::from_weights(&[4, 7, 1]).unwrap();
        let idx = s.push_slot();
        assert_eq!(idx, 3);
        assert_eq!(s.weight(3).unwrap(), 0);
        assert_eq!(s.weight(0).unwrap(), 4);
        assert_eq!(s.weight(1).unwrap(), 7);
        assert_eq!(s.weight(2).unwrap(), 1);
        s.add(3, 9).unwrap();
        assert_eq!(s.total(), 21);
        // grow repeatedly and re-check integrity
        for k in 0..20 {
            let i = s.push_slot();
            s.add(i, k + 1).unwrap();
        }
        let mut expect = vec![4u64, 7, 1, 9];
        expect.extend((0..20).map(|k| k + 1));
        for (i, &w) in expect.iter().enumerate() {
            assert_eq!(s.weight(i).unwrap(), w, "slot {i}");
        }
    }

    #[test]
    fn fenwick_empty_errors() {
        assert!(matches!(
            FenwickSampler::from_weights(&[]),
            Err(WeightedError::Empty)
        ));
    }

    #[test]
    fn alias_distribution_matches_weights() {
        let weights = [0.1, 0.0, 0.4, 0.5];
        let t = AliasTable::new(&weights).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[t.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let expect = draws as f64 * w;
            let dev = (counts[i] as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "slot {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn alias_rejects_degenerate_input() {
        assert!(matches!(AliasTable::new(&[]), Err(WeightedError::Empty)));
        assert!(matches!(
            AliasTable::new(&[0.0, 0.0]),
            Err(WeightedError::AllZero)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WeightedError::IndexOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(WeightedError::Empty.to_string().contains("empty"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fenwick_weights_roundtrip(weights in proptest::collection::vec(0u64..1000, 1..64)) {
            let s = FenwickSampler::from_weights(&weights).unwrap();
            prop_assert_eq!(s.total(), weights.iter().sum::<u64>());
            for (i, &w) in weights.iter().enumerate() {
                prop_assert_eq!(s.weight(i).unwrap(), w);
            }
        }

        #[test]
        fn fenwick_sample_never_returns_zero_weight_slot(
            weights in proptest::collection::vec(0u64..5, 2..32),
            seed in 0u64..1000,
        ) {
            let total: u64 = weights.iter().sum();
            prop_assume!(total > 0);
            let s = FenwickSampler::from_weights(&weights).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            for _ in 0..64 {
                let i = s.sample(&mut rng).unwrap();
                prop_assert!(weights[i] > 0, "sampled zero-weight slot {}", i);
            }
        }

        #[test]
        fn fenwick_updates_agree_with_model(
            ops in proptest::collection::vec((0usize..16, 0i64..50), 1..100)
        ) {
            let mut model = [0i64; 16];
            let mut s = FenwickSampler::new(16);
            for (idx, delta) in ops {
                model[idx] += delta;
                s.add(idx, delta).unwrap();
            }
            for (i, &w) in model.iter().enumerate() {
                prop_assert_eq!(s.weight(i).unwrap() as i64, w);
            }
        }
    }
}
