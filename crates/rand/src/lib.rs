//! Deterministic pseudo-random number generation for population-protocol
//! simulation.
//!
//! The uniformly random scheduler of the population-protocol model draws one
//! ordered pair of distinct agents per step, so a simulation of `Θ(n log n)`
//! interactions over thousands of seeds needs an RNG that is
//!
//! * **fast** — a handful of arithmetic operations per draw,
//! * **deterministic** — the same seed reproduces the same execution on every
//!   machine, and
//! * **splittable** — independent streams for parallel experiment sweeps.
//!
//! This crate provides exactly that and nothing more:
//!
//! * [`SplitMix64`] — seeding generator and stream deriver,
//! * [`Xoshiro256PlusPlus`] — the default simulation RNG,
//! * [`Pcg32`] — an independent family used to cross-check statistical tests,
//! * the [`Rng64`] trait with unbiased bounded sampling
//!   ([`Rng64::below`], Lemire's method), fair coins, unit-interval doubles,
//!   geometric sampling, and distinct-pair sampling for interaction schedules,
//! * discrete distributions for batch simulation: [`Hypergeometric`]
//!   (inverse-CDF / HRUA) — the per-class draw behind the count engine's
//!   collision-free interaction batches — and its with-replacement sibling
//!   [`Binomial`] (inverse-CDF / BTRD), plus
//!   [`multivariate_hypergeometric`], the reference implementation of the
//!   conditional decomposition (the engine inlines an order-optimized copy;
//!   the two are pinned draw-for-draw equivalent by its tests), and
//!   [`contingency_table`], the fixed-margin table law behind the count
//!   engine's contingency round mode (nested conditional rows),
//! * weighted samplers: [`FenwickSampler`] (dynamic weights, `O(log k)`
//!   updates and draws), [`SumTreeSampler`] (same queries on a complete
//!   binary sum tree whose fixed-depth branch-free walks feed the count
//!   engine's hot loop — draw-for-draw identical to the Fenwick sampler),
//!   and [`AliasTable`] (static weights, `O(1)` draws),
//! * [`SeedSequence`] — reproducible derivation of per-run seeds.
//!
//! # Example
//!
//! ```
//! use pp_rand::{Rng64, SeedSequence, Xoshiro256PlusPlus};
//!
//! let mut seeds = SeedSequence::new(42);
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(seeds.next_seed());
//! let (u, v) = rng.distinct_pair(10);
//! assert_ne!(u, v);
//! assert!(u < 10 && v < 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binomial;
mod contingency;
mod geometric;
mod hypergeom;
mod lnfact;
mod pcg;
mod rng;
mod seq;
mod snapshot;
mod splitmix;
mod sumtree;
mod weighted;
mod xoshiro;

pub use binomial::Binomial;
pub use contingency::contingency_table;
pub use geometric::Geometric;
pub use hypergeom::{multivariate_hypergeometric, Hypergeometric};
pub use pcg::Pcg32;
pub use rng::Rng64;
pub use seq::SeedSequence;
pub use snapshot::RngSnapshot;
pub use splitmix::SplitMix64;
pub use sumtree::{SumTreeSampler, TransferEffect};
pub use weighted::{AliasTable, FenwickSampler, WeightedError};
pub use xoshiro::Xoshiro256PlusPlus;
