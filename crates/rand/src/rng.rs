//! The [`Rng64`] trait: a minimal, fast 64-bit generator interface with the
//! derived sampling operations the simulator needs.

/// A deterministic generator of 64-bit words, plus derived sampling helpers.
///
/// Implementors only provide [`next_u64`](Rng64::next_u64); everything else
/// has a provided, unbiased implementation. The trait is object-safe so the
/// engine can hold `&mut dyn Rng64` where monomorphization is not worth it.
pub trait Rng64 {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of a 64-bit draw,
    /// which is the higher-quality half for `xoshiro`-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random integer in `[0, bound)` using Lemire's
    /// multiply-shift rejection method (unbiased, usually one multiply).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng64::below requires a non-zero bound");
        // Lemire (2019): "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            // threshold = 2^64 mod bound
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly random `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a fair coin flip.
    fn coin(&mut self) -> bool {
        // The top bit of the next word.
        self.next_u64() >> 63 == 1
    }

    /// Returns `true` with probability `num / den` (exact rational Bernoulli).
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    fn ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "invalid probability {num}/{den}");
        self.below(den) < num
    }

    /// Returns a double uniform on `[0, 1)` with 53 random mantissa bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws an ordered pair of **distinct** indices `(initiator, responder)`
    /// uniformly from `[0, n) × [0, n)` — the uniformly random scheduler of
    /// the population-protocol model.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    fn distinct_pair(&mut self, n: usize) -> (usize, usize) {
        assert!(n >= 2, "distinct_pair requires a population of at least 2");
        let a = self.index(n);
        // Sample b uniformly from the n-1 values != a without rejection.
        let mut b = self.index(n - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    /// Counts heads before the first tail in a sequence of fair coin flips —
    /// a geometric(1/2) sample, computed from leading ones of random words.
    ///
    /// Matches the level distribution of the paper's lottery game
    /// (`QuickElimination`): `Pr[result = k] = 2^{-(k+1)}`.
    fn heads_run(&mut self) -> u32 {
        let mut total = 0u32;
        loop {
            let word = self.next_u64();
            let ones = word.leading_ones();
            total += ones;
            if ones < 64 {
                return total;
            }
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = rng();
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_bound_panics() {
        rng().below(0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = rng();
        let bound = 10u64;
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[r.below(bound) as usize] += 1;
        }
        let expect = draws as f64 / bound as f64;
        for &c in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn distinct_pair_never_equal_and_uniform_over_ordered_pairs() {
        let mut r = rng();
        let n = 5;
        let mut counts = vec![0u32; n * n];
        let draws = 200_000;
        for _ in 0..draws {
            let (a, b) = r.distinct_pair(n);
            assert_ne!(a, b);
            counts[a * n + b] += 1;
        }
        let pairs = (n * (n - 1)) as f64;
        let expect = draws as f64 / pairs;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    assert_eq!(counts[a * n + b], 0);
                } else {
                    let dev = (counts[a * n + b] as f64 - expect).abs() / expect;
                    assert!(dev < 0.05, "pair ({a},{b}) deviates {dev:.3}");
                }
            }
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut r = rng();
        let heads: u32 = (0..100_000).map(|_| u32::from(r.coin())).sum();
        assert!((heads as i64 - 50_000).abs() < 1_500, "heads = {heads}");
    }

    #[test]
    fn heads_run_matches_geometric_mean() {
        // E[heads before first tail] = 1 for fair coins.
        let mut r = rng();
        let total: u64 = (0..100_000).map(|_| u64::from(r.heads_run())).sum();
        let mean = total as f64 / 100_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn heads_run_tail_probability_halves() {
        let mut r = rng();
        let draws = 200_000;
        let mut ge = [0u32; 8];
        for _ in 0..draws {
            let h = r.heads_run() as usize;
            for (k, slot) in ge.iter_mut().enumerate() {
                if h >= k {
                    *slot += 1;
                }
            }
        }
        // Pr[run >= k] = 2^-k.
        for (k, &c) in ge.iter().enumerate() {
            let expect = draws as f64 * 0.5f64.powi(k as i32);
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.12, "P[run >= {k}] deviates {dev:.3}");
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ratio_matches_probability() {
        let mut r = rng();
        let hits: u32 = (0..90_000).map(|_| u32::from(r.ratio(1, 3))).sum();
        let p = hits as f64 / 90_000.0;
        assert!((p - 1.0 / 3.0).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn trait_object_usable() {
        let mut r = rng();
        let dyn_rng: &mut dyn Rng64 = &mut r;
        assert!(dyn_rng.below(10) < 10);
    }
}
