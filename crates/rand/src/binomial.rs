//! Binomial sampling: exact inverse-CDF for small means, squeeze-accepted
//! transformed rejection (BTRD, the BTPE-style algorithm) beyond.
//!
//! The count engine's batch tier and the experiment harness need
//! `Binomial(n, p)` draws across the whole parameter range — from a handful
//! of coin flips up to `n = 2^30` — at a cost independent of `n`:
//!
//! * **BINV** (`n·min(p,q) < 10`): exact sequential inversion of the CDF
//!   starting at 0. `O(np)` expected iterations of one multiply each; with
//!   the mean below 10 this is a short, branch-predictable loop.
//! * **BTRD** (`n·min(p,q) ≥ 10`): Hörmann's transformed-rejection sampler
//!   (W. Hörmann, *The generation of binomial random variates*, 1993) — the
//!   same family as Kachitvichyanukul & Schmeiser's BTPE. A triangular
//!   region of the transformed hat is accepted immediately (~86% of draws),
//!   near-mode proposals are resolved by an exact pmf-ratio recurrence, and
//!   the tail uses a quadratic **squeeze** around the log pmf ratio so the
//!   two log-factorial evaluations run only on the sliver the squeeze cannot
//!   decide. `O(1)` expected time for any `n`.
//!
//! Both paths are exact up to `f64` resolution of the uniform inputs — the
//! same caveat [`Geometric`](crate::Geometric) carries — and are pinned
//! against each other and against the exact pmf by chi-square tests.

use crate::lnfact::ln_factorial;
use crate::Rng64;

/// Below this mean (after the `p → 1−p` reduction) sampling inverts the CDF
/// sequentially; above it the BTRD rejection sampler is asymptotically
/// cheaper.
const BINV_CUTOFF: f64 = 10.0;

/// A binomial distribution sampler: the number of successes in `n`
/// independent Bernoulli(`p`) trials.
///
/// # Example
///
/// ```
/// use pp_rand::{Binomial, Rng64, Xoshiro256PlusPlus};
///
/// let b = Binomial::new(1 << 30, 0.25).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let x = b.sample(&mut rng);
/// assert!(x <= 1 << 30);
/// // Within ~6 standard deviations of the mean.
/// assert!((x as f64 - b.mean()).abs() < 6.0 * (b.mean() * 0.75).sqrt());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a sampler for `n` trials with success probability
    /// `p ∈ [0, 1]`.
    ///
    /// Returns `None` if `p` is NaN or outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Option<Self> {
        if !(0.0..=1.0).contains(&p) {
            return None;
        }
        Some(Self { n, p })
    }

    /// The number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// The variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draws one sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p == 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        // Reduce to p ≤ ½ (X(n, p) = n − X(n, 1−p)) so both algorithms work
        // on their stable side.
        let flipped = self.p > 0.5;
        let p = if flipped { 1.0 - self.p } else { self.p };
        let x = if self.n as f64 * p < BINV_CUTOFF {
            binv(rng, self.n, p)
        } else {
            btrd(rng, self.n, p)
        };
        if flipped {
            self.n - x
        } else {
            x
        }
    }
}

/// Sequential CDF inversion (BINV). Requires `p ≤ ½` and a mean below
/// [`BINV_CUTOFF`], which keeps `q^n` far from underflow and the loop short.
fn binv<R: Rng64 + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    // q^n through ln_1p: exact scale even for tiny p at huge n.
    let mut pmf = (n as f64 * (-p).ln_1p()).exp();
    let mut u = rng.unit_f64();
    let mut x = 0u64;
    loop {
        if u < pmf {
            return x;
        }
        u -= pmf;
        if x == n {
            // f64 residue past the full support: the CDF sums to 1 exactly
            // in infinite precision, so this is the correct clamp.
            return n;
        }
        x += 1;
        pmf *= a / x as f64 - s;
    }
}

/// Hörmann's BTRD transformed rejection. Requires `p ≤ ½` and
/// `n·p ≥ BINV_CUTOFF`.
fn btrd<R: Rng64 + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let np = nf * p;
    let npq = np * q;
    let sqrt_npq = npq.sqrt();
    let ratio = p / q;
    let ln_ratio = p.ln() - q.ln();
    // The mode of the distribution.
    let m = ((nf + 1.0) * p).floor();
    // Hat and squeeze set-up (constants from Hörmann 1993, Table 1).
    let b = 1.15 + 2.53 * sqrt_npq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = np + 0.5;
    let alpha = (2.83 + 5.1 / b) * sqrt_npq;
    let vr = 0.92 - 4.2 / b;
    let urvr = 0.86 * vr;

    loop {
        let mut v = rng.unit_f64();
        let u = if v <= urvr {
            // Triangular core: accepted without any further test.
            let u = v / vr - 0.43;
            let us = 0.5 - u.abs();
            return ((2.0 * a / us + b) * u + c).floor() as u64;
        } else if v >= vr {
            rng.unit_f64() - 0.5
        } else {
            let w = v / vr - 0.93;
            v = vr * rng.unit_f64();
            w.signum() * 0.5 - w
        };
        let us = 0.5 - u.abs();
        let kf = ((2.0 * a / us + b) * u + c).floor();
        // NaN-safe bounds test (`us` can reach 0 at the edge of the proposal
        // interval, sending `kf` to ±∞, which this rejects).
        if !(kf >= 0.0 && kf <= nf) {
            continue;
        }
        let k = kf as u64;
        v = v * alpha / (a / (us * us) + b);
        let km = (kf - m).abs();

        if km <= 15.0 {
            // Near the mode: resolve by the exact pmf-ratio recurrence
            // f(k)/f(m), at most 15 multiplies.
            let g = (nf + 1.0) * ratio;
            let mut f = 1.0;
            if m < kf {
                let mut i = m as u64;
                while i < k {
                    i += 1;
                    f *= g / i as f64 - ratio;
                }
            } else if m > kf {
                let mut i = k;
                while i < m as u64 {
                    i += 1;
                    v *= g / i as f64 - ratio;
                }
            }
            if v <= f {
                return k;
            }
            continue;
        }

        // Tail: quadratic squeeze around the log pmf ratio, then the exact
        // two-sided log-factorial test only where the squeeze is silent.
        v = v.ln();
        let rho = (km / npq) * (((km / 3.0 + 0.625) * km + 1.0 / 6.0) / npq + 0.5);
        let t = -km * km / (2.0 * npq);
        if v < t - rho {
            return k;
        }
        if v > t + rho {
            continue;
        }
        // ln f(k) − ln f(m) = ln C(n,k) − ln C(n,m) + (k − m) ln(p/q).
        let mu = m as u64;
        let lf = ln_factorial(mu) + ln_factorial(n - mu) - ln_factorial(k) - ln_factorial(n - k)
            + (kf - m) * ln_ratio;
        if v <= lf {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(Binomial::new(10, -0.1).is_none());
        assert!(Binomial::new(10, 1.1).is_none());
        assert!(Binomial::new(10, f64::NAN).is_none());
        assert!(Binomial::new(10, 0.0).is_some());
        assert!(Binomial::new(10, 1.0).is_some());
    }

    #[test]
    fn degenerate_parameters() {
        let mut r = rng(1);
        assert_eq!(Binomial::new(0, 0.7).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(55, 0.0).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(55, 1.0).unwrap().sample(&mut r), 55);
    }

    #[test]
    fn samples_stay_in_support() {
        let mut r = rng(2);
        for &(n, p) in &[
            (1u64, 0.5),
            (7, 0.9),
            (40, 0.3),
            (1000, 0.999),
            (1 << 40, 1e-12),
        ] {
            let b = Binomial::new(n, p).unwrap();
            for _ in 0..2000 {
                assert!(b.sample(&mut r) <= n);
            }
        }
    }

    /// Exact pmf via mode-anchored recurrence, normalized (avoids `q^n`
    /// underflow at large `n`).
    fn exact_pmf(n: u64, p: f64) -> Vec<f64> {
        let mode = ((n as f64 + 1.0) * p).floor().min(n as f64) as u64;
        let mut pmf = vec![0.0f64; n as usize + 1];
        pmf[mode as usize] = 1.0;
        let ratio = p / (1.0 - p);
        for k in mode + 1..=n {
            pmf[k as usize] = pmf[k as usize - 1] * (n - k + 1) as f64 / k as f64 * ratio;
        }
        for k in (0..mode).rev() {
            pmf[k as usize] = pmf[k as usize + 1] * (k + 1) as f64 / ((n - k) as f64 * ratio);
        }
        let total: f64 = pmf.iter().sum();
        for v in &mut pmf {
            *v /= total;
        }
        pmf
    }

    /// Chi-square goodness of fit of `draws` samples against the exact pmf,
    /// with the tails pooled so every expected count stays above ~10.
    fn assert_matches_exact_pmf(n: u64, p: f64, draws: u64, seed: u64) {
        let pmf = exact_pmf(n, p);
        let b = Binomial::new(n, p).unwrap();
        let mut r = rng(seed);
        let mut observed = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            observed[b.sample(&mut r) as usize] += 1;
        }
        // Pool k-values into bins with expected count >= 10.
        let mut bins: Vec<(f64, u64)> = Vec::new();
        let (mut e_acc, mut o_acc) = (0.0, 0u64);
        for k in 0..=n as usize {
            e_acc += pmf[k] * draws as f64;
            o_acc += observed[k];
            if e_acc >= 10.0 {
                bins.push((e_acc, o_acc));
                e_acc = 0.0;
                o_acc = 0;
            }
        }
        if let Some(last) = bins.last_mut() {
            last.0 += e_acc;
            last.1 += o_acc;
        }
        assert!(bins.len() >= 3, "degenerate binning for n={n} p={p}");
        let statistic: f64 = bins
            .iter()
            .map(|&(e, o)| (o as f64 - e) * (o as f64 - e) / e)
            .sum();
        let df = bins.len() - 1;
        let critical = pp_stats_critical(df);
        assert!(
            statistic < critical,
            "n={n} p={p}: chi2 {statistic:.1} >= {critical:.1} (df {df})"
        );
    }

    /// Chi-square 0.001 critical value (Wilson–Hilferty; df here is ≥ 3 so
    /// the cube approximation is plenty, and this avoids a dev-dependency on
    /// pp-stats from inside pp-rand).
    fn pp_stats_critical(df: usize) -> f64 {
        let d = df as f64;
        let z = 3.090_232_306_167_813;
        let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
        d * t * t * t
    }

    #[test]
    fn binv_path_matches_exact_pmf() {
        // np < 10 keeps these on the inversion path.
        assert_matches_exact_pmf(30, 0.2, 60_000, 11);
        assert_matches_exact_pmf(9, 0.5, 60_000, 12);
        assert_matches_exact_pmf(500, 0.01, 60_000, 13);
    }

    #[test]
    fn btrd_path_matches_exact_pmf() {
        // np ≥ 10 forces BTRD, including the squeeze/exact tail branches.
        assert_matches_exact_pmf(64, 0.5, 60_000, 21);
        assert_matches_exact_pmf(1000, 0.03, 60_000, 22);
        assert_matches_exact_pmf(4096, 0.7, 60_000, 23);
    }

    #[test]
    fn huge_n_moments() {
        // The pmf cannot be tabulated at n = 2^30; pin mean and variance.
        let b = Binomial::new(1 << 30, 0.37).unwrap();
        let mut r = rng(31);
        let draws = 20_000;
        let samples: Vec<f64> = (0..draws).map(|_| b.sample(&mut r) as f64).collect();
        let mean: f64 = samples.iter().sum::<f64>() / draws as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (draws - 1) as f64;
        let se = (b.variance() / draws as f64).sqrt();
        assert!(
            (mean - b.mean()).abs() < 5.0 * se,
            "mean {mean} vs {}",
            b.mean()
        );
        let rel = (var / b.variance() - 1.0).abs();
        assert!(rel < 0.05, "variance off by {rel:.3}");
    }

    #[test]
    fn moments_across_random_parameters() {
        // See the `proptests` module for the randomized sweep; this pins a
        // hand-picked boundary case at the BINV/BTRD cutoff from both sides.
        for &(n, p, seed) in &[(32u64, 0.3125, 91u64), (33, 0.3030, 92)] {
            let b = Binomial::new(n, p).unwrap();
            let mut r = rng(seed);
            let draws = 50_000;
            let mean: f64 = (0..draws).map(|_| b.sample(&mut r) as f64).sum::<f64>() / draws as f64;
            let se = (b.variance() / draws as f64).sqrt();
            assert!((mean - b.mean()).abs() < 5.0 * se);
        }
    }

    #[test]
    fn flipped_p_is_symmetric_in_law() {
        // X(n, p) and n − X(n, 1−p) must have identical distributions; check
        // by comparing means and a tail probability.
        let n = 200u64;
        let mut r = rng(5);
        let hi = Binomial::new(n, 0.8).unwrap();
        let lo = Binomial::new(n, 0.2).unwrap();
        let draws = 40_000;
        let mean_hi: f64 = (0..draws).map(|_| hi.sample(&mut r) as f64).sum::<f64>() / draws as f64;
        let mean_lo: f64 = (0..draws)
            .map(|_| (n - lo.sample(&mut r)) as f64)
            .sum::<f64>()
            / draws as f64;
        assert!((mean_hi - mean_lo).abs() < 0.2, "{mean_hi} vs {mean_lo}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Xoshiro256PlusPlus;
    use proptest::prelude::*;

    proptest! {
        /// Sample mean and variance track the analytic moments for random
        /// parameters spanning both algorithm paths (5σ / 6-sigma-equivalent
        /// bounds keep the false-positive rate below ~1e-4 per suite run).
        #[test]
        fn sample_moments_match_theory(
            n in 1u64..100_000,
            p_mill in 1u64..1000,
            seed in 0u64..1 << 48,
        ) {
            let p = p_mill as f64 / 1000.0;
            let b = Binomial::new(n, p).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let draws = 1500u64;
            let mut sum = 0.0;
            let mut sum2 = 0.0;
            for _ in 0..draws {
                let x = b.sample(&mut rng) as f64;
                prop_assert!(x <= n as f64);
                sum += x;
                sum2 += x * x;
            }
            let mean = sum / draws as f64;
            let var = (sum2 - sum * sum / draws as f64) / (draws - 1) as f64;
            let se_mean = (b.variance() / draws as f64).sqrt();
            prop_assert!(
                (mean - b.mean()).abs() <= 5.0 * se_mean + 1e-9,
                "n={n} p={p}: mean {mean} vs {}", b.mean()
            );
            // Variance of the sample variance ≈ 2σ⁴/m + κ-term; a 6·√(2/m)
            // relative band holds for every binomial at this sample size.
            let tol = 6.0 * (2.0 / draws as f64).sqrt() * b.variance()
                + 6.0 * b.variance().sqrt() / draws as f64
                + 1e-9;
            prop_assert!(
                (var - b.variance()).abs() <= tol,
                "n={n} p={p}: var {var} vs {}", b.variance()
            );
        }
    }
}
