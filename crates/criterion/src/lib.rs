//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` cannot be fetched. This crate reimplements the exact API
//! surface the workspace's benches use — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher`], [`criterion_group!`], [`criterion_main!`] —
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery. Swapping back to the real crate is a one-line
//! change in the workspace manifest; no bench source needs to change.
//!
//! Measurement model: each benchmark is warmed up for `warm_up_time`, then
//! timed over `sample_size` samples, where each sample runs the iteration
//! closure enough times to fill roughly `measurement_time / sample_size` of
//! wall clock. The median per-iteration time is reported on stdout.
//!
//! # Machine-readable results
//!
//! In addition to the stdout report, every finished benchmark is recorded
//! and, when the driver is dropped, written out as **one JSON file per
//! benchmark group** (`<group>.json`, with `/` replaced by `_`) into the
//! directory named by the `BENCH_JSON_DIR` environment variable (default
//! `target/bench-json`). Each record carries the median seconds per
//! iteration plus, when the group declared a [`Throughput`], the derived
//! elements/bytes per second — which is how the workspace tracks
//! interactions/sec across PRs (see `BENCH_engine.json` at the repo root).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group; mirrors
/// `criterion::Throughput`. The stub uses it to derive per-second rates in
/// reports and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    name: String,
    median_secs: f64,
    throughput: Option<Throughput>,
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
            list_only: false,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Apply command-line arguments passed by `cargo bench` (`--bench` is
    /// swallowed; a bare token or `--filter`-style positional argument
    /// becomes a substring filter; `--list` lists benchmark names;
    /// `--sample-size`, `--measurement-time`, and `--warm-up-time` override
    /// the corresponding settings, the durations in (fractional) seconds).
    pub fn configure_from_args(mut self) -> Self {
        // Criterion flags that take a value in a separate argument; anything
        // not listed is treated as a bare switch so a following positional
        // filter is never swallowed.
        const VALUE_FLAGS: &[&str] = &[
            "--baseline",
            "--color",
            "--confidence-level",
            "--load-baseline",
            "--measurement-time",
            "--noise-threshold",
            "--nresamples",
            "--output-format",
            "--plotting-backend",
            "--profile-time",
            "--sample-size",
            "--save-baseline",
            "--significance-level",
            "--warm-up-time",
        ];
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            // Accept both `--flag value` and `--flag=value`.
            let (flag, inline_value) = match arg.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f.to_owned(), Some(v.to_owned())),
                _ => (arg.clone(), None),
            };
            match flag.as_str() {
                "--list" => self.list_only = true,
                "--sample-size" => {
                    let value = inline_value.or_else(|| args.next());
                    if let Some(n) = value.and_then(|v| v.parse().ok()) {
                        self = self.sample_size(n);
                    }
                }
                "--measurement-time" => {
                    let value = inline_value.or_else(|| args.next());
                    if let Some(secs) = value.and_then(|v| v.parse::<f64>().ok()) {
                        if secs > 0.0 {
                            self = self.measurement_time(Duration::from_secs_f64(secs));
                        }
                    }
                }
                "--warm-up-time" => {
                    let value = inline_value.or_else(|| args.next());
                    if let Some(secs) = value.and_then(|v| v.parse::<f64>().ok()) {
                        if secs > 0.0 {
                            self = self.warm_up_time(Duration::from_secs_f64(secs));
                        }
                    }
                }
                f if VALUE_FLAGS.contains(&f) => {
                    if inline_value.is_none() {
                        let _ = args.next();
                    }
                }
                f if f.starts_with("--") => {}
                _ => self.filter = Some(arg),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a free-standing benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one("ungrouped", &id.to_string(), None, f);
        self
    }

    /// Print the closing summary. The stub has nothing aggregate to report;
    /// exists so `criterion_main!` expands identically to the real crate.
    pub fn final_summary(&self) {}

    fn run_one<F>(&mut self, group: &str, name: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            println!("{name}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        let per_sample =
            self.measurement_time.max(Duration::from_millis(1)) / self.sample_size as u32;
        bencher.mode = Mode::Measure {
            per_sample,
            remaining: self.sample_size,
        };
        f(&mut bencher);
        if let Some(median_secs) = bencher.report(name, throughput) {
            self.records.push(BenchRecord {
                group: group.to_owned(),
                name: name.to_owned(),
                median_secs,
                throughput,
            });
        }
    }

    /// Writes one JSON file per benchmark group with the collected medians
    /// (see the [module docs](self)); called automatically on drop.
    fn write_json_reports(&self) {
        if self.records.is_empty() {
            return;
        }
        let dir = std::env::var("BENCH_JSON_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| default_json_dir());
        if fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut groups: Vec<&str> = self.records.iter().map(|r| r.group.as_str()).collect();
        groups.sort_unstable();
        groups.dedup();
        for group in groups {
            let mut json = String::new();
            json.push_str("{\n");
            json.push_str(&format!("  \"group\": \"{}\",\n", escape(group)));
            json.push_str("  \"benchmarks\": [\n");
            let records: Vec<&BenchRecord> =
                self.records.iter().filter(|r| r.group == group).collect();
            for (i, r) in records.iter().enumerate() {
                json.push_str("    {");
                json.push_str(&format!("\"name\": \"{}\", ", escape(&r.name)));
                json.push_str(&format!("\"median_seconds_per_iter\": {:e}", r.median_secs));
                match r.throughput {
                    Some(Throughput::Elements(n)) => {
                        json.push_str(&format!(", \"elements_per_iter\": {n}"));
                        json.push_str(&format!(
                            ", \"elements_per_second\": {:e}",
                            n as f64 / r.median_secs
                        ));
                    }
                    Some(Throughput::Bytes(n)) => {
                        json.push_str(&format!(", \"bytes_per_iter\": {n}"));
                        json.push_str(&format!(
                            ", \"bytes_per_second\": {:e}",
                            n as f64 / r.median_secs
                        ));
                    }
                    None => {}
                }
                json.push('}');
                json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
            }
            json.push_str("  ]\n}\n");
            let file = dir.join(format!("{}.json", group.replace(['/', ' '], "_")));
            let _ = fs::write(file, json);
        }
    }
}

/// Default JSON output directory: `<target>/bench-json`, located from the
/// running bench executable (`<target>/<profile>/deps/<bench>`). Cargo runs
/// bench binaries with the *package* root as the working directory, so a
/// cwd-relative default would scatter files across member crates.
fn default_json_dir() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(|t| t.join("bench-json"))
        })
        .unwrap_or_else(|| std::path::PathBuf::from("target/bench-json"))
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_json_reports();
    }
}

/// Minimal JSON string escaping for benchmark names.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

enum Mode {
    /// Run iterations until the deadline, discarding timings.
    WarmUp { until: Instant },
    /// Collect `remaining` samples of ~`per_sample` wall clock each.
    Measure {
        per_sample: Duration,
        remaining: usize,
    },
}

/// Timing loop handed to each benchmark closure; mirrors
/// `criterion::Bencher`.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, calling it repeatedly per the harness configuration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp { until } => {
                while Instant::now() < until {
                    std::hint::black_box(routine());
                }
            }
            Mode::Measure {
                per_sample,
                remaining,
            } => {
                // Calibrate how many iterations fill one sample window.
                let probe = Instant::now();
                std::hint::black_box(routine());
                let once = probe.elapsed().max(Duration::from_nanos(1));
                let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 30) as u64;
                for _ in 0..remaining {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed.as_secs_f64() / iters as f64);
                }
            }
        }
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = self.samples[self.samples.len() / 2];
        match throughput {
            Some(Throughput::Elements(n)) => println!(
                "{name:<48} time: [{}] thrpt: [{}]",
                HumanTime(median),
                HumanRate(n as f64 / median, "elem/s")
            ),
            Some(Throughput::Bytes(n)) => println!(
                "{name:<48} time: [{}] thrpt: [{}]",
                HumanTime(median),
                HumanRate(n as f64 / median, "B/s")
            ),
            None => println!("{name:<48} time: [{}]", HumanTime(median)),
        }
        Some(median)
    }
}

struct HumanTime(f64);

impl fmt::Display for HumanTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.4} s")
        } else if s >= 1e-3 {
            write!(f, "{:.4} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.4} µs", s * 1e6)
        } else {
            write!(f, "{:.4} ns", s * 1e9)
        }
    }
}

struct HumanRate(f64, &'static str);

impl fmt::Display for HumanRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (r, unit) = (self.0, self.1);
        if r >= 1e9 {
            write!(f, "{:.4} G{unit}", r / 1e9)
        } else if r >= 1e6 {
            write!(f, "{:.4} M{unit}", r / 1e6)
        } else if r >= 1e3 {
            write!(f, "{:.4} K{unit}", r / 1e3)
        } else {
            write!(f, "{r:.4} {unit}")
        }
    }
}

/// A benchmark within a [`BenchmarkGroup`]; names are `group/benchmark`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks in
    /// this group; mirrors `criterion::BenchmarkGroup::throughput`.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&self.name, &full, self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&self.name, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group. A no-op in the stub; criterion emits summaries here.
    pub fn finish(self) {}
}

/// Identifier for a (possibly parameterized) benchmark; mirrors
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with parameter `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (Some(name), Some(param)) => write!(f, "{name}/{param}"),
            (Some(name), None) => write!(f, "{name}"),
            (None, Some(param)) => write!(f, "{param}"),
            (None, None) => write!(f, "benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// Re-export of [`std::hint::black_box`], as the real criterion provides.
pub use std::hint::black_box;

/// Define a benchmark group function; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}
