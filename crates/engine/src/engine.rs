//! The per-agent reference simulation engine.

use crate::{
    Configuration, EngineError, Interaction, LeaderElection, Protocol, Role, Scheduler,
    CONVERGENCE_BATCH,
};

/// The result of driving a simulation toward a convergence condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Total interactions executed by the simulation when the run ended
    /// (cumulative across calls, i.e. the execution clock `t`).
    pub steps: u64,
    /// Whether the convergence condition was met (`false` = step budget
    /// exhausted first).
    pub converged: bool,
}

impl RunOutcome {
    /// The execution clock in parallel time for a population of `n` agents.
    pub fn parallel_time(&self, n: usize) -> f64 {
        crate::parallel_time(self.steps, n)
    }
}

/// The per-agent simulation engine: a configuration, a protocol, and a
/// scheduler, advanced one interaction at a time in `O(1)` per step.
///
/// This is the *reference* engine — the most direct executable reading of the
/// model's semantics. The exact count-based engine
/// ([`CountSimulation`](crate::CountSimulation)) is validated against it.
///
/// # Example
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone)]
pub struct Simulation<P: Protocol, S> {
    protocol: P,
    scheduler: S,
    states: Vec<P::State>,
    steps: u64,
}

impl<P: Protocol, S: Scheduler> Simulation<P, S> {
    /// Creates a simulation of `n` agents in the protocol's initial state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn new(protocol: P, n: usize, scheduler: S) -> Result<Self, EngineError> {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        let states = vec![protocol.initial_state(); n];
        Ok(Self {
            protocol,
            scheduler,
            states,
            steps: 0,
        })
    }

    /// Creates a simulation starting from an arbitrary configuration (e.g.
    /// the adversarial starting points of the paper's Lemmas 9–12).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when fewer than two states
    /// are supplied.
    pub fn from_states(
        protocol: P,
        states: Vec<P::State>,
        scheduler: S,
    ) -> Result<Self, EngineError> {
        if states.len() < 2 {
            return Err(EngineError::PopulationTooSmall { n: states.len() });
        }
        Ok(Self {
            protocol,
            scheduler,
            states,
            steps: 0,
        })
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// The number of interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The execution clock in parallel time (steps / n).
    pub fn parallel_time(&self) -> f64 {
        crate::parallel_time(self.steps, self.states.len())
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current per-agent states.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// A semantic snapshot of the current configuration.
    pub fn configuration(&self) -> Configuration<P::State> {
        Configuration::from_states(self.states.clone()).expect("population is >= 2")
    }

    /// Executes one interaction; returns it together with whether any state
    /// changed.
    #[inline]
    pub fn step(&mut self) -> (Interaction, bool) {
        let interaction = self.scheduler.next_interaction(self.states.len());
        let (u, v) = (interaction.initiator, interaction.responder);
        let (nu, nv) = self.protocol.transition(&self.states[u], &self.states[v]);
        let changed = nu != self.states[u] || nv != self.states[v];
        self.states[u] = nu;
        self.states[v] = nv;
        self.steps += 1;
        (interaction, changed)
    }

    /// Executes exactly `steps` interactions.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until `predicate` holds (checked every `check_every` steps,
    /// starting immediately) or `max_steps` total interactions have executed.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until<F>(&mut self, check_every: u64, max_steps: u64, mut predicate: F) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        assert!(check_every > 0, "check_every must be positive");
        loop {
            if predicate(self) {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            if self.steps >= max_steps {
                return RunOutcome {
                    steps: self.steps,
                    converged: false,
                };
            }
            let burst = check_every.min(max_steps - self.steps);
            self.run(burst);
        }
    }

    /// Alias of [`run_until`](Self::run_until) named for its batching
    /// behavior: `predicate` is only evaluated at `batch`-step boundaries,
    /// keeping the per-step path free of convergence bookkeeping. Mirrors
    /// [`CountSimulation::run_batched`](crate::CountSimulation::run_batched).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn run_batched<F>(&mut self, batch: u64, max_steps: u64, predicate: F) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        self.run_until(batch, max_steps, predicate)
    }

    /// Runs `steps` interactions, invoking `observer` every `sample_every`
    /// steps (and once at the end) with the current step count and states.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn run_sampled<F>(&mut self, steps: u64, sample_every: u64, mut observer: F)
    where
        F: FnMut(u64, &[P::State]),
    {
        assert!(sample_every > 0, "sample_every must be positive");
        let target = self.steps + steps;
        while self.steps < target {
            let burst = sample_every.min(target - self.steps);
            self.run(burst);
            observer(self.steps, &self.states);
        }
    }

    /// Runs until no participant's *output* has changed for `window`
    /// consecutive interactions, or `max_steps` is reached.
    ///
    /// This is the generic convergence heuristic for protocols without the
    /// monotone-leader shortcut: output stability over a long window is
    /// evidence (not proof) of stabilization. Choose `window` as a multiple
    /// of the expected per-agent interaction gap, e.g. `c·n·ln n`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn run_until_stable_outputs(&mut self, window: u64, max_steps: u64) -> RunOutcome {
        assert!(window > 0, "window must be positive");
        let mut last_change = self.steps;
        while self.steps < max_steps {
            let interaction = self.scheduler.next_interaction(self.states.len());
            let (u, v) = (interaction.initiator, interaction.responder);
            let before_u = self.protocol.output(&self.states[u]);
            let before_v = self.protocol.output(&self.states[v]);
            let (nu, nv) = self.protocol.transition(&self.states[u], &self.states[v]);
            let changed =
                self.protocol.output(&nu) != before_u || self.protocol.output(&nv) != before_v;
            self.states[u] = nu;
            self.states[v] = nv;
            self.steps += 1;
            if changed {
                last_change = self.steps;
            } else if self.steps - last_change >= window {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
        }
        RunOutcome {
            steps: self.steps,
            converged: false,
        }
    }
}

impl<P: LeaderElection, S: Scheduler> Simulation<P, S> {
    /// Counts the current leaders in `O(n)`.
    pub fn leader_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| self.protocol.output(s) == Role::Leader)
            .count()
    }

    /// Runs until exactly one leader remains, maintaining the leader count
    /// incrementally (`O(1)` per step).
    ///
    /// For protocols with [`monotone_leaders`](LeaderElection::monotone_leaders)
    /// the returned step count *is* the stabilization time: the leader count
    /// can never rise again and never hits zero. For non-monotone protocols
    /// this is the first hitting time of a single-leader configuration.
    ///
    /// The step-budget check is hoisted out of the inner loop (batches of
    /// 4096 interactions) and the single-leader condition is only evaluated
    /// on interactions that change the leader count; the returned step count
    /// is still exact. The `O(n)` leader-recount invariant runs as a
    /// *sampled* debug assertion — once per batch — so debug builds stay
    /// `O(1)` amortized per step instead of `O(n)`.
    pub fn run_until_single_leader(&mut self, max_steps: u64) -> RunOutcome {
        let mut leaders = self.leader_count() as i64;
        if leaders == 1 {
            return RunOutcome {
                steps: self.steps,
                converged: true,
            };
        }
        while self.steps < max_steps {
            let burst = CONVERGENCE_BATCH.min(max_steps - self.steps);
            for _ in 0..burst {
                let interaction = self.scheduler.next_interaction(self.states.len());
                let (u, v) = (interaction.initiator, interaction.responder);
                let before = i64::from(self.protocol.output(&self.states[u]) == Role::Leader)
                    + i64::from(self.protocol.output(&self.states[v]) == Role::Leader);
                let (nu, nv) = self.protocol.transition(&self.states[u], &self.states[v]);
                let after = i64::from(self.protocol.output(&nu) == Role::Leader)
                    + i64::from(self.protocol.output(&nv) == Role::Leader);
                self.states[u] = nu;
                self.states[v] = nv;
                self.steps += 1;
                if after != before {
                    leaders += after - before;
                    if leaders == 1 {
                        return RunOutcome {
                            steps: self.steps,
                            converged: true,
                        };
                    }
                }
            }
            // Sampled invariant check: once per batch, not per step.
            debug_assert_eq!(leaders, self.leader_count() as i64);
        }
        RunOutcome {
            steps: self.steps,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplayScheduler, RoundRobinScheduler, UniformScheduler};

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {
        fn monotone_leaders(&self) -> bool {
            true
        }
    }

    #[test]
    fn new_rejects_tiny_population() {
        let s = UniformScheduler::seed_from_u64(0);
        assert!(matches!(
            Simulation::new(Frat, 1, s),
            Err(EngineError::PopulationTooSmall { n: 1 })
        ));
    }

    #[test]
    fn steps_and_parallel_time_advance() {
        let s = UniformScheduler::seed_from_u64(0);
        let mut sim = Simulation::new(Frat, 10, s).unwrap();
        sim.run(25);
        assert_eq!(sim.steps(), 25);
        assert!((sim.parallel_time() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fratricide_converges_to_single_leader() {
        let s = UniformScheduler::seed_from_u64(42);
        let mut sim = Simulation::new(Frat, 100, s).unwrap();
        let outcome = sim.run_until_single_leader(10_000_000);
        assert!(outcome.converged);
        assert_eq!(sim.leader_count(), 1);
        // Leader count is monotone: re-running can never change it.
        sim.run(10_000);
        assert_eq!(sim.leader_count(), 1);
    }

    #[test]
    fn run_until_single_leader_respects_budget() {
        let s = UniformScheduler::seed_from_u64(1);
        let mut sim = Simulation::new(Frat, 1000, s).unwrap();
        let outcome = sim.run_until_single_leader(10);
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 10);
    }

    #[test]
    fn deterministic_replay_matches_configuration_semantics() {
        let schedule = vec![
            Interaction::new(0, 1),
            Interaction::new(2, 0),
            Interaction::new(1, 2),
        ];
        let mut sim = Simulation::new(Frat, 3, ReplayScheduler::new(schedule.clone())).unwrap();
        sim.run(3);
        let mut config = Configuration::initial(&Frat, 3).unwrap();
        config.apply_schedule(&Frat, schedule).unwrap();
        assert_eq!(sim.states(), config.states());
    }

    #[test]
    fn from_states_starts_at_given_configuration() {
        let s = UniformScheduler::seed_from_u64(3);
        let sim = Simulation::from_states(Frat, vec![false, true, false], s).unwrap();
        assert_eq!(sim.leader_count(), 1);
        assert_eq!(sim.population(), 3);
    }

    #[test]
    fn run_until_checks_predicate_before_running() {
        let s = UniformScheduler::seed_from_u64(4);
        let mut sim = Simulation::new(Frat, 10, s).unwrap();
        let outcome = sim.run_until(100, 1_000, |_| true);
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    fn run_until_converges_on_real_condition() {
        let s = UniformScheduler::seed_from_u64(5);
        let mut sim = Simulation::new(Frat, 20, s).unwrap();
        let outcome = sim.run_until(10, 1_000_000, |sim| sim.leader_count() <= 5);
        assert!(outcome.converged);
        assert!(sim.leader_count() <= 5);
    }

    #[test]
    fn run_batched_mirrors_run_until() {
        let mut a = Simulation::new(Frat, 20, UniformScheduler::seed_from_u64(7)).unwrap();
        let mut b = Simulation::new(Frat, 20, UniformScheduler::seed_from_u64(7)).unwrap();
        let oa = a.run_until(10, 1_000_000, |sim| sim.leader_count() <= 5);
        let ob = b.run_batched(10, 1_000_000, |sim| sim.leader_count() <= 5);
        assert_eq!(oa, ob);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn run_sampled_observes_final_step() {
        let s = UniformScheduler::seed_from_u64(6);
        let mut sim = Simulation::new(Frat, 10, s).unwrap();
        let mut samples = Vec::new();
        sim.run_sampled(105, 25, |t, _| samples.push(t));
        assert_eq!(samples, vec![25, 50, 75, 100, 105]);
    }

    #[test]
    fn round_robin_engine_also_elects() {
        // The fratricide protocol stabilizes under ANY fair schedule.
        let mut sim = Simulation::new(Frat, 8, RoundRobinScheduler::new()).unwrap();
        let outcome = sim.run_until_single_leader(100_000);
        assert!(outcome.converged);
    }

    #[test]
    fn outcome_parallel_time() {
        let o = RunOutcome {
            steps: 500,
            converged: true,
        };
        assert_eq!(o.parallel_time(100), 5.0);
    }

    #[test]
    fn stable_outputs_detects_fratricide_stabilization() {
        let s = UniformScheduler::seed_from_u64(8);
        let mut sim = Simulation::new(Frat, 32, s).unwrap();
        let window = 32 * 32; // far beyond any plausible output change gap
        let outcome = sim.run_until_stable_outputs(window, u64::MAX);
        assert!(outcome.converged);
        assert_eq!(sim.leader_count(), 1, "stability implies election here");
    }

    #[test]
    fn stable_outputs_respects_budget() {
        let s = UniformScheduler::seed_from_u64(9);
        let mut sim = Simulation::new(Frat, 512, s).unwrap();
        let outcome = sim.run_until_stable_outputs(u64::MAX / 2, 100);
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 100);
    }
}
