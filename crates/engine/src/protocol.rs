//! The [`Protocol`] trait and leader-election refinements.

use std::fmt::Debug;
use std::hash::Hash;

/// A population protocol `P(Q, s_init, T, Y, π_out)`.
///
/// * `State` is the finite state set `Q`; values must be cheap to clone
///   (protocol states are small value types).
/// * [`initial_state`](Protocol::initial_state) is `s_init` — every agent
///   starts there.
/// * [`transition`](Protocol::transition) is the joint transition function
///   `T : Q × Q → Q × Q`, applied to `(initiator, responder)`.
/// * [`output`](Protocol::output) is `π_out : Q → Y`.
///
/// Protocol *values* (the `self` receiver) carry the protocol's parameters —
/// e.g. the size knowledge `m` of the paper — so one type can describe a
/// whole protocol family.
///
/// # Example
///
/// See the [crate-level quickstart](crate).
pub trait Protocol {
    /// Agent state type `Q`.
    type State: Clone + Eq + Hash + Debug;
    /// Output symbol type `Y`.
    type Output: Clone + Eq + Hash + Debug;

    /// The state every agent occupies in the initial configuration.
    fn initial_state(&self) -> Self::State;

    /// The joint transition applied when `initiator` meets `responder`.
    ///
    /// Returns the successor states `(initiator', responder')`.
    ///
    /// # Determinism contract
    ///
    /// `transition` must be a **pure, deterministic function of the ordered
    /// state pair**: equal inputs must always produce equal outputs, with no
    /// dependence on interaction history, interleaved mutable state, or a
    /// private randomness source. (Randomized protocols in this model derive
    /// randomness from the *scheduler* — e.g. from initiator/responder role
    /// assignment, as the paper's lottery does — never from the transition
    /// function itself.)
    ///
    /// The engines rely on this contract: the count engine's
    /// [compiled pair-transition cache](crate::compiled) evaluates
    /// `transition` once per distinct ordered state pair and replays the
    /// result forever after. A non-deterministic implementation would not
    /// make the cache unsound in the memory-safety sense, but the execution
    /// would silently freeze the first-seen behavior of each pair.
    fn transition(
        &self,
        initiator: &Self::State,
        responder: &Self::State,
    ) -> (Self::State, Self::State);

    /// The output symbol of an agent in state `state`.
    fn output(&self, state: &Self::State) -> Self::Output;

    /// A short human-readable protocol name for reports and tables.
    fn name(&self) -> String {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full).to_string()
    }
}

impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;
    type Output = P::Output;

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }

    fn transition(
        &self,
        initiator: &Self::State,
        responder: &Self::State,
    ) -> (Self::State, Self::State) {
        (**self).transition(initiator, responder)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        (**self).output(state)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// The output alphabet of the leader-election problem: `Y = {L, F}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// The agent currently outputs "leader" (`L`).
    Leader,
    /// The agent currently outputs "follower" (`F`).
    Follower,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Leader => write!(f, "L"),
            Role::Follower => write!(f, "F"),
        }
    }
}

/// A protocol solving (or attempting) leader election.
///
/// Implementors whose executions keep the leader count monotonically
/// non-increasing *and never zero* should override
/// [`monotone_leaders`](LeaderElection::monotone_leaders) to return `true`:
/// for such protocols the first time the leader count reaches 1 is exactly
/// the stabilization time, which the engines exploit for `O(1)`-per-step
/// convergence detection. This holds for the paper's `P_LL` (no follower ever
/// becomes a leader, and each module preserves at least one leader) and for
/// the classic fratricide protocol of \[Ang+06\].
pub trait LeaderElection: Protocol<Output = Role> {
    /// Whether `state` outputs [`Role::Leader`].
    fn is_leader(&self, state: &Self::State) -> bool {
        self.output(state) == Role::Leader
    }

    /// `true` if the leader count is non-increasing and never reaches zero in
    /// every execution (see trait docs). Defaults to `false`.
    fn monotone_leaders(&self) -> bool {
        false
    }
}

impl<P: LeaderElection + ?Sized> LeaderElection for &P {
    fn monotone_leaders(&self) -> bool {
        (**self).monotone_leaders()
    }
}

/// Checks the *symmetry* property of Section 4 of the paper on a set of
/// states: for every state `p`, `T(p, p) = (p', p')` with equal components.
///
/// Returns the first violating state, or `None` if the property holds for
/// every provided state. A protocol is symmetric iff this holds for all
/// reachable states (equal-state pairs are the only place initiator/responder
/// roles could otherwise be abused while keeping `p = q`).
pub fn check_symmetry<P, I>(protocol: &P, states: I) -> Option<P::State>
where
    P: Protocol,
    I: IntoIterator<Item = P::State>,
{
    for p in states {
        let (a, b) = protocol.transition(&p, &p);
        if a != b {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toggle;

    impl Protocol for Toggle {
        type State = u8;
        type Output = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            (a.wrapping_add(1), *b)
        }
        fn output(&self, s: &u8) -> u8 {
            *s
        }
    }

    #[test]
    fn default_name_strips_module_path() {
        assert_eq!(Toggle.name(), "Toggle");
    }

    #[test]
    fn reference_impl_delegates() {
        let by_ref: &Toggle = &Toggle;
        assert_eq!(by_ref.initial_state(), 0);
        assert_eq!(by_ref.transition(&1, &2), (2, 2));
        assert_eq!(by_ref.name(), "Toggle");
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Leader.to_string(), "L");
        assert_eq!(Role::Follower.to_string(), "F");
    }

    #[test]
    fn role_orders_leader_first() {
        assert!(Role::Leader < Role::Follower);
    }

    #[test]
    fn check_symmetry_flags_asymmetric_rule() {
        // Toggle changes only the initiator: asymmetric on any equal pair.
        assert_eq!(check_symmetry(&Toggle, [7u8]), Some(7));
    }

    struct Sym;

    impl Protocol for Sym {
        type State = u8;
        type Output = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            if a == b {
                (a + 1, b + 1)
            } else {
                (*a.max(b), *a.max(b))
            }
        }
        fn output(&self, s: &u8) -> u8 {
            *s
        }
    }

    #[test]
    fn check_symmetry_accepts_symmetric_rule() {
        assert_eq!(check_symmetry(&Sym, 0u8..100), None);
    }
}
