//! The compiled pair-transition cache behind the count engine's hot loop.
//!
//! [`Protocol::transition`](crate::Protocol::transition) is required to be a
//! *pure, deterministic* function of the ordered state pair (see the trait's
//! determinism contract), so its action on interned state ids can be compiled
//! once and replayed forever: the first time the count engine sees the
//! ordered id pair `(s, t)` it runs the real transition, interns the
//! successor states, and stores a packed entry
//!
//! ```text
//! (s, t)  →  (a, b, leader_delta, is_null)
//! ```
//!
//! in a dense `stride × stride` table (`stride` = capacity for state ids,
//! always a power of two so the lookup is a shift and an or). Every later
//! occurrence of the pair is one 4-byte load: **zero hashing, zero state
//! cloning, zero `transition` calls** in the steady state.
//!
//! # Memory trade-off
//!
//! The table is dense over *states seen so far*, which is what makes the
//! lookup branch-free: `k` distinct states cost `4·k²` bytes after rounding
//! `k` up to a power of two. For bounded-state protocols this is trivial
//! (the paper's `P_LL` visits ≲ 128 states even at `n = 2^20` → 64 KiB).
//! Protocols whose state space grows with the population (e.g. an unbounded
//! lottery) would blow the quadratic table up, so the cache deactivates
//! itself once more than [`MAX_COMPILED_STATES`] states have been interned
//! and the engine falls back to calling `transition` per step — same
//! semantics, same RNG stream, just slower.
//!
//! Entries are packed into a `u32` as
//! `a | b << 12 | (leader_delta + 2) << 24 | is_null << 27`, with
//! `u32::MAX` as the vacant sentinel (unreachable by any packed entry, whose
//! bits 28.. are always zero). The 12-bit id fields are what bound
//! [`MAX_COMPILED_STATES`] at 4096; the narrow entries keep the dense table
//! half the size it would be with `u64`, which matters because the
//! steady-state step's one table load is the only memory access in the hot
//! loop that can miss L1.

/// Vacant-slot sentinel: no packed entry can equal this (bits 28..32 of a
/// packed entry are always zero).
pub(crate) const EMPTY: u32 = u32::MAX;

/// State-id width inside a packed entry; caps interned ids at `2^12`.
const ID_BITS: u32 = 12;
const ID_MASK: u32 = (1 << ID_BITS) - 1;
const DELTA_SHIFT: u32 = 2 * ID_BITS;
const NULL_BIT: u32 = DELTA_SHIFT + 3;

/// The default cap on interned states before the dense cache turns itself
/// off — the full reach of the packed 12-bit id fields. The worst-case
/// table is `4096² · 4 B = 64 MiB`, but the table is grown lazily by
/// doubling, so a protocol only ever pays for (the next power of two of)
/// the states it actually visits; `P_LL` with `m = 10` sits in the low
/// thousands, which is exactly the regime this cap is chosen to keep on
/// the fast path.
pub const MAX_COMPILED_STATES: usize = 4096;

/// Packs a compiled transition into one word.
///
/// `delta` is the leader-count change of the interaction and must lie in
/// `[-2, 2]`; `null` records `a == s && b == t` (the interaction changes no
/// count, so the engine can skip all tree updates).
#[inline]
pub(crate) fn pack(a: usize, b: usize, delta: i8, null: bool) -> u32 {
    debug_assert!(a as u32 <= ID_MASK && b as u32 <= ID_MASK);
    debug_assert!((-2..=2).contains(&delta));
    (a as u32)
        | ((b as u32) << ID_BITS)
        | (((delta + 2) as u32) << DELTA_SHIFT)
        | (u32::from(null) << NULL_BIT)
}

/// Unpacks a compiled transition: `(a, b, leader_delta, is_null)`.
#[inline]
pub(crate) fn unpack(entry: u32) -> (usize, usize, i8, bool) {
    let a = (entry & ID_MASK) as usize;
    let b = ((entry >> ID_BITS) & ID_MASK) as usize;
    let delta = ((entry >> DELTA_SHIFT) & 0b111) as i8 - 2;
    let null = (entry >> NULL_BIT) & 1 == 1;
    (a, b, delta, null)
}

/// Growable dense cache from ordered state-id pairs to compiled transitions.
///
/// See the [module docs](self) for the packing scheme and the memory
/// trade-off. The cache is purely an accelerator: a deactivated or vacant
/// cache only means the engine recomputes the transition, never that it
/// behaves differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCache {
    /// Dense `stride × stride` table; `EMPTY` marks vacant slots.
    table: Vec<u32>,
    /// `stride == 1 << shift`; index of `(s, t)` is `s << shift | t`.
    shift: u32,
    /// Maximum states before the cache deactivates itself.
    limit: usize,
    /// Whether the cache is still compiling pairs.
    active: bool,
}

impl PairCache {
    /// Creates an empty cache that deactivates beyond `limit` states.
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            table: Vec::new(),
            shift: 0,
            limit,
            active: true,
        }
    }

    /// Whether the cache is still compiling (it turns itself off past the
    /// state limit, or when disabled explicitly by the engine).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of compiled (filled) pair entries.
    pub fn compiled_pairs(&self) -> usize {
        self.table.iter().filter(|&&e| e != EMPTY).count()
    }

    /// Bytes held by the dense table.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Deactivates the cache and releases the table.
    pub(crate) fn deactivate(&mut self) {
        self.active = false;
        self.table = Vec::new();
        self.shift = 0;
    }

    /// Reactivates an explicitly disabled cache (the state-count check is
    /// re-applied on the next [`ensure_states`](Self::ensure_states)).
    pub(crate) fn reactivate(&mut self) {
        self.active = true;
    }

    /// Grows the table so ids `< states` are addressable; deactivates (and
    /// returns `false`) once `states` exceeds the limit.
    pub(crate) fn ensure_states(&mut self, states: usize) -> bool {
        if !self.active {
            return false;
        }
        if states > self.limit {
            self.deactivate();
            return false;
        }
        let needed = states.next_power_of_two().max(16);
        if (1usize << self.shift) < needed {
            self.grow(needed.trailing_zeros());
        }
        true
    }

    fn grow(&mut self, new_shift: u32) {
        let old_shift = self.shift;
        let old = std::mem::replace(&mut self.table, vec![EMPTY; 1 << (2 * new_shift)]);
        self.shift = new_shift;
        for (idx, &e) in old.iter().enumerate() {
            if e != EMPTY {
                let s = idx >> old_shift;
                let t = idx & ((1 << old_shift) - 1);
                self.table[(s << new_shift) | t] = e;
            }
        }
    }

    /// The compiled entry for `(s, t)`, or `EMPTY` when vacant or inactive.
    ///
    /// `s` and `t` must be below the ensured state count when active.
    #[inline]
    pub(crate) fn get(&self, s: usize, t: usize) -> u32 {
        if !self.active {
            return EMPTY;
        }
        debug_assert!(s < (1 << self.shift) && t < (1 << self.shift));
        self.table[(s << self.shift) | t]
    }

    /// Stores the compiled entry for `(s, t)`; a no-op when inactive.
    #[inline]
    pub(crate) fn set(&mut self, s: usize, t: usize, entry: u32) {
        if !self.active {
            return;
        }
        debug_assert!(s < (1 << self.shift) && t < (1 << self.shift));
        self.table[(s << self.shift) | t] = entry;
    }

    /// Visits every filled entry as `(s, t, &mut entry)` — used to recompute
    /// the cached leader deltas when role tracking is primed after pairs
    /// were already compiled.
    pub(crate) fn for_each_filled_mut(&mut self, mut f: impl FnMut(usize, usize, &mut u32)) {
        let shift = self.shift;
        for (idx, e) in self.table.iter_mut().enumerate() {
            if *e != EMPTY {
                f(idx >> shift, idx & ((1 << shift) - 1), e);
            }
        }
    }

    /// Visits every filled entry as `(s, t, entry)` — used to re-seed the
    /// jump scheduler's null ledger from already-compiled pairs when the
    /// scheduler is (re-)enabled mid-run.
    pub(crate) fn for_each_filled(&self, mut f: impl FnMut(usize, usize, u32)) {
        let shift = self.shift;
        for (idx, &e) in self.table.iter().enumerate() {
            if e != EMPTY {
                f(idx >> shift, idx & ((1 << shift) - 1), e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (a, b, d, null) in [
            (0usize, 0usize, 0i8, true),
            (1, 2, -2, false),
            (5, 3, 2, false),
            ((1 << 12) - 1, 7, 1, false),
            (7, (1 << 12) - 1, -1, true),
        ] {
            let e = pack(a, b, d, null);
            assert_ne!(e, EMPTY);
            assert_eq!(unpack(e), (a, b, d, null));
        }
    }

    #[test]
    fn growth_remaps_entries() {
        let mut c = PairCache::new(MAX_COMPILED_STATES);
        assert!(c.ensure_states(2));
        c.set(0, 1, pack(1, 0, 0, false));
        c.set(1, 1, pack(1, 1, 0, true));
        // Force several growths past the initial 16-slot stride.
        assert!(c.ensure_states(100));
        assert_eq!(unpack(c.get(0, 1)), (1, 0, 0, false));
        assert_eq!(unpack(c.get(1, 1)), (1, 1, 0, true));
        assert_eq!(c.get(5, 5), EMPTY);
        c.set(90, 17, pack(17, 90, -1, false));
        assert!(c.ensure_states(1000));
        assert_eq!(unpack(c.get(90, 17)), (17, 90, -1, false));
        assert_eq!(c.compiled_pairs(), 3);
        assert_eq!(c.table_bytes(), 1024 * 1024 * 4);
    }

    #[test]
    fn deactivates_past_limit() {
        let mut c = PairCache::new(8);
        assert!(c.ensure_states(8));
        c.set(0, 0, pack(0, 0, 0, true));
        assert!(c.is_active());
        assert!(!c.ensure_states(9));
        assert!(!c.is_active());
        assert_eq!(c.get(0, 0), EMPTY);
        assert_eq!(c.table_bytes(), 0);
        // Once off it stays off, even for small state counts.
        assert!(!c.ensure_states(2));
    }

    #[test]
    fn for_each_filled_visits_coordinates() {
        let mut c = PairCache::new(64);
        c.ensure_states(20);
        c.set(3, 19, pack(3, 19, 2, false));
        c.set(19, 3, pack(0, 0, -2, false));
        let mut seen = Vec::new();
        c.for_each_filled_mut(|s, t, e| {
            seen.push((s, t));
            let (a, b, d, null) = unpack(*e);
            *e = pack(a, b, -d, null);
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(3, 19), (19, 3)]);
        assert_eq!(unpack(c.get(3, 19)).2, -2);
        assert_eq!(unpack(c.get(19, 3)).2, 2);
    }
}
