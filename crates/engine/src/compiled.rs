//! The compiled pair-transition cache behind the count engine's hot loop.
//!
//! [`Protocol::transition`](crate::Protocol::transition) is required to be a
//! *pure, deterministic* function of the ordered state pair (see the trait's
//! determinism contract), so its action on interned state ids can be compiled
//! once and replayed forever: the first time the count engine sees the
//! ordered id pair `(s, t)` it runs the real transition, interns the
//! successor states, and stores a packed entry
//!
//! ```text
//! (s, t)  →  (a, b, leader_delta, is_null)
//! ```
//!
//! in a dense `stride × stride` table (`stride` = capacity for state ids,
//! always a power of two so the lookup is a shift and an or). Every later
//! occurrence of the pair is one 4-byte load: **zero hashing, zero state
//! cloning, zero `transition` calls** in the steady state.
//!
//! # Memory trade-off and saturation
//!
//! The table is dense over *addressable states*, which is what makes the
//! lookup branch-free: `k` distinct states cost `4·k²` bytes after rounding
//! `k` up to a power of two. For bounded-state protocols this is trivial
//! (the paper's `P_LL` visits a few hundred states even at `n = 2^20`).
//! Protocols whose state space grows with the population (e.g. an unbounded
//! lottery) would blow the quadratic table up, so the addressable-id range is
//! capped by [`EngineConfig::max_compiled_states`](crate::EngineConfig): once
//! more states than that have been interned the cache **saturates** — pairs
//! whose ids fit keep their one-load fast path, pairs touching higher ids
//! fall back to calling `transition` per encounter. Saturation replaces the
//! old all-or-nothing self-deactivation: there is no cliff, and the engine's
//! [state-id compaction](crate::CountSimulation) reassigns the ids of
//! permanently-dead states at tier-review boundaries (largest counts first),
//! which pulls a saturated cache back to full coverage as soon as the *live*
//! support fits the cap again.
//!
//! Entries are packed into a `u32` as
//! `a | b << 12 | (leader_delta + 2) << 24 | is_null << 27`, with
//! `u32::MAX` as the vacant sentinel (unreachable by any packed entry, whose
//! bits 28.. are always zero). The 12-bit id fields are what cap the
//! addressable range at 4096; the narrow entries keep the dense table half
//! the size it would be with `u64`, which matters because the steady-state
//! step's one table load is the only memory access in the hot loop that can
//! miss L1. Filled slots are additionally tracked in a coordinate list, so
//! iteration and compaction cost `O(compiled pairs)`, never `O(stride²)`.

/// Vacant-slot sentinel: no packed entry can equal this (bits 28..32 of a
/// packed entry are always zero).
pub(crate) const EMPTY: u32 = u32::MAX;

/// State-id width inside a packed entry; caps addressable ids at `2^12`.
const ID_BITS: u32 = 12;
const ID_MASK: u32 = (1 << ID_BITS) - 1;
const DELTA_SHIFT: u32 = 2 * ID_BITS;
const NULL_BIT: u32 = DELTA_SHIFT + 3;

/// The hard ceiling on addressable interned states — the full reach of the
/// packed 12-bit id fields. [`EngineConfig::max_compiled_states`]
/// (crate::EngineConfig) defaults to this value and cannot exceed it. The
/// worst-case table is `4096² · 4 B = 64 MiB`, but the table is grown lazily
/// by doubling, so a protocol only ever pays for (the next power of two of)
/// the states it actually addresses.
pub const MAX_COMPILED_STATES: usize = 1 << ID_BITS;

/// Packs a compiled transition into one word.
///
/// `delta` is the leader-count change of the interaction and must lie in
/// `[-2, 2]`; `null` records `a == s && b == t` (the interaction changes no
/// count, so the engine can skip all tree updates).
#[inline]
pub(crate) fn pack(a: usize, b: usize, delta: i8, null: bool) -> u32 {
    debug_assert!(a as u32 <= ID_MASK && b as u32 <= ID_MASK);
    debug_assert!((-2..=2).contains(&delta));
    (a as u32)
        | ((b as u32) << ID_BITS)
        | (((delta + 2) as u32) << DELTA_SHIFT)
        | (u32::from(null) << NULL_BIT)
}

/// Unpacks a compiled transition: `(a, b, leader_delta, is_null)`.
#[inline]
pub(crate) fn unpack(entry: u32) -> (usize, usize, i8, bool) {
    let a = (entry & ID_MASK) as usize;
    let b = ((entry >> ID_BITS) & ID_MASK) as usize;
    let delta = ((entry >> DELTA_SHIFT) & 0b111) as i8 - 2;
    let null = (entry >> NULL_BIT) & 1 == 1;
    (a, b, delta, null)
}

/// Growable dense cache from ordered state-id pairs to compiled transitions.
///
/// See the [module docs](self) for the packing scheme, the memory trade-off,
/// and the saturation semantics. The cache is purely an accelerator: a
/// disabled, saturated, or vacant cache only means the engine recomputes the
/// transition, never that it behaves differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCache {
    /// Dense `stride × stride` table; `EMPTY` marks vacant slots.
    table: Vec<u32>,
    /// `stride == 1 << shift`; index of `(s, t)` is `s << shift | t`.
    shift: u32,
    /// Cap on addressable state ids (`≤ MAX_COMPILED_STATES`).
    limit: usize,
    /// Coordinates of every filled slot, in fill order.
    filled: Vec<(u16, u16)>,
    /// Whether the cache compiles pairs at all (engine toggle).
    active: bool,
}

impl PairCache {
    /// Creates an empty cache that addresses at most `limit` states
    /// (clamped to [`MAX_COMPILED_STATES`]).
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            table: Vec::new(),
            shift: 0,
            limit: limit.clamp(1, MAX_COMPILED_STATES),
            filled: Vec::new(),
            active: true,
        }
    }

    /// Whether the cache is enabled (the engine's explicit toggle; a
    /// saturated cache is still active).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of state ids the current table can address; pairs with any id
    /// at or above this fall back to per-encounter transitions until
    /// compaction frees ids.
    pub fn addressable_states(&self) -> usize {
        if self.active && !self.table.is_empty() {
            1 << self.shift
        } else {
            0
        }
    }

    /// Whether ids at or above the addressable range exist, i.e. some pairs
    /// currently bypass the cache (`states` = interned state count).
    pub fn is_saturated(&self, states: usize) -> bool {
        self.active && states > self.addressable_states()
    }

    /// Number of compiled (filled) pair entries, in `O(1)`.
    pub fn compiled_pairs(&self) -> usize {
        self.filled.len()
    }

    /// Bytes held by the dense table.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Deactivates the cache and releases the table.
    pub(crate) fn deactivate(&mut self) {
        self.active = false;
        self.table = Vec::new();
        self.filled = Vec::new();
        self.shift = 0;
    }

    /// Reactivates an explicitly disabled cache.
    pub(crate) fn reactivate(&mut self) {
        self.active = true;
    }

    /// Grows the table so ids `< min(states, limit)` are addressable.
    /// Returns whether every id below `states` is addressable (i.e. the
    /// cache is not saturated).
    pub(crate) fn ensure_states(&mut self, states: usize) -> bool {
        if !self.active {
            return false;
        }
        let covered = states.min(self.limit);
        let needed = covered.next_power_of_two().max(16);
        if (1usize << self.shift) < needed || self.table.is_empty() {
            self.grow(needed.trailing_zeros());
        }
        states <= (1 << self.shift)
    }

    fn grow(&mut self, new_shift: u32) {
        let old_shift = self.shift;
        let old = std::mem::replace(&mut self.table, vec![EMPTY; 1 << (2 * new_shift)]);
        self.shift = new_shift;
        for &(s, t) in &self.filled {
            let (s, t) = (s as usize, t as usize);
            self.table[(s << new_shift) | t] = old[(s << old_shift) | t];
        }
    }

    /// The compiled entry for `(s, t)`, or `EMPTY` when vacant, out of the
    /// addressable range (saturated), or inactive.
    #[inline]
    pub(crate) fn get(&self, s: usize, t: usize) -> u32 {
        if !self.active {
            return EMPTY;
        }
        let stride = 1usize << self.shift;
        if (s | t) >= stride || self.table.is_empty() {
            return EMPTY;
        }
        self.table[(s << self.shift) | t]
    }

    /// Stores the compiled transition of `(s, t)` if it is representable:
    /// the key must lie in the addressable range and the successor ids must
    /// fit the packed id fields. Returns whether the entry was stored.
    ///
    /// The slot must be vacant — entries are immutable once compiled
    /// (rewriting goes through [`for_each_filled_mut`](Self::for_each_filled_mut)).
    #[inline]
    pub(crate) fn store(
        &mut self,
        s: usize,
        t: usize,
        a: usize,
        b: usize,
        delta: i8,
        null: bool,
    ) -> bool {
        if !self.active || self.table.is_empty() {
            return false;
        }
        let stride = 1usize << self.shift;
        if (s | t) >= stride || (a | b) > ID_MASK as usize {
            return false;
        }
        let slot = (s << self.shift) | t;
        debug_assert_eq!(self.table[slot], EMPTY, "pair ({s}, {t}) compiled twice");
        self.table[slot] = pack(a, b, delta, null);
        self.filled.push((s as u16, t as u16));
        true
    }

    /// Remaps every compiled entry through `map` (old id → new id, with
    /// `u32::MAX` marking ids that no longer exist) and shrinks the table to
    /// address `live` states. Entries touching a dropped id — or landing
    /// outside the new addressable range — are discarded; they recompile
    /// lazily if their pair ever occurs again.
    ///
    /// `O(compiled pairs)`, driven by the filled list.
    pub(crate) fn compact(&mut self, map: &[u32], live: usize) {
        if !self.active {
            return;
        }
        let old_shift = self.shift;
        let old = std::mem::take(&mut self.table);
        let old_filled = std::mem::take(&mut self.filled);
        let covered = live.min(self.limit);
        self.shift = covered.next_power_of_two().max(16).trailing_zeros();
        self.table = vec![EMPTY; 1 << (2 * self.shift)];
        let stride = 1usize << self.shift;
        for &(s, t) in &old_filled {
            let entry = old[((s as usize) << old_shift) | t as usize];
            let (a, b, delta, null) = unpack(entry);
            let (Some(&ns), Some(&nt), Some(&na), Some(&nb)) = (
                map.get(s as usize),
                map.get(t as usize),
                map.get(a),
                map.get(b),
            ) else {
                continue;
            };
            if ns == u32::MAX || nt == u32::MAX || na == u32::MAX || nb == u32::MAX {
                continue;
            }
            let (ns, nt) = (ns as usize, nt as usize);
            if (ns | nt) >= stride || (na | nb) > ID_MASK {
                continue;
            }
            self.table[(ns << self.shift) | nt] = pack(na as usize, nb as usize, delta, null);
            self.filled.push((ns as u16, nt as u16));
        }
    }

    /// Visits every filled entry as `(s, t, &mut entry)` — used to recompute
    /// the cached leader deltas when role tracking is primed after pairs
    /// were already compiled.
    pub(crate) fn for_each_filled_mut(&mut self, mut f: impl FnMut(usize, usize, &mut u32)) {
        let shift = self.shift;
        for &(s, t) in &self.filled {
            f(
                s as usize,
                t as usize,
                &mut self.table[((s as usize) << shift) | t as usize],
            );
        }
    }

    /// Snapshot geometry: `(active, shift, has_table)`. Together with the
    /// filled entries from [`for_each_filled`](Self::for_each_filled) this is
    /// the cache's complete trajectory-relevant state — the stride in
    /// particular decides which pairs are addressable (and therefore which
    /// compile, feed the null ledger, and consume RNG), so it must be
    /// restored exactly rather than re-derived from the entry count.
    pub(crate) fn snapshot_geometry(&self) -> (bool, u32, bool) {
        (self.active, self.shift, !self.table.is_empty())
    }

    /// Rebuilds a cache from snapshot parts; the exact inverse of
    /// [`snapshot_geometry`](Self::snapshot_geometry) + the filled-entry
    /// list (in fill order). Returns `None` instead of panicking on
    /// inconsistent input — this is fed from deserialized bytes.
    pub(crate) fn restore(
        limit: usize,
        active: bool,
        shift: u32,
        has_table: bool,
        entries: &[(u16, u16, u32)],
    ) -> Option<Self> {
        let mut cache = Self::new(limit);
        cache.active = active;
        if !has_table || !active {
            // An inactive cache never holds a table; a never-grown active
            // cache has neither table nor entries.
            if !entries.is_empty() || (!active && has_table) {
                return None;
            }
            return Some(cache);
        }
        if shift > ID_BITS {
            return None;
        }
        cache.shift = shift;
        cache.table = vec![EMPTY; 1 << (2 * shift)];
        let stride = 1u16 << shift;
        for &(s, t, entry) in entries {
            // Packed entries never use bits 28.. and never equal EMPTY.
            if s >= stride || t >= stride || entry == EMPTY || entry >> (NULL_BIT + 1) != 0 {
                return None;
            }
            let slot = ((s as usize) << shift) | t as usize;
            if cache.table[slot] != EMPTY {
                return None;
            }
            cache.table[slot] = entry;
            cache.filled.push((s, t));
        }
        Some(cache)
    }

    /// Visits every filled entry as `(s, t, entry)` — used to re-seed the
    /// jump scheduler's null ledger from already-compiled pairs when the
    /// scheduler is (re-)enabled mid-run.
    pub(crate) fn for_each_filled(&self, mut f: impl FnMut(usize, usize, u32)) {
        let shift = self.shift;
        for &(s, t) in &self.filled {
            f(
                s as usize,
                t as usize,
                self.table[((s as usize) << shift) | t as usize],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (a, b, d, null) in [
            (0usize, 0usize, 0i8, true),
            (1, 2, -2, false),
            (5, 3, 2, false),
            ((1 << 12) - 1, 7, 1, false),
            (7, (1 << 12) - 1, -1, true),
        ] {
            let e = pack(a, b, d, null);
            assert_ne!(e, EMPTY);
            assert_eq!(unpack(e), (a, b, d, null));
        }
    }

    #[test]
    fn growth_remaps_entries() {
        let mut c = PairCache::new(MAX_COMPILED_STATES);
        assert!(c.ensure_states(2));
        assert!(c.store(0, 1, 1, 0, 0, false));
        assert!(c.store(1, 1, 1, 1, 0, true));
        // Force several growths past the initial 16-slot stride.
        assert!(c.ensure_states(100));
        assert_eq!(unpack(c.get(0, 1)), (1, 0, 0, false));
        assert_eq!(unpack(c.get(1, 1)), (1, 1, 0, true));
        assert_eq!(c.get(5, 5), EMPTY);
        assert!(c.store(90, 17, 17, 90, -1, false));
        assert!(c.ensure_states(1000));
        assert_eq!(unpack(c.get(90, 17)), (17, 90, -1, false));
        assert_eq!(c.compiled_pairs(), 3);
        assert_eq!(c.table_bytes(), 1024 * 1024 * 4);
    }

    #[test]
    fn saturates_past_limit_instead_of_deactivating() {
        let mut c = PairCache::new(8);
        assert!(c.ensure_states(8));
        assert!(c.store(0, 0, 0, 0, 0, true));
        // Past the limit the cache stays active but stops covering new ids
        // (the stride rounds up to the 16-slot minimum); the return value
        // reports the saturation.
        assert!(!c.ensure_states(40));
        assert!(c.is_active());
        assert!(c.is_saturated(40));
        assert_eq!(c.addressable_states(), 16);
        // In-range pairs keep their entries and accept new ones…
        assert_eq!(unpack(c.get(0, 0)), (0, 0, 0, true));
        assert!(c.store(3, 2, 2, 3, 0, false));
        // …while out-of-range keys read EMPTY and refuse stores.
        assert_eq!(c.get(17, 0), EMPTY);
        assert!(!c.store(17, 0, 0, 0, 0, true));
        assert!(!c.store(0, 39, 0, 0, 0, true));
        assert_eq!(c.compiled_pairs(), 2);
    }

    #[test]
    fn explicit_deactivation_clears_everything() {
        let mut c = PairCache::new(8);
        c.ensure_states(4);
        assert!(c.store(0, 0, 0, 0, 0, true));
        c.deactivate();
        assert!(!c.is_active());
        assert_eq!(c.get(0, 0), EMPTY);
        assert_eq!(c.table_bytes(), 0);
        assert_eq!(c.compiled_pairs(), 0);
        assert!(!c.store(0, 0, 0, 0, 0, true));
        c.reactivate();
        assert!(c.ensure_states(4));
        assert_eq!(c.get(0, 0), EMPTY, "deactivation dropped the entries");
    }

    #[test]
    fn compact_remaps_live_entries_and_drops_dead() {
        let mut c = PairCache::new(MAX_COMPILED_STATES);
        c.ensure_states(40);
        assert!(c.store(3, 19, 3, 19, 0, true));
        assert!(c.store(19, 3, 0, 0, -2, false));
        assert!(c.store(7, 7, 8, 7, 1, false)); // 8 is dead below
                                                // Live: {0, 3, 7, 19} → {0, 1, 2, 3}; everything else dies.
        let mut map = vec![u32::MAX; 40];
        map[0] = 0;
        map[3] = 1;
        map[7] = 2;
        map[19] = 3;
        c.compact(&map, 4);
        assert_eq!(c.compiled_pairs(), 2);
        assert_eq!(unpack(c.get(1, 3)), (1, 3, 0, true));
        assert_eq!(unpack(c.get(3, 1)), (0, 0, -2, false));
        // The (7,7) entry referenced dead id 8 and must be gone.
        assert_eq!(c.get(2, 2), EMPTY);
        // Shrunk to the 16-slot minimum stride.
        assert_eq!(c.addressable_states(), 16);
        assert_eq!(c.table_bytes(), 16 * 16 * 4);
    }

    #[test]
    fn for_each_filled_visits_coordinates() {
        let mut c = PairCache::new(64);
        c.ensure_states(20);
        assert!(c.store(3, 19, 3, 19, 2, false));
        assert!(c.store(19, 3, 0, 0, -2, false));
        let mut seen = Vec::new();
        c.for_each_filled_mut(|s, t, e| {
            seen.push((s, t));
            let (a, b, d, null) = unpack(*e);
            *e = pack(a, b, -d, null);
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(3, 19), (19, 3)]);
        assert_eq!(unpack(c.get(3, 19)).2, -2);
        assert_eq!(unpack(c.get(19, 3)).2, 2);
    }
}
