//! Engine error types.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The population must contain at least two agents so that a pair of
    /// distinct agents can interact.
    PopulationTooSmall {
        /// The offending population size.
        n: usize,
    },
    /// An agent index was outside the population.
    AgentOutOfBounds {
        /// Offending agent index.
        agent: usize,
        /// Population size.
        n: usize,
    },
    /// An interaction paired an agent with itself.
    SelfInteraction {
        /// The agent that would interact with itself.
        agent: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::PopulationTooSmall { n } => {
                write!(f, "population of {n} agents is too small; need at least 2")
            }
            EngineError::AgentOutOfBounds { agent, n } => {
                write!(f, "agent index {agent} out of bounds for population of {n}")
            }
            EngineError::SelfInteraction { agent } => {
                write!(f, "agent {agent} cannot interact with itself")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = EngineError::PopulationTooSmall { n: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = EngineError::AgentOutOfBounds { agent: 7, n: 3 };
        assert!(e.to_string().contains('7'));
        let e = EngineError::SelfInteraction { agent: 2 };
        assert!(e.to_string().contains("itself"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<EngineError>();
    }
}
