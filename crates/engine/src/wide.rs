//! The **wide lane engine**: lockstep multi-seed simulation over one shared
//! compiled pair cache.
//!
//! Table-1 grids run hundreds of seeds per population size, and every seed
//! of a `(protocol, n)` cell explores the *same* transition structure: the
//! same reachable states, the same compiled pair effects, the same tier
//! heuristics. The scalar [`CountSimulation`](crate::CountSimulation) pays
//! for that structure once per seed. [`WideSimulation`] instead advances
//! `W` same-`n` seeds (the *lanes*) in lockstep:
//!
//! * **One shared pair cache.** States are interned into a single global id
//!   space and pair transitions compile into one shared cache; a pair
//!   compiled by any lane is a cache hit for every other lane.
//! * **Structure-of-arrays counts.** Occupancies live in one
//!   `counts[state][lane]` matrix (row-major by global state id, the lane
//!   dimension contiguous), so the convergence check, the bulk count
//!   merges, and the retirement bookkeeping are dense row sweeps the
//!   compiler can autovectorize — fixed-width chunking on stable Rust, no
//!   nightly `std::simd` dependency.
//! * **One RNG stream per lane.** Each lane owns its generator (use
//!   [`SeedSequence::rng_at`](pp_rand::SeedSequence::rng_at) to derive
//!   independent streams), and consumes it in **exactly the scalar
//!   engine's draw order**: under a pinned tier policy every lane is
//!   bit-identical to the scalar run with the same seed (see
//!   *Bit-identity* below).
//! * **Amortized reviews and compaction.** Tier reviews, lane-slot
//!   compaction, and global state-id compaction run once per review window
//!   for the whole lane set instead of once per seed.
//! * **Early retirement.** A converged (or budget-exhausted) lane is
//!   removed and the lane dimension is compacted, so live lanes stay dense
//!   and the SoA sweeps never touch finished work.
//!
//! # Lane-local slot numbering
//!
//! The inverse-CDF pair sampler selects slots *by index order*, so a lane
//! is bit-identical to its scalar twin only if its slot numbering matches
//! the scalar engine's interning order — which is the order that lane's own
//! trajectory first occupies states, not the order the *union* of lanes
//! discovers them. Each lane therefore carries a tiny slot table
//! (`slot ↔ global id`) assigned in its own first-occupancy order, while
//! cached effects, counts, and compaction live in the shared global space.
//!
//! # Bit-identity and law equivalence
//!
//! With a **pinned** policy ([`WideTierPolicy::PinnedPerStep`] or
//! [`WideTierPolicy::PinnedBatch`]) every lane consumes its RNG in the
//! scalar engine's exact draw order, so per-lane trajectories, step counts,
//! and final configurations are bit-identical to the scalar engine under
//! the matching pinned scalar configuration (compiled per-step execution
//! with the jump and batch tiers disabled; or
//! [`force_batch_mode`](crate::CountSimulation::force_batch_mode) — both
//! with compaction off). The regression suite
//! (`crates/engine/tests/wide_equivalence.rs`) pins this.
//!
//! [`WideTierPolicy::Auto`] dispatches heuristically (per-step vs batch
//! rounds, compaction, spill-out of null-dominated lanes) and is equal *in
//! law* to the scalar engine — same distribution over trajectories, step
//! counts included — but not bit-identical, exactly like the scalar jump
//! and batch tiers relative to per-step execution. The chi-square suite
//! (`tests/wide_law.rs`) covers the heuristic dispatch.
//!
//! # Null-dominated lanes
//!
//! The wide engine has no jump tier: telescoping nulls is inherently
//! per-lane work with no cross-lane structure to share. When a lane's
//! configuration becomes null-dominated (the scalar jump scheduler's engage
//! rule), the auto policy **spills** the lane out of an election run —
//! [`WideElection::spilled`] hands back its exact counts, RNG, and step
//! counter so the caller finishes it on a scalar
//! [`CountSimulation`](crate::CountSimulation), whose jump scheduler
//! telescopes the null tail in `O(1)` expected work per real transition.

use crate::compiled::{self, PairCache};
use crate::obs::{EngineEvent, EngineMetrics, EngineObserver};
use crate::round::{self, BatchScratch, SegmentDraw};
use crate::tier::{self, EngineConfig, EngineTier, JumpStats, TierUsage};
use crate::{
    BatchStats, EngineError, LeaderElection, Protocol, Role, RunOutcome, CONVERGENCE_BATCH,
};
use pp_rand::{Rng64, SumTreeSampler, Xoshiro256PlusPlus};
use std::collections::HashMap;
use std::time::Instant;

/// Sentinel in the seen-state map for global ids reclaimed by compaction
/// (same convention as the scalar engine).
const DEAD_GID: u32 = u32::MAX;

/// Sentinel in a lane's `global id → slot` table for states the lane has
/// never occupied.
const NO_SLOT: u32 = u32::MAX;

/// Lanes per interleaved shuffle block. Enough independent RNG chains to
/// hide the generator's serial latency, while the block's sequences
/// (`≈ √n` entries each) stay L1-resident — interleaving *all* lanes at
/// once thrashes L1 and measures slower than the scalar serial order.
const SHUFFLE_LANE_BLOCK: usize = 4;

/// Ceiling on the category-stamp table (`slots²` entries) of the
/// deduplicated bulk apply. At the cap the two `u32` side tables cost
/// 2 MiB; lanes whose live support squares past it fall back to the
/// per-interaction loop.
const CAT_TABLE_CAP: usize = 1 << 18;

/// Bulks shorter than this skip category deduplication: with only a
/// handful of interactions most categories are unique and the stamp
/// passes cost more than the saved cache lookups.
const CAT_DEDUP_MIN_BULK: u64 = 32;

/// How the wide engine picks its execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideTierPolicy {
    /// Heuristic dispatch: batch rounds while the support is small against
    /// the expected collision-free run (the scalar engage rule evaluated
    /// over the whole lane set), per-step chunks otherwise, with lane-slot
    /// and global-id compaction at reviews and null-dominated lanes
    /// spilled out of election runs. Equal in law to the scalar engine,
    /// not bit-identical.
    Auto,
    /// Compiled per-step execution only, no compaction: every lane is
    /// bit-identical to a scalar run with the same RNG, the jump and batch
    /// tiers disabled, and compaction off.
    PinnedPerStep,
    /// Batch rounds only, no compaction: every lane is bit-identical to a
    /// scalar run with the same RNG under
    /// [`force_batch_mode`](crate::CountSimulation::force_batch_mode) with
    /// the jump scheduler disabled and compaction off. Requires
    /// `n ≤ u32::MAX` (exact integer category weights), like the scalar
    /// batch tier.
    PinnedBatch,
    /// Batch rounds with **law-only** cross-lane sampling: one shared
    /// run-length inversion and one shared responder-permutation index
    /// stream serve the whole lane set, and each lane pairs its margins
    /// through the contingency cells of [`crate::round::ContingencyLaw`]
    /// where the support allows. Every lane's *marginal* law is exactly
    /// the scalar engine's (uniform inputs stay uniform when reused), so
    /// per-seed statistics are unbiased — but lanes within one wide run
    /// are **correlated** (they share round lengths), so the `W` lanes are
    /// not independent seeds. Not bit-identical to any scalar
    /// configuration; pinned by the chi-square suite (`tests/round_law.rs`).
    /// Requires `n ≤ u32::MAX` like [`PinnedBatch`](Self::PinnedBatch).
    LawOnly,
}

/// A lane extracted from a wide run so the caller can finish it on the
/// scalar engine (see the module docs on null-dominated lanes).
#[derive(Debug)]
pub struct WideLaneExport<S, R> {
    /// The lane's position in the original RNG vector.
    pub index: usize,
    /// Interactions the lane executed inside the wide run.
    pub steps: u64,
    /// The lane's exact configuration, in lane-slot order (deterministic
    /// given the lane's trajectory).
    pub counts: Vec<(S, u64)>,
    /// The lane's RNG, positioned exactly after its last wide draw.
    pub rng: R,
}

/// Result of [`WideSimulation::run_until_single_leader`].
#[derive(Debug)]
pub struct WideElection<S, R> {
    /// Per-lane outcomes, indexed by original lane position; `None` for
    /// lanes that were spilled instead of finished.
    pub outcomes: Vec<Option<RunOutcome>>,
    /// Null-dominated lanes handed back for scalar completion (empty under
    /// pinned policies or with spilling disabled).
    pub spilled: Vec<WideLaneExport<S, R>>,
}

/// Per-lane state: the RNG stream, the lane-local slot tables, and the
/// per-step sampler tree.
#[derive(Debug)]
struct Lane<R> {
    /// Position in the original RNG vector (stable across retirement).
    index: usize,
    rng: R,
    steps: u64,
    /// Running leader count; valid once role tracking is primed.
    leaders: i64,
    /// Number of lane slots with a positive count.
    support: usize,
    /// Lane slot → global id, in this lane's first-occupancy order.
    slot_gid: Vec<u32>,
    /// Global id → lane slot ([`NO_SLOT`] when absent). Grown lazily.
    gid_slot: Vec<u32>,
    /// Per-step sampler over lane slots; its weights are the lane's counts
    /// while in per-step mode, stale in batch mode (rebuilt on exit).
    tree: SumTreeSampler,
    /// Batch-round urn scratch, indexed by lane slot.
    scratch: BatchScratch,
}

impl<R> Lane<R> {
    fn slots(&self) -> usize {
        self.slot_gid.len()
    }

    /// The lane slot of global id `gid`, interning a fresh slot on first
    /// occupancy. `grow_tree` appends a sampler slot too (per-step mode;
    /// batch mode rebuilds the tree wholesale on exit instead).
    fn slot_of(&mut self, gid: usize, grow_tree: bool) -> usize {
        if let Some(&slot) = self.gid_slot.get(gid) {
            if slot != NO_SLOT {
                return slot as usize;
            }
        }
        if self.gid_slot.len() <= gid {
            self.gid_slot.resize(gid + 1, NO_SLOT);
        }
        let slot = self.slot_gid.len();
        self.slot_gid.push(gid as u32);
        self.gid_slot[gid] = slot as u32;
        if grow_tree {
            let pushed = self.tree.push_slot();
            debug_assert_eq!(pushed, slot);
        }
        slot
    }
}

/// Global state shared by every lane: the interned state universe, the
/// compiled pair cache, and the SoA count matrix.
#[derive(Debug)]
struct Shared<P: Protocol> {
    protocol: P,
    /// Every state any lane has ever visited, mapped to its live global id
    /// — or [`DEAD_GID`] after compaction reclaimed it.
    ids: HashMap<P::State, u32>,
    /// Live states by global id (global compaction renumbers).
    states: Vec<P::State>,
    outputs: Vec<P::Output>,
    /// 1 for states with the primed leader output, else 0 (all-zero until
    /// role tracking is primed).
    leader_flags: Vec<i8>,
    leader_output: Option<P::Output>,
    /// Compiled pair effects keyed by global ids, shared across lanes.
    pairs: PairCache,
    /// SoA counts: `counts[gid * width + lane]` for the live lanes.
    counts: Vec<u64>,
    /// Live lane count — the SoA stride.
    width: usize,
}

impl<P: Protocol> Shared<P> {
    fn intern(&mut self, state: P::State) -> u32 {
        if let Some(&id) = self.ids.get(&state) {
            if id != DEAD_GID {
                return id;
            }
        }
        let id = self.states.len() as u32;
        debug_assert_ne!(id, DEAD_GID, "global id space exhausted");
        let output = self.protocol.output(&state);
        self.leader_flags
            .push(i8::from(self.leader_output.as_ref() == Some(&output)));
        self.outputs.push(output);
        self.states.push(state.clone());
        self.ids.insert(state, id);
        self.counts.resize(self.counts.len() + self.width, 0);
        self.pairs.ensure_states(self.states.len());
        id
    }

    /// Compiles the ordered global pair `(gs, gt)`: runs the protocol's
    /// transition, interns the successors (initiator's first, exactly like
    /// the scalar engine), and stores the packed effect when representable.
    #[cold]
    #[inline(never)]
    fn compile(&mut self, gs: usize, gt: usize) -> (usize, usize, i8, bool) {
        let (na, nb) = self.protocol.transition(&self.states[gs], &self.states[gt]);
        let a = self.intern(na) as usize;
        let b = self.intern(nb) as usize;
        let delta = self.leader_flags[a] + self.leader_flags[b]
            - self.leader_flags[gs]
            - self.leader_flags[gt];
        let null = a == gs && b == gt;
        self.pairs.store(gs, gt, a, b, delta, null);
        (a, b, delta, null)
    }

    /// The compiled effect of the ordered global pair, compiling on a miss.
    #[inline]
    fn effect(&mut self, gs: usize, gt: usize) -> (usize, usize, i8, bool) {
        let entry = self.pairs.get(gs, gt);
        if entry == compiled::EMPTY {
            self.compile(gs, gt)
        } else {
            compiled::unpack(entry)
        }
    }

    /// The effect of lane pair `(s, t)` in lane-slot terms, interning lane
    /// slots for the successors (initiator's first — the scalar interning
    /// order) on the lane's first occupancy.
    #[inline]
    fn lane_effect<R>(
        &mut self,
        lane: &mut Lane<R>,
        s: usize,
        t: usize,
        grow_tree: bool,
    ) -> (usize, usize, i8, bool) {
        let gs = lane.slot_gid[s] as usize;
        let gt = lane.slot_gid[t] as usize;
        let (ga, gb, delta, null) = self.effect(gs, gt);
        let a = lane.slot_of(ga, grow_tree);
        let b = lane.slot_of(gb, grow_tree);
        (a, b, delta, null)
    }
}

/// Reusable buffers of the staged batch round, kept out of the per-lane
/// state so retiring a lane frees no hot allocation.
///
/// `survival` is the shared collision-free survival-product table: entry
/// `j` holds the probability that the first `j` interactions of a round
/// are collision-free, built by exactly the scalar sampler's running
/// product (it depends only on `n` and the in-round step index, never on
/// a lane). It persists across rounds and is extended lazily; see
/// [`prefix_lockstep`].
#[derive(Debug, Default)]
struct RoundBuffers {
    gather: Vec<u64>,
    uniforms: Vec<f64>,
    budgets: Vec<u64>,
    bulks: Vec<u64>,
    collides: Vec<bool>,
    survival: Vec<f64>,
    /// Category keys (`initiator · slots + responder`) of the current
    /// lane's bulk, in first-occurrence order — the order the
    /// per-interaction loop would intern successors in.
    cat_keys: Vec<u32>,
    /// Multiplicity of each key in `cat_keys`.
    cat_counts: Vec<u64>,
    /// Key → position in `cat_keys`, valid when stamped with `cat_epoch`.
    cat_index: Vec<u32>,
    /// Per-key epoch stamps: clear-free reset of `cat_index` each bulk.
    cat_stamp: Vec<u32>,
    /// Current stamp epoch.
    cat_epoch: u32,
}

/// Lockstep multi-seed count engine; see the module docs.
///
/// # Example
///
/// ```
/// use pp_engine::wide::WideSimulation;
/// use pp_engine::{LeaderElection, Protocol, Role};
/// use pp_rand::SeedSequence;
///
/// #[derive(Clone)]
/// struct Frat;
/// impl Protocol for Frat {
///     type State = bool;
///     type Output = Role;
///     fn initial_state(&self) -> bool { true }
///     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
///         if *a && *b { (true, false) } else { (*a, *b) }
///     }
///     fn output(&self, s: &bool) -> Role {
///         if *s { Role::Leader } else { Role::Follower }
///     }
/// }
/// impl LeaderElection for Frat { fn monotone_leaders(&self) -> bool { true } }
///
/// let seq = SeedSequence::new(42);
/// let rngs = (0..4u64).map(|i| seq.rng_at(i)).collect();
/// let mut wide = WideSimulation::new(Frat, 256, rngs).unwrap();
/// wide.set_spill(false); // keep every lane in-engine for the example
/// let election = wide.run_until_single_leader(u64::MAX);
/// assert!(election.outcomes.iter().all(|o| o.unwrap().converged));
/// ```
#[derive(Debug)]
pub struct WideSimulation<P: Protocol, R = Xoshiro256PlusPlus> {
    shared: Shared<P>,
    lanes: Vec<Lane<R>>,
    config: EngineConfig,
    policy: WideTierPolicy,
    /// Whether lanes currently advance through batch rounds (the SoA is
    /// canonical) or per-step chunks (the lane trees are canonical).
    batch_mode: bool,
    /// Next review threshold on the minimum lane step count.
    review_at: u64,
    /// Spill null-dominated lanes out of election runs (auto policy only).
    spill: bool,
    n: u64,
    stats: BatchStats,
    round: RoundBuffers,
    /// Interactions executed per dispatch mode, summed over all lanes
    /// (batch rounds count as [`EngineTier::Batch`], per-step chunks as
    /// [`EngineTier::Compiled`] — the wide engine always runs through the
    /// shared pair cache).
    usage: TierUsage,
    /// Structured-event observer; boxed so the detached engine pays one
    /// pointer of state and one branch per round/chunk boundary.
    obs: Option<Box<EngineObserver>>,
}

impl<P: Protocol, R: Rng64> WideSimulation<P, R> {
    /// Creates a wide simulation of `rngs.len()` lanes, each `n` agents in
    /// the initial state, with the default config and the auto policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn new(protocol: P, n: usize, rngs: Vec<R>) -> Result<Self, EngineError> {
        Self::with_config(
            protocol,
            n,
            rngs,
            EngineConfig::default(),
            WideTierPolicy::Auto,
        )
    }

    /// Creates a wide simulation with explicit tier tuning and policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    ///
    /// # Panics
    ///
    /// Panics when the pinned batch policy is combined with `n > u32::MAX`
    /// (the batch tier's exact integer category weights need `n(n−1)` to
    /// fit a `u64`), mirroring the scalar
    /// [`force_batch_mode`](crate::CountSimulation::force_batch_mode).
    pub fn with_config(
        protocol: P,
        n: usize,
        rngs: Vec<R>,
        config: EngineConfig,
        policy: WideTierPolicy,
    ) -> Result<Self, EngineError> {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        if matches!(
            policy,
            WideTierPolicy::PinnedBatch | WideTierPolicy::LawOnly
        ) {
            assert!(
                n as u64 <= tier::BATCH_MAX_POPULATION,
                "the batch tier supports populations up to u32::MAX"
            );
        }
        let config = config.validated();
        let width = rngs.len();
        let mut shared = Shared {
            protocol,
            ids: HashMap::new(),
            states: Vec::new(),
            outputs: Vec::new(),
            leader_flags: Vec::new(),
            leader_output: None,
            pairs: PairCache::new(config.max_compiled_states),
            counts: Vec::new(),
            width,
        };
        let init = shared.protocol.initial_state();
        let gid = shared.intern(init) as usize;
        debug_assert_eq!(gid, 0);
        let lanes = rngs
            .into_iter()
            .enumerate()
            .map(|(index, rng)| {
                shared.counts[gid * width + index] = n as u64;
                Lane {
                    index,
                    rng,
                    steps: 0,
                    leaders: 0,
                    support: 1,
                    slot_gid: vec![gid as u32],
                    gid_slot: vec![0],
                    tree: SumTreeSampler::from_weights(&[n as u64])
                        .expect("population is non-empty"),
                    scratch: BatchScratch::default(),
                }
            })
            .collect();
        Ok(Self {
            shared,
            lanes,
            config,
            batch_mode: matches!(
                policy,
                WideTierPolicy::PinnedBatch | WideTierPolicy::LawOnly
            ),
            policy,
            review_at: 0,
            spill: policy == WideTierPolicy::Auto,
            n: n as u64,
            stats: BatchStats::default(),
            round: RoundBuffers::default(),
            usage: TierUsage::default(),
            obs: None,
        })
    }

    /// The population size every lane simulates.
    pub fn population(&self) -> usize {
        self.n as usize
    }

    /// Live (unretired, unspilled) lane count.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The execution policy picked at construction.
    pub fn policy(&self) -> WideTierPolicy {
        self.policy
    }

    /// Disables (or re-enables) spilling null-dominated lanes out of
    /// election runs. Only meaningful under the auto policy; pinned
    /// policies never spill.
    pub fn set_spill(&mut self, enabled: bool) {
        self.spill = enabled && self.policy == WideTierPolicy::Auto;
    }

    /// Step counter of the live lane at `pos`.
    pub fn lane_steps(&self, pos: usize) -> u64 {
        self.lanes[pos].steps
    }

    /// Original index of the live lane at `pos`.
    pub fn lane_index(&self, pos: usize) -> usize {
        self.lanes[pos].index
    }

    /// The minimum step counter over live lanes (0 when none remain) —
    /// the lockstep "time" of the whole simulation.
    pub fn steps(&self) -> u64 {
        self.lanes.iter().map(|l| l.steps).min().unwrap_or(0)
    }

    /// Aggregate batch-tier counters across all lanes.
    ///
    /// Superseded by [`metrics`](Self::metrics), which reports these
    /// counters alongside the rest of the engine's observables; kept as a
    /// thin shim for existing callers.
    pub fn batch_stats(&self) -> BatchStats {
        self.stats
    }

    /// Interactions executed per dispatch mode, summed over all lanes.
    pub fn tier_usage(&self) -> TierUsage {
        self.usage
    }

    /// Attaches `observer` to receive structured engine events. Observation
    /// consumes no randomness and leaves every lane's trajectory
    /// bit-identical to a detached run.
    pub fn set_observer(&mut self, observer: EngineObserver) {
        self.obs = Some(Box::new(observer));
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&EngineObserver> {
        self.obs.as_deref()
    }

    /// Detaches and returns the observer, if one was attached.
    pub fn take_observer(&mut self) -> Option<EngineObserver> {
        self.obs.take().map(|boxed| *boxed)
    }

    /// A unified point-in-time snapshot of the wide engine's observables.
    ///
    /// `steps` is the lockstep minimum over live lanes, `support` the
    /// maximum lane support (the quantity the batch heuristics test), and
    /// the jump counters are always zero — the wide engine has no jump
    /// tier.
    pub fn metrics(&self) -> EngineMetrics {
        let steps = self.steps();
        let support = self.lanes.iter().map(|l| l.support).max().unwrap_or(0);
        EngineMetrics {
            population: self.n,
            steps,
            parallel_time: steps as f64 / self.n as f64,
            support: support as u64,
            distinct_states_seen: self.shared.ids.len() as u64,
            active_tier: if self.batch_mode {
                EngineTier::Batch
            } else {
                EngineTier::Compiled
            },
            law: self.config.law_mode,
            tier_usage: self.usage,
            jump: JumpStats::default(),
            batch: self.stats,
            cache_active: self.shared.pairs.is_active(),
            compiled_pairs: self.shared.pairs.compiled_pairs() as u64,
            events_recorded: self.obs.as_deref().map_or(0, |o| o.events().len() as u64),
            events_dropped: self.obs.as_deref().map_or(0, EngineObserver::dropped),
            timeline: self.obs.as_deref().map(|o| *o.timeline()),
        }
    }

    /// Distinct states seen by the union of all lanes (the shared interned
    /// universe).
    pub fn distinct_states_seen(&self) -> usize {
        self.shared.ids.len()
    }

    /// Live global ids (the SoA row count); strictly less than
    /// [`distinct_states_seen`](Self::distinct_states_seen) once global
    /// compaction has reclaimed dead states.
    pub fn live_states(&self) -> usize {
        self.shared.states.len()
    }

    /// The shared compiled pair cache (for diagnostics).
    pub fn pair_cache(&self) -> &PairCache {
        &self.shared.pairs
    }

    /// The exact state counts of the live lane at `pos`.
    pub fn lane_state_counts(&self, pos: usize) -> HashMap<P::State, u64> {
        let lane = &self.lanes[pos];
        let counts = self.lane_counts(pos);
        lane.slot_gid
            .iter()
            .zip(&counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&gid, &c)| (self.shared.states[gid as usize].clone(), c))
            .collect()
    }

    /// The lane's canonical counts in lane-slot order.
    fn lane_counts(&self, pos: usize) -> Vec<u64> {
        let lane = &self.lanes[pos];
        if self.batch_mode {
            let w = self.shared.width;
            lane.slot_gid
                .iter()
                .map(|&gid| self.shared.counts[gid as usize * w + pos])
                .collect()
        } else {
            lane.tree.weights().to_vec()
        }
    }

    /// Copies every lane's tree weights into the SoA matrix (no-op in
    /// batch mode, where the SoA is already canonical). Every SoA entry a
    /// lane ever made positive has a lane slot, so writing through the
    /// slot tables refreshes every stale entry.
    fn sync_soa(&mut self) {
        if self.batch_mode {
            return;
        }
        let w = self.shared.width;
        for (pos, lane) in self.lanes.iter().enumerate() {
            let weights = lane.tree.weights();
            for (slot, &gid) in lane.slot_gid.iter().enumerate() {
                self.shared.counts[gid as usize * w + pos] = weights[slot];
            }
        }
    }

    /// Enters batch mode: the SoA becomes canonical.
    fn enter_batch(&mut self) {
        debug_assert!(!self.batch_mode);
        self.sync_soa();
        self.batch_mode = true;
    }

    /// Leaves batch mode: rebuilds every lane tree from its SoA column.
    /// Tree selection is a pure function of the weights, so a rebuilt tree
    /// draws identically to an incrementally-maintained one.
    fn exit_batch(&mut self) {
        debug_assert!(self.batch_mode);
        self.batch_mode = false;
        let w = self.shared.width;
        for (pos, lane) in self.lanes.iter_mut().enumerate() {
            let counts: Vec<u64> = lane
                .slot_gid
                .iter()
                .map(|&gid| self.shared.counts[gid as usize * w + pos])
                .collect();
            lane.tree = SumTreeSampler::from_weights(&counts).expect("population is non-empty");
        }
    }

    /// Removes the live lane at `pos` (swap-remove) and compacts the lane
    /// dimension of the SoA so live columns stay dense.
    fn remove_lane(&mut self, pos: usize) -> Lane<R> {
        let old_w = self.shared.width;
        let lane = self.lanes.swap_remove(pos);
        let new_w = old_w - 1;
        let rows = self.shared.states.len();
        let soa = &mut self.shared.counts;
        // Pass 1: the swapped-in last column takes the removed position.
        if pos != new_w {
            for g in 0..rows {
                soa[g * old_w + pos] = soa[g * old_w + new_w];
            }
        }
        // Pass 2: compact the stride in place (every read index is at or
        // ahead of its write index, so the forward sweep never clobbers
        // unread data).
        if new_w > 0 {
            for g in 1..rows {
                for l in 0..new_w {
                    soa[g * new_w + l] = soa[g * old_w + l];
                }
            }
        }
        soa.truncate(rows * new_w);
        self.shared.width = new_w;
        lane
    }

    /// Exports the live lane at `pos` for scalar completion.
    fn export_lane(&mut self, pos: usize) -> WideLaneExport<P::State, R> {
        let counts: Vec<(P::State, u64)> = {
            let lane = &self.lanes[pos];
            let weights = self.lane_counts(pos);
            lane.slot_gid
                .iter()
                .zip(&weights)
                .filter(|&(_, &c)| c > 0)
                .map(|(&gid, &c)| (self.shared.states[gid as usize].clone(), c))
                .collect()
        };
        let lane = self.remove_lane(pos);
        WideLaneExport {
            index: lane.index,
            steps: lane.steps,
            counts,
            rng: lane.rng,
        }
    }

    /// Advances **every** live lane by exactly `steps` interactions, in
    /// lockstep. Converged lanes are not retired here (retirement belongs
    /// to [`run_until_single_leader`]); use this for throughput work and
    /// fixed-budget comparisons.
    ///
    /// [`run_until_single_leader`]: Self::run_until_single_leader
    pub fn run(&mut self, steps: u64) {
        if steps == 0 || self.lanes.is_empty() {
            return;
        }
        let targets: Vec<u64> = self.lanes.iter().map(|l| l.steps + steps).collect();
        loop {
            self.review();
            let watched = self.obs.is_some();
            let t0 = if watched { Some(Instant::now()) } else { None };
            let before: u64 = self.lanes.iter().map(|l| l.steps).sum();
            let mode = if self.batch_mode {
                EngineTier::Batch
            } else {
                EngineTier::Compiled
            };
            if self.batch_mode {
                let budgets: Vec<u64> = self
                    .lanes
                    .iter()
                    .zip(&targets)
                    .map(|(l, &t)| t.saturating_sub(l.steps))
                    .collect();
                if self.policy == WideTierPolicy::LawOnly {
                    self.law_only_round(&budgets, false);
                } else {
                    self.batch_round(&budgets, false);
                }
            } else {
                for (pos, &target) in targets.iter().enumerate() {
                    let remaining = target.saturating_sub(self.lanes[pos].steps);
                    if remaining == 0 {
                        continue;
                    }
                    let mut left = remaining.min(CONVERGENCE_BATCH);
                    while left > 0 {
                        let (did, _) =
                            lane_chunk(&mut self.shared, &mut self.lanes[pos], left, false);
                        debug_assert!(did > 0, "chunks always make progress");
                        left -= did.min(left);
                    }
                }
            }
            let advanced = self.lanes.iter().map(|l| l.steps).sum::<u64>() - before;
            self.usage.note(mode, advanced);
            if let Some(t0) = t0 {
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.timeline_mut()
                        .note(mode, advanced, t0.elapsed().as_secs_f64());
                }
            }
            if self.lanes.iter().zip(&targets).all(|(l, &t)| l.steps >= t) {
                return;
            }
        }
    }

    /// One auto-policy review: syncs the SoA, compacts lane slots and the
    /// global id space when enough dead ids accumulated, and applies the
    /// batch engage/exit heuristics over the whole lane set. Runs at most
    /// once per review window of the lockstep step counter; pinned
    /// policies never review.
    fn review(&mut self) {
        if self.policy != WideTierPolicy::Auto || self.lanes.is_empty() {
            return;
        }
        let min_steps = self.steps();
        if min_steps < self.review_at {
            return;
        }
        self.review_at = min_steps + self.n.min(CONVERGENCE_BATCH);
        self.sync_soa();
        let mut compacted = false;
        for pos in 0..self.lanes.len() {
            if self.lane_compaction_due(pos) {
                self.compact_lane(pos);
                compacted = true;
            }
        }
        if compacted {
            self.maybe_compact_global();
        }
        let sup_max = self.lanes.iter().map(|l| l.support).max().unwrap_or(0);
        if self.batch_mode {
            if tier::batch_exits(sup_max, self.n, &self.config) || !self.shared.pairs.is_active() {
                self.exit_batch();
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.record(EngineEvent::BatchExit {
                        step: min_steps,
                        support: sup_max as u64,
                        expected_run: tier::expected_run_length(self.n),
                    });
                }
            }
        } else if self.shared.pairs.is_active()
            && tier::batch_engages(sup_max, self.n, &self.config)
        {
            self.enter_batch();
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.record(EngineEvent::BatchEngage {
                    step: min_steps,
                    support: sup_max as u64,
                    expected_run: tier::expected_run_length(self.n),
                });
            }
        }
    }

    /// The scalar engine's compaction trigger, applied to one lane's slot
    /// space.
    fn lane_compaction_due(&self, pos: usize) -> bool {
        if !self.config.compaction {
            return false;
        }
        let lane = &self.lanes[pos];
        let dead = (lane.slots() - lane.support) as u64;
        lane.slots() >= 64 && dead >= 48.max((lane.support as u64).min(1024))
    }

    /// Renumbers the lane's live slots 0.. in descending-count order (ties
    /// by old slot), dropping dead slots. Consumes no randomness; slot
    /// renumbering preserves the law because selection is inverse-CDF by
    /// weight, never by position.
    fn compact_lane(&mut self, pos: usize) {
        let w = self.shared.width;
        let counts: Vec<u64> = {
            let lane = &self.lanes[pos];
            lane.slot_gid
                .iter()
                .map(|&gid| self.shared.counts[gid as usize * w + pos])
                .collect()
        };
        let lane = &mut self.lanes[pos];
        let mut live: Vec<u32> = (0..lane.slots() as u32)
            .filter(|&s| counts[s as usize] > 0)
            .collect();
        round::sort_descending(&mut live, |s| counts[s as usize]);
        let slot_gid: Vec<u32> = live
            .iter()
            .map(|&old| lane.slot_gid[old as usize])
            .collect();
        for v in lane.gid_slot.iter_mut() {
            *v = NO_SLOT;
        }
        for (new, &gid) in slot_gid.iter().enumerate() {
            lane.gid_slot[gid as usize] = new as u32;
        }
        lane.slot_gid = slot_gid;
        debug_assert_eq!(lane.support, lane.slots());
        if !self.batch_mode {
            let weights: Vec<u64> = live.iter().map(|&s| counts[s as usize]).collect();
            lane.tree = SumTreeSampler::from_weights(&weights).expect("population is non-empty");
        }
    }

    /// Global-id compaction: drops every global id no live lane references
    /// any more, renumbering survivors in descending total-count order so
    /// a saturated cache keeps addressing the heavy states. Runs only
    /// after lane compaction released slot references.
    fn maybe_compact_global(&mut self) {
        let states = self.shared.states.len();
        let w = self.shared.width;
        let mut referenced = vec![false; states];
        for lane in &self.lanes {
            for &gid in &lane.slot_gid {
                referenced[gid as usize] = true;
            }
        }
        let live_count = referenced.iter().filter(|&&r| r).count();
        let dead = (states - live_count) as u64;
        if states < 64 || dead < 48.max((live_count as u64).min(1024)) {
            return;
        }
        let mut live: Vec<u32> = (0..states as u32)
            .filter(|&g| referenced[g as usize])
            .collect();
        {
            let counts = &self.shared.counts;
            round::sort_descending(&mut live, |g| {
                let row = g as usize * w;
                counts[row..row + w].iter().sum()
            });
        }
        let mut map = vec![DEAD_GID; states];
        for (new, &old) in live.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let mut new_states = Vec::with_capacity(live.len());
        let mut new_outputs = Vec::with_capacity(live.len());
        let mut new_flags = Vec::with_capacity(live.len());
        let mut new_counts = vec![0u64; live.len() * w];
        for (new, &old) in live.iter().enumerate() {
            let o = old as usize;
            new_states.push(self.shared.states[o].clone());
            new_outputs.push(self.shared.outputs[o].clone());
            new_flags.push(self.shared.leader_flags[o]);
            new_counts[new * w..(new + 1) * w]
                .copy_from_slice(&self.shared.counts[o * w..(o + 1) * w]);
        }
        for id in self.shared.ids.values_mut() {
            if *id != DEAD_GID {
                *id = map[*id as usize];
            }
        }
        self.shared.states = new_states;
        self.shared.outputs = new_outputs;
        self.shared.leader_flags = new_flags;
        self.shared.counts = new_counts;
        self.shared.pairs.compact(&map, live.len());
        self.shared.pairs.ensure_states(self.shared.states.len());
        for lane in &mut self.lanes {
            for gid in lane.slot_gid.iter_mut() {
                debug_assert_ne!(map[*gid as usize], DEAD_GID);
                *gid = map[*gid as usize];
            }
            lane.gid_slot.clear();
            lane.gid_slot.resize(self.shared.states.len(), NO_SLOT);
            for (slot, &gid) in lane.slot_gid.iter().enumerate() {
                lane.gid_slot[gid as usize] = slot as u32;
            }
        }
    }

    /// One staged batch round: every lane with a positive budget executes
    /// one collision-free hypergeometric round, phase by phase across the
    /// lane set, consuming each lane's RNG in exactly the scalar engine's
    /// episode draw order (the per-lane streams are private, so the
    /// cross-lane staging is invisible to any single lane). With `track`
    /// set the per-lane leader counts are maintained exactly, including
    /// the scalar walk semantics and its mid-round stop on hitting 1.
    ///
    /// `budgets` is indexed by live lane position; lanes with budget 0 (or
    /// that already sit at one leader with `track`) sit the round out.
    fn batch_round(&mut self, budgets: &[u64], track: bool) {
        let n = self.n;
        let w = self.shared.width;
        debug_assert!(self.batch_mode);
        let active: Vec<usize> = (0..self.lanes.len())
            .filter(|&pos| budgets[pos] > 0 && !(track && self.lanes[pos].leaders == 1))
            .collect();
        if active.is_empty() {
            return;
        }
        // Phase A: per-lane round uniforms (the first episode draw), then
        // every lane's collision-free prefix length in lockstep.
        {
            let round = &mut self.round;
            round.uniforms.clear();
            round.budgets.clear();
            for &pos in &active {
                round.uniforms.push(self.lanes[pos].rng.unit_f64());
                round.budgets.push(budgets[pos]);
            }
            round.bulks.clear();
            round.bulks.resize(active.len(), 0);
            round.collides.clear();
            round.collides.resize(active.len(), false);
            prefix_lockstep(
                n,
                &round.uniforms,
                &round.budgets,
                &mut round.bulks,
                &mut round.collides,
                &mut round.survival,
            );
        }
        // Phase B: per-lane urn setup and the two hypergeometric multiset
        // draws (inherently serial within a lane — each draw conditions on
        // the previous ones through the lane's own RNG — but independent
        // across lanes).
        let mut scratches: Vec<BatchScratch> = Vec::with_capacity(active.len());
        for (k, &pos) in active.iter().enumerate() {
            let mut scratch = std::mem::take(&mut self.lanes[pos].scratch);
            self.round.gather.clear();
            for &gid in &self.lanes[pos].slot_gid {
                self.round
                    .gather
                    .push(self.shared.counts[gid as usize * w + pos]);
            }
            scratch.begin(&self.round.gather);
            let bulk = self.round.bulks[k];
            let lane = &mut self.lanes[pos];
            scratch.draw_multiset(&mut lane.rng, bulk, false);
            scratch.draw_multiset(&mut lane.rng, bulk, true);
            scratches.push(scratch);
        }
        // Phase C: the responder shuffles, interleaved across lanes at the
        // swap-index level (each lane's own swap sequence — and hence its
        // RNG stream — is exactly the scalar Fisher–Yates order); then the
        // initiator shuffles of lanes running the exact walk, responders
        // before initiators per lane like the scalar episode.
        shuffle_lockstep(&mut self.lanes, &active, &mut scratches, true, None);
        let walks: Vec<bool> = active
            .iter()
            .enumerate()
            .map(|(k, &pos)| {
                track && (self.lanes[pos].leaders - 1).unsigned_abs() <= 2 * self.round.bulks[k]
            })
            .collect();
        shuffle_lockstep(
            &mut self.lanes,
            &active,
            &mut scratches,
            false,
            Some(&walks),
        );
        // Phases D and E, per lane: apply the bulk through the shared
        // cache, the exact collision interaction, then merge the urns into
        // the lane's SoA column.
        for (k, &pos) in active.iter().enumerate() {
            let scratch = std::mem::take(&mut scratches[k]);
            let bulk = self.round.bulks[k];
            let collide = self.round.collides[k];
            self.finish_lane_round(
                pos,
                scratch,
                bulk,
                collide,
                walks[k],
                track,
                SegmentDraw::Sequences,
            );
        }
    }

    /// Phases D and E of one lane's round, shared by [`batch_round`]
    /// (always sequences) and [`law_only_round`] (sequences or contingency
    /// cells): apply the drawn structure through the shared cache, execute
    /// the exact collision interaction, then merge the urns into the lane's
    /// SoA column and hand the scratch back to the lane.
    ///
    /// [`batch_round`]: Self::batch_round
    /// [`law_only_round`]: Self::law_only_round
    #[allow(clippy::too_many_arguments)]
    fn finish_lane_round(
        &mut self,
        pos: usize,
        mut scratch: BatchScratch,
        bulk: u64,
        collide: bool,
        walk: bool,
        track: bool,
        draw: SegmentDraw,
    ) {
        let w = self.shared.width;
        {
            if walk {
                self.stats.exact_walks += 1;
            }
            let mut executed = 0u64;
            let mut hit = false;
            let mut leaders = self.lanes[pos].leaders;
            let mut known_slots = self.lanes[pos].slots();
            scratch.ensure_states(known_slots);
            // The bulk loop consumes no randomness, so identical `(s, t)`
            // pairs can be collapsed to one cache lookup with a
            // multiplicity — bit-identical as long as first occurrences
            // are processed in sequence order (that preserves the slot
            // interning order) and the urn/leader updates stay additive.
            // Exact walks keep the per-interaction loop: they track the
            // leader count through every single interaction and may stop
            // mid-bulk. Contingency cells arrive pre-aggregated and apply
            // directly; `walk` forces sequences, so no hitting-step check
            // is needed on that path.
            let dedup = draw == SegmentDraw::Sequences
                && !walk
                && bulk >= CAT_DEDUP_MIN_BULK
                && known_slots.saturating_mul(known_slots) <= CAT_TABLE_CAP;
            if draw == SegmentDraw::Cells {
                debug_assert!(!walk);
                for idx in 0..scratch.cells.len() {
                    let (s, t, c) = scratch.cells[idx];
                    let (a, b, delta, _) = self.shared.lane_effect(
                        &mut self.lanes[pos],
                        s as usize,
                        t as usize,
                        false,
                    );
                    let slots = self.lanes[pos].slots();
                    if slots != known_slots {
                        scratch.ensure_states(slots);
                        known_slots = slots;
                    }
                    scratch.add_used_n(a, c);
                    scratch.add_used_n(b, c);
                    executed += c;
                    if track {
                        leaders += i64::from(delta) * c as i64;
                    }
                }
            } else if dedup {
                let round = &mut self.round;
                let table = known_slots * known_slots;
                if round.cat_stamp.len() < table {
                    round.cat_stamp.resize(table, 0);
                    round.cat_index.resize(table, 0);
                }
                if round.cat_epoch == u32::MAX {
                    round.cat_stamp.fill(0);
                    round.cat_epoch = 0;
                }
                round.cat_epoch += 1;
                let epoch = round.cat_epoch;
                round.cat_keys.clear();
                round.cat_counts.clear();
                for i in 0..bulk as usize {
                    let key =
                        scratch.init_seq[i] as usize * known_slots + scratch.resp_seq[i] as usize;
                    if round.cat_stamp[key] == epoch {
                        round.cat_counts[round.cat_index[key] as usize] += 1;
                    } else {
                        round.cat_stamp[key] = epoch;
                        round.cat_index[key] = round.cat_keys.len() as u32;
                        round.cat_keys.push(key as u32);
                        round.cat_counts.push(1);
                    }
                }
                let stride = known_slots;
                for ci in 0..self.round.cat_keys.len() {
                    let key = self.round.cat_keys[ci] as usize;
                    let c = self.round.cat_counts[ci];
                    let (s, t) = (key / stride, key % stride);
                    let (a, b, delta, _) =
                        self.shared.lane_effect(&mut self.lanes[pos], s, t, false);
                    let slots = self.lanes[pos].slots();
                    if slots != known_slots {
                        scratch.ensure_states(slots);
                        known_slots = slots;
                    }
                    scratch.add_used_n(a, c);
                    scratch.add_used_n(b, c);
                    if track {
                        leaders += i64::from(delta) * c as i64;
                    }
                }
                executed = bulk;
            } else {
                for i in 0..bulk as usize {
                    let s = scratch.init_seq[i] as usize;
                    let t = scratch.resp_seq[i] as usize;
                    let (a, b, delta, _) =
                        self.shared.lane_effect(&mut self.lanes[pos], s, t, false);
                    // The urns only need regrowing when the effect interned
                    // a new lane slot — rare after warm-up, so the
                    // per-interaction call is gated on actual growth.
                    let slots = self.lanes[pos].slots();
                    if slots != known_slots {
                        scratch.ensure_states(slots);
                        known_slots = slots;
                    }
                    scratch.add_used(a);
                    scratch.add_used(b);
                    executed += 1;
                    if track {
                        leaders += i64::from(delta);
                        if walk && delta != 0 && leaders == 1 {
                            hit = true;
                            // Return the reserved-but-unexecuted tail to
                            // the fresh urn; those agents never interacted.
                            for j in i + 1..bulk as usize {
                                let init = scratch.init_seq[j] as usize;
                                scratch.return_fresh(init);
                                let resp = scratch.resp_seq[j] as usize;
                                scratch.return_fresh(resp);
                            }
                            break;
                        }
                    }
                }
            }
            let mut consumed = executed;
            if collide && !hit {
                debug_assert_eq!(executed, bulk);
                let used = scratch.used_total;
                let fresh = scratch.fresh_total;
                let w_uu = used * (used - 1);
                let w_uf = used * fresh;
                let pick = self.lanes[pos].rng.below(w_uu + 2 * w_uf);
                let (iu, ru) = if pick < w_uu {
                    (true, true)
                } else if pick < w_uu + w_uf {
                    (true, false)
                } else {
                    (false, true)
                };
                let (s, t) = {
                    let lane = &mut self.lanes[pos];
                    let s = scratch.draw_one(&mut lane.rng, iu);
                    let t = scratch.draw_one(&mut lane.rng, ru);
                    (s, t)
                };
                let (a, b, delta, _) = self.shared.lane_effect(&mut self.lanes[pos], s, t, false);
                scratch.ensure_states(self.lanes[pos].slots());
                scratch.add_used(a);
                scratch.add_used(b);
                consumed += 1;
                self.stats.collision_interactions += 1;
                if track {
                    leaders += i64::from(delta);
                    hit = leaders == 1 && delta != 0;
                }
            }
            debug_assert!(!track || hit == (leaders == 1));
            let lane = &mut self.lanes[pos];
            scratch.ensure_states(lane.slots());
            let mut support = lane.support;
            for slot in 0..lane.slots() {
                let new = scratch.fresh[slot] + scratch.used[slot];
                let gid = lane.slot_gid[slot] as usize;
                let cell = &mut self.shared.counts[gid * w + pos];
                let old = *cell;
                if new != old {
                    *cell = new;
                    support = support + usize::from(old == 0) - usize::from(new == 0);
                }
            }
            lane.support = support;
            lane.steps += consumed;
            lane.leaders = leaders;
            lane.scratch = scratch;
            self.stats.episodes += 1;
            self.stats.episode_segments += 1;
            self.stats.bulk_interactions += executed;
        }
    }

    /// One staged **law-only** round (see [`WideTierPolicy::LawOnly`]):
    /// like [`batch_round`](Self::batch_round), but the expensive per-lane
    /// draws are shared across the lane set wherever sharing preserves
    /// each lane's marginal law:
    ///
    /// * **One run-length inversion.** A single uniform (drawn from the
    ///   first active lane's RNG) is inverted once at the largest budget;
    ///   every lane's `(bulk, collides)` is the deterministic truncation
    ///   of that one length to its own budget. Per lane this is exactly
    ///   [`round::invert_prefix`] applied to a uniform input — the scalar
    ///   law — but lanes share their round length.
    /// * **Per-lane margins, cells where small.** Each lane draws its own
    ///   hypergeometric margins (they condition on the lane's counts) and
    ///   pairs them through contingency cells when its support is small —
    ///   the [`crate::round::ContingencyLaw`] decision, per lane.
    /// * **One shuffle index stream.** Lanes that fall back to expanded
    ///   sequences share one Fisher–Yates index stream (drawn from the
    ///   first such lane's RNG): each swap index `jᵢ ~ U[0, i]` applied to
    ///   every lane still induces a uniform permutation per lane.
    ///
    /// Exact-walk lanes (leader count near 1 under `track`) opt out of all
    /// sharing: they draw their own sequences and shuffles, preserving the
    /// scalar walk semantics exactly.
    fn law_only_round(&mut self, budgets: &[u64], track: bool) {
        let n = self.n;
        let w = self.shared.width;
        debug_assert!(self.batch_mode);
        let active: Vec<usize> = (0..self.lanes.len())
            .filter(|&pos| budgets[pos] > 0 && !(track && self.lanes[pos].leaders == 1))
            .collect();
        if active.is_empty() {
            return;
        }
        // Phase A: one shared uniform, inverted once at the largest budget;
        // each lane truncates the shared length to its own budget.
        let max_budget = active
            .iter()
            .map(|&pos| budgets[pos])
            .max()
            .expect("nonempty");
        let u = self.lanes[active[0]].rng.unit_f64();
        let (shared_bulk, shared_collide) = round::invert_prefix(u, n, 0, max_budget);
        {
            let round = &mut self.round;
            round.bulks.clear();
            round.collides.clear();
            for &pos in &active {
                round.bulks.push(shared_bulk.min(budgets[pos]));
                round
                    .collides
                    .push(shared_collide && shared_bulk < budgets[pos]);
            }
        }
        // Phase B: per-lane draws — sequences (own shuffles) for walk
        // lanes, margins → cells or expansion otherwise.
        let mut scratches: Vec<BatchScratch> = Vec::with_capacity(active.len());
        let mut draws: Vec<SegmentDraw> = Vec::with_capacity(active.len());
        let mut walks: Vec<bool> = Vec::with_capacity(active.len());
        let mut shared_shuffle: Vec<usize> = Vec::new();
        for (k, &pos) in active.iter().enumerate() {
            let mut scratch = std::mem::take(&mut self.lanes[pos].scratch);
            self.round.gather.clear();
            for &gid in &self.lanes[pos].slot_gid {
                self.round
                    .gather
                    .push(self.shared.counts[gid as usize * w + pos]);
            }
            scratch.begin(&self.round.gather);
            let bulk = self.round.bulks[k];
            let walk = track && (self.lanes[pos].leaders - 1).unsigned_abs() <= 2 * bulk;
            walks.push(walk);
            let lane = &mut self.lanes[pos];
            if walk {
                scratch.init_seq.clear();
                scratch.resp_seq.clear();
                scratch.draw_multiset(&mut lane.rng, bulk, false);
                scratch.draw_multiset(&mut lane.rng, bulk, true);
                lane.rng.shuffle(&mut scratch.resp_seq);
                lane.rng.shuffle(&mut scratch.init_seq);
                draws.push(SegmentDraw::Sequences);
            } else {
                scratch.draw_margins(&mut lane.rng, bulk, false);
                scratch.draw_margins(&mut lane.rng, bulk, true);
                let table = scratch.init_margin.len() as u64 * scratch.resp_margin.len() as u64;
                if table > round::CELL_FALLBACK_FACTOR * bulk {
                    scratch.expand_margins();
                    shared_shuffle.push(k);
                    draws.push(SegmentDraw::Sequences);
                } else {
                    let d = scratch.draw_cells(&mut lane.rng);
                    self.stats.contingency_draws += d;
                    self.stats.shuffle_skips += 1;
                    draws.push(SegmentDraw::Cells);
                }
            }
            scratches.push(scratch);
        }
        // Phase C: one responder-permutation index stream for every lane
        // that expanded. Swap `i ↔ jᵢ` with the same `jᵢ ~ U[0, i]` in
        // every lane: per lane this is a textbook Fisher–Yates (uniform
        // permutation); across lanes the permutations are shared — law-only
        // correlation, like the round length.
        if let Some(&first) = shared_shuffle.first() {
            let src = active[first];
            let max_len = shared_shuffle
                .iter()
                .map(|&k| scratches[k].resp_seq.len())
                .max()
                .unwrap_or(0);
            for i in (1..max_len).rev() {
                let j = self.lanes[src].rng.index(i + 1);
                for &k in &shared_shuffle {
                    let seq = &mut scratches[k].resp_seq;
                    if seq.len() > i {
                        seq.swap(i, j);
                    }
                }
            }
        }
        // Phases D and E, per lane, shared with the pinned batch round.
        for (k, &pos) in active.iter().enumerate() {
            let scratch = std::mem::take(&mut scratches[k]);
            let bulk = self.round.bulks[k];
            let collide = self.round.collides[k];
            self.finish_lane_round(pos, scratch, bulk, collide, walks[k], track, draws[k]);
        }
    }

    /// Null-dominated lanes under the scalar jump scheduler's engage rule:
    /// positions whose known-null pairs carry at least
    /// `1 − 1/jump_engage_factor` of the scheduler weight. Reads the SoA
    /// (callers sync first) and the compiled cache's null-pair set.
    fn null_dominated_lanes(&self) -> Vec<usize> {
        if self.n > u64::from(u32::MAX) || !self.shared.pairs.is_active() {
            return Vec::new();
        }
        let mut nulls: Vec<(usize, usize)> = Vec::new();
        self.shared.pairs.for_each_filled(|s, t, entry| {
            if compiled::unpack(entry).3 {
                nulls.push((s, t));
            }
        });
        if nulls.is_empty() {
            return Vec::new();
        }
        let w = self.shared.width;
        let w_total = self.n * (self.n - 1);
        (0..self.lanes.len())
            .filter(|&pos| {
                let w_null: u64 = nulls
                    .iter()
                    .map(|&(s, t)| {
                        let cs = self.shared.counts[s * w + pos];
                        let ct = self.shared.counts[t * w + pos];
                        cs * ct.saturating_sub(u64::from(s == t))
                    })
                    .sum();
                let w_active = w_total - w_null.min(w_total);
                w_active.saturating_mul(self.config.jump_engage_factor) <= w_total
            })
            .collect()
    }
}

impl<P: LeaderElection, R: Rng64> WideSimulation<P, R> {
    /// Primes per-state leader flags and retrofits cached leader deltas,
    /// exactly like the scalar engine.
    fn prime_role_tracking(&mut self) {
        if self.shared.leader_output.is_some() {
            return;
        }
        self.shared.leader_output = Some(Role::Leader);
        for i in 0..self.shared.states.len() {
            self.shared.leader_flags[i] = i8::from(self.shared.outputs[i] == Role::Leader);
        }
        let flags = &self.shared.leader_flags;
        self.shared.pairs.for_each_filled_mut(|s, t, entry| {
            let (a, b, _, null) = compiled::unpack(*entry);
            let delta = flags[a] + flags[b] - flags[s] - flags[t];
            *entry = compiled::pack(a, b, delta, null);
        });
    }

    /// The current leader count of every live lane, computed by a dense
    /// row sweep of the SoA matrix (the lane dimension is contiguous, so
    /// the per-row accumulation autovectorizes).
    pub fn leader_counts(&mut self) -> Vec<u64> {
        self.sync_soa();
        let w = self.shared.width;
        let mut acc = vec![0u64; w];
        for (gid, &flag) in self.shared.leader_flags.iter().enumerate() {
            if flag != 0 {
                let row = &self.shared.counts[gid * w..(gid + 1) * w];
                for (a, &c) in acc.iter_mut().zip(row) {
                    *a += c;
                }
            }
        }
        acc
    }

    /// Runs every lane until it has exactly one leader or `max_steps`
    /// interactions, retiring lanes as they finish so live lanes stay
    /// dense. Under the auto policy, null-dominated lanes are spilled out
    /// for scalar completion (see the module docs) unless
    /// [`set_spill`](Self::set_spill) disabled it.
    ///
    /// Step counts are exact on every path: per-step chunks stop at the
    /// hitting interaction, and batch rounds that could touch a count of 1
    /// resolve through the exact shuffled walk — identical semantics (and,
    /// under pinned policies, identical bits) to the scalar driver.
    pub fn run_until_single_leader(&mut self, max_steps: u64) -> WideElection<P::State, R> {
        self.prime_role_tracking();
        let counts = self.leader_counts();
        for (lane, leaders) in self.lanes.iter_mut().zip(counts) {
            lane.leaders = leaders as i64;
        }
        let mut outcomes: Vec<Option<RunOutcome>> =
            vec![None; self.lanes.iter().map(|l| l.index + 1).max().unwrap_or(0)];
        let mut spilled = Vec::new();
        loop {
            // Retirement pass: the scalar driver checks convergence before
            // the budget, so a lane converging exactly at the budget
            // boundary counts as converged.
            let mut pos = self.lanes.len();
            while pos > 0 {
                pos -= 1;
                let lane = &self.lanes[pos];
                let outcome = if lane.leaders == 1 {
                    Some(RunOutcome {
                        steps: lane.steps,
                        converged: true,
                    })
                } else if lane.steps >= max_steps {
                    Some(RunOutcome {
                        steps: lane.steps,
                        converged: false,
                    })
                } else {
                    None
                };
                if let Some(outcome) = outcome {
                    let lane = self.remove_lane(pos);
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.record(EngineEvent::LaneRetired {
                            step: lane.steps,
                            lane: lane.index as u64,
                        });
                    }
                    outcomes[lane.index] = Some(outcome);
                }
            }
            if self.lanes.is_empty() {
                break;
            }
            let review_due = self.policy == WideTierPolicy::Auto && self.steps() >= self.review_at;
            self.review();
            if review_due && self.spill {
                self.sync_soa();
                let dominated = self.null_dominated_lanes();
                for &pos in dominated.iter().rev() {
                    let export = self.export_lane(pos);
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.record(EngineEvent::LaneSpilled {
                            step: export.steps,
                            lane: export.index as u64,
                        });
                    }
                    spilled.push(export);
                }
                if self.lanes.is_empty() {
                    break;
                }
            }
            let watched = self.obs.is_some();
            let t0 = if watched { Some(Instant::now()) } else { None };
            let before: u64 = self.lanes.iter().map(|l| l.steps).sum();
            let mode = if self.batch_mode {
                EngineTier::Batch
            } else {
                EngineTier::Compiled
            };
            if self.batch_mode {
                let budgets: Vec<u64> = self.lanes.iter().map(|l| max_steps - l.steps).collect();
                if self.policy == WideTierPolicy::LawOnly {
                    self.law_only_round(&budgets, true);
                } else {
                    self.batch_round(&budgets, true);
                }
            } else {
                for pos in 0..self.lanes.len() {
                    let lane_steps = self.lanes[pos].steps;
                    if self.lanes[pos].leaders == 1 || lane_steps >= max_steps {
                        continue;
                    }
                    let burst = CONVERGENCE_BATCH.min(max_steps - lane_steps).max(1);
                    lane_chunk(&mut self.shared, &mut self.lanes[pos], burst, true);
                }
            }
            let advanced = self.lanes.iter().map(|l| l.steps).sum::<u64>() - before;
            self.usage.note(mode, advanced);
            if let Some(t0) = t0 {
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.timeline_mut()
                        .note(mode, advanced, t0.elapsed().as_secs_f64());
                }
            }
        }
        WideElection { outcomes, spilled }
    }
}

impl<P: Protocol> WideSimulation<P, Xoshiro256PlusPlus> {
    /// Convenience constructor: `width` lanes seeded with the RNG streams
    /// [`rng_at`](pp_rand::SeedSequence::rng_at)`(0..width)` of `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn from_seed_sequence(
        protocol: P,
        n: usize,
        seq: &pp_rand::SeedSequence,
        width: usize,
    ) -> Result<Self, EngineError> {
        let rngs = (0..width as u64).map(|i| seq.rng_at(i)).collect();
        Self::new(protocol, n, rngs)
    }
}

/// Executes up to `max` per-step interactions on one lane, replicating the
/// scalar `run_chunk`/`leader_chunk` semantics (and RNG order) exactly:
/// the hot loop runs on cache hits whose successor states the lane has
/// already occupied; a cache miss — or a hit whose successors the lane
/// occupies for the first time — carries the drawn pair out of the loop
/// and completes it through the compile/intern path, consuming no extra
/// randomness. With `track`, cached leader deltas accumulate into the
/// lane's running count and the chunk stops the moment it hits exactly 1.
///
/// Returns `(consumed, hit)`.
fn lane_chunk<P: Protocol, R: Rng64>(
    shared: &mut Shared<P>,
    lane: &mut Lane<R>,
    max: u64,
    track: bool,
) -> (u64, bool) {
    let mut pending = None;
    let mut done = 0u64;
    let mut count = lane.leaders;
    let mut hit = false;
    {
        let Lane {
            tree,
            rng,
            slot_gid,
            gid_slot,
            support,
            ..
        } = lane;
        let pairs = &shared.pairs;
        let mut sup = *support;
        while done < max {
            let Ok((s, t)) = tree.sample_pair_distinct(rng) else {
                debug_assert!(false, "population has >= 2 agents");
                break;
            };
            let gs = slot_gid[s] as usize;
            let gt = slot_gid[t] as usize;
            let entry = pairs.get(gs, gt);
            if entry == compiled::EMPTY {
                pending = Some((s, t));
                break;
            }
            let (ga, gb, delta, _) = compiled::unpack(entry);
            let a = gid_slot.get(ga).copied().unwrap_or(NO_SLOT);
            let b = gid_slot.get(gb).copied().unwrap_or(NO_SLOT);
            if a == NO_SLOT || b == NO_SLOT {
                pending = Some((s, t));
                break;
            }
            let (Ok(e1), Ok(e2)) = (tree.transfer(s, a as usize), tree.transfer(t, b as usize))
            else {
                debug_assert!(false, "lane slots exist");
                break;
            };
            sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                - usize::from(e1.emptied)
                - usize::from(e2.emptied);
            done += 1;
            if track && delta != 0 {
                count += i64::from(delta);
                if count == 1 {
                    hit = true;
                    break;
                }
            }
        }
        *support = sup;
    }
    lane.steps += done;
    if let Some((s, t)) = pending {
        if !hit {
            lane.steps += 1;
            done += 1;
            let (a, b, delta, _) = shared.lane_effect(lane, s, t, true);
            let (Ok(e1), Ok(e2)) = (lane.tree.transfer(s, a), lane.tree.transfer(t, b)) else {
                unreachable!("lane slots exist");
            };
            lane.support = lane.support + usize::from(e1.populated) + usize::from(e2.populated)
                - usize::from(e1.emptied)
                - usize::from(e2.emptied);
            if track && delta != 0 {
                count += i64::from(delta);
                hit = count == 1;
            }
        }
    }
    lane.leaders = count;
    (done, hit)
}

/// Every lane's collision-free prefix length, resolved against the shared
/// survival-product table.
///
/// The scalar sampler multiplies a running product `P` by a per-step
/// factor that depends only on `n` and the step index `m` — never on the
/// lane — and stops at the first `m` with `u ≥ P`. So all lanes walk the
/// *same* product sequence `P₁ ≥ P₂ ≥ …`, and the table can be built once
/// (with exactly the scalar multiply order, so every entry is
/// bit-identical to the scalar running product) and binary-searched per
/// lane: `O(log)` per lane-round instead of the scalar's `O(√n)` loop.
/// The search predicate `P[j] > u` is the scalar's survival test verbatim,
/// and the sequence is monotone non-increasing even in f64 (each factor is
/// in `[0, 1]`, and rounding a product `v ≤ x` to nearest cannot land
/// above the representable `x`), so the resulting `(length, collides)`
/// pairs match the scalar sampler bit for bit.
fn prefix_lockstep(
    n: u64,
    uniforms: &[f64],
    budgets: &[u64],
    bulks: &mut [u64],
    collides: &mut [bool],
    survival: &mut Vec<f64>,
) {
    debug_assert!(n >= 2);
    let denom = n as f64 * (n - 1) as f64;
    if survival.is_empty() {
        survival.push(1.0);
    }
    for i in 0..uniforms.len() {
        let u = uniforms[i];
        let budget = budgets[i];
        debug_assert!(budget >= 1);
        // Extend until some entry fails a lane's survival test or the
        // budget is covered. Entries hit exact 0.0 once the fresh urn runs
        // out (and `0.0 > u` is false for any uniform), so this terminates
        // after at most ~n/2 entries even for `u = 0`.
        while *survival.last().expect("seeded above") > u && survival.len() as u64 <= budget {
            let m = survival.len() as u64 - 1;
            let fresh = n - 2 * m.min(n / 2);
            let step = if fresh >= 2 {
                fresh as f64 * (fresh - 1) as f64 / denom
            } else {
                0.0
            };
            let next = survival[survival.len() - 1] * step;
            survival.push(next);
        }
        if *survival.last().expect("seeded above") > u {
            // Every product within the budget survives: the scalar loop
            // exhausts the budget before any check fails.
            bulks[i] = budget;
            collides[i] = false;
        } else {
            // First failing index `j` means steps `0..j-1` were
            // collision-free and step `j-1` (0-based `m = j-1`) collides —
            // unless the scalar loop's budget check at `m = budget` fires
            // first.
            let j = 1 + survival[1..].partition_point(|&p| p > u);
            if (j as u64) <= budget {
                bulks[i] = j as u64 - 1;
                collides[i] = true;
            } else {
                bulks[i] = budget;
                collides[i] = false;
            }
        }
    }
}

/// Fisher–Yates shuffles of the active lanes' round sequences, interleaved
/// across lanes at the swap-index level in blocks of
/// [`SHUFFLE_LANE_BLOCK`]. Every lane's own sequence of `index(i + 1)`
/// draws runs in descending `i` — exactly the scalar [`Rng64::shuffle`]
/// order — so per-lane RNG streams are untouched by the interleaving; it
/// only turns serial dependency chains into independent work the core can
/// overlap, and the block width caps the live working set at a few
/// sequences so the swaps stay in L1.
///
/// `responders` picks which sequence shuffles; `walk_filter` (the
/// initiator pass) restricts the pass to lanes running the exact walk.
fn shuffle_lockstep<R: Rng64>(
    lanes: &mut [Lane<R>],
    active: &[usize],
    scratches: &mut [BatchScratch],
    responders: bool,
    walk_filter: Option<&[bool]>,
) {
    let included = |k: usize| walk_filter.map_or(true, |f| f[k]);
    for block in 0..active.len().div_ceil(SHUFFLE_LANE_BLOCK) {
        let base = block * SHUFFLE_LANE_BLOCK;
        let end = (base + SHUFFLE_LANE_BLOCK).min(active.len());
        let max_len = (base..end)
            .filter(|&k| included(k))
            .map(|k| {
                if responders {
                    scratches[k].resp_seq.len()
                } else {
                    scratches[k].init_seq.len()
                }
            })
            .max()
            .unwrap_or(0);
        if max_len < 2 {
            continue;
        }
        for i in (1..max_len).rev() {
            for k in base..end {
                if !included(k) {
                    continue;
                }
                let seq = if responders {
                    &mut scratches[k].resp_seq
                } else {
                    &mut scratches[k].init_seq
                };
                if seq.len() > i {
                    let j = lanes[active[k]].rng.index(i + 1);
                    seq.swap(i, j);
                }
            }
        }
    }
}
