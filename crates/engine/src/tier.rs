//! Execution-tier dispatch for the count engine.
//!
//! [`CountSimulation`](crate::CountSimulation) runs every workload through
//! one of four interchangeable execution tiers — same Markov chain, different
//! cost models:
//!
//! | Tier | Mechanism | Per-interaction cost | Wins when |
//! |------|-----------|----------------------|-----------|
//! | [`Reference`](EngineTier::Reference) | hash + clone + `transition` per step | `O(1)`, large constant | cache disabled (oracle baseline) |
//! | [`Compiled`](EngineTier::Compiled) | [pair cache](crate::compiled) + fused tree descents | ~100 cycles | dense transitions, large live support |
//! | [`Jump`](EngineTier::Jump) | [null-run telescoping](crate::jump) | `O(1)` per *episode* | known-null pairs ≥ `1 − 1/engage_factor` of scheduler weight |
//! | [`Batch`](EngineTier::Batch) | [hypergeometric rounds](crate::batch) | `O((k + √n)/√n)` amortized | small live support `k`, any null density |
//!
//! The tiers are selected *per workload phase*, not per simulation: reviews
//! at batch boundaries re-run the engage/disengage heuristics against the
//! current configuration (null weight for the jump tier, live support for
//! the batch tier), with hysteresis so the engine never flaps around a
//! threshold. The thresholds live in [`EngineConfig`] — promoted from
//! hard-coded constants precisely so parameter sweeps can tune them.
//!
//! This module owns the dispatch state ([`TierController`]) and the pure
//! decision rules; the episode/chunk execution lives in
//! [`count_engine`](crate::CountSimulation) and [`crate::batch`].

use crate::batch::BatchState;
use crate::compiled;
use crate::jump::NullLedger;
use crate::round::LawMode;

/// Tuning knobs of the count engine's tier heuristics.
///
/// The defaults reproduce the engine's historical behavior exactly; every
/// field is a promoted former hard-coded constant. Construct with struct
/// update syntax from [`EngineConfig::default()`] and pass to
/// [`CountSimulation::with_config`](crate::CountSimulation::with_config):
///
/// ```
/// use pp_engine::EngineConfig;
///
/// let config = EngineConfig {
///     jump_engage_factor: 16, // engage jumping only at ≥ 15/16 null weight
///     ..EngineConfig::default()
/// };
/// assert_eq!(config.max_compiled_states, 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Cap on state ids addressable by the compiled pair cache (historically
    /// the hard-coded `MAX_COMPILED_STATES = 4096`, still the default and
    /// the hard ceiling — the packed entries carry 12-bit ids). Validation
    /// rounds the cap up to a power of two, because the dense table's
    /// stride is one (the rounded value is what [`config`]
    /// (crate::CountSimulation::config) reports). Beyond the cap the cache
    /// *saturates*: higher ids fall back to per-encounter transitions until
    /// [state-id compaction](crate::CountSimulation) frees ids. The dense
    /// table costs `4·cap²` bytes worst case, grown lazily.
    pub max_compiled_states: usize,
    /// The jump scheduler engages when
    /// `W_active · jump_engage_factor ≤ W_total`, i.e. when known-null pairs
    /// carry at least `1 − 1/factor` of the scheduler weight (default 8 —
    /// the historical 7/8 threshold) so each episode is expected to
    /// telescope at least `factor` raw interactions.
    pub jump_engage_factor: u64,
    /// Hysteresis: an engaged jump scheduler disengages only once
    /// `W_active · jump_exit_factor > W_total` (default 4), so the engine
    /// does not flap around the engagement boundary.
    pub jump_exit_factor: u64,
    /// The batch tier engages when
    /// `support · batch_support_divisor ≤ E[collision-free run]` (default 3):
    /// a batch round costs `O(support)` hypergeometric draws plus `O(run)`
    /// cheap per-slot work, so it beats the compiled tier only while the
    /// live support is a fraction of the expected `Θ(√n)` round length.
    /// Disengages (with a factor-2 hysteresis band) when the support grows
    /// past `2×` the engage threshold.
    pub batch_support_divisor: u64,
    /// Populations below this never engage the batch tier (default 4096):
    /// collision-free runs of `E ≈ 0.62·√n` steps are too short to amortize
    /// a round's set-up below it.
    pub batch_min_population: u64,
    /// Whether tier reviews may compact state ids — reassigning the ids of
    /// permanently-dead states (largest live counts first) so
    /// state-unbounded protocols keep the compiled cache, the jump
    /// scheduler, and the batch tier available (default `true`).
    pub compaction: bool,
    /// Which [`LawMode`] the batch tier draws its collision-free rounds
    /// from (default [`LawMode::SequenceExpansion`], the bit-identical
    /// historical round; the other modes are law-equal — see
    /// [`crate::round`]).
    pub law_mode: LawMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_compiled_states: compiled::MAX_COMPILED_STATES,
            jump_engage_factor: 8,
            jump_exit_factor: 4,
            batch_support_divisor: 3,
            batch_min_population: 4096,
            compaction: true,
            law_mode: LawMode::default(),
        }
    }
}

impl EngineConfig {
    /// Clamps every field into its valid range (the engine applies this at
    /// construction, so out-of-range sweeps degrade gracefully).
    pub(crate) fn validated(mut self) -> Self {
        // Power of two: the pair table addresses ids by stride, so that is
        // the granularity at which the cap can take effect.
        self.max_compiled_states = self
            .max_compiled_states
            .clamp(1, compiled::MAX_COMPILED_STATES)
            .next_power_of_two();
        self.jump_engage_factor = self.jump_engage_factor.max(2);
        self.jump_exit_factor = self.jump_exit_factor.clamp(1, self.jump_engage_factor);
        self.batch_support_divisor = self.batch_support_divisor.max(1);
        self.batch_min_population = self.batch_min_population.max(2);
        self
    }
}

/// The execution tier the count engine is currently dispatching to (see the
/// [module docs](self) for the selection rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineTier {
    /// Uncached per-step fallback: hash, clone, and call
    /// [`Protocol::transition`](crate::Protocol::transition) every step.
    Reference,
    /// Compiled pair cache + fused pair sampling, one interaction at a time.
    Compiled,
    /// Null-run telescoping on top of the compiled cache.
    Jump,
    /// Collision-free hypergeometric batch rounds.
    Batch,
}

impl std::fmt::Display for EngineTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineTier::Reference => "reference",
            EngineTier::Compiled => "compiled",
            EngineTier::Jump => "jump",
            EngineTier::Batch => "batch",
        })
    }
}

/// Throughput counters of the jump scheduler (see
/// [`CountSimulation::jump_stats`](crate::CountSimulation::jump_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JumpStats {
    /// Jump episodes executed (each ends in one real interaction).
    pub episodes: u64,
    /// Null interactions telescoped past without being executed.
    pub skipped: u64,
}

/// Interactions executed per tier over the whole execution, maintained at
/// dispatch boundaries regardless of whether an observer is attached (the
/// counters are pure functions of the trajectory, so attaching one cannot
/// change them). Serialized in snapshots since format v3, so they survive
/// resume; wall-clock accounting, which cannot survive a resume, lives in
/// the observer-only [`TierTimeline`](crate::obs::TierTimeline) instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierUsage {
    /// Interactions executed on the uncached reference tier.
    pub reference: u64,
    /// Interactions executed on the compiled tier.
    pub compiled: u64,
    /// Interactions executed (or telescoped) by the jump scheduler.
    pub jump: u64,
    /// Interactions executed by hypergeometric batch rounds.
    pub batch: u64,
}

impl TierUsage {
    /// Accounts `interactions` interactions to `tier`.
    pub(crate) fn note(&mut self, tier: EngineTier, interactions: u64) {
        match tier {
            EngineTier::Reference => self.reference += interactions,
            EngineTier::Compiled => self.compiled += interactions,
            EngineTier::Jump => self.jump += interactions,
            EngineTier::Batch => self.batch += interactions,
        }
    }

    /// Total interactions across all tiers.
    pub fn total(&self) -> u64 {
        self.reference + self.compiled + self.jump + self.batch
    }
}

/// Jump-scheduler state riding along the count engine (see [`crate::jump`]).
#[derive(Debug, Clone)]
pub(crate) struct JumpState {
    /// User toggle ([`CountSimulation::set_jump_scheduler`]
    /// (crate::CountSimulation::set_jump_scheduler)); on by default.
    pub enabled: bool,
    /// Currently executing episodes instead of per-step chunks.
    pub engaged: bool,
    /// Test hook: pinned engaged regardless of the engage/exit thresholds.
    pub forced: bool,
    /// The known-null pair set with scheduler weights.
    pub ledger: NullLedger,
    pub stats: JumpStats,
}

impl JumpState {
    fn new() -> Self {
        Self {
            enabled: true,
            engaged: false,
            forced: false,
            ledger: NullLedger::new(),
            stats: JumpStats::default(),
        }
    }
}

/// The dispatch state shared by all of the count engine's batched drivers:
/// tier configuration, per-tier engage state, and the step count of the next
/// heuristic review.
#[derive(Debug, Clone)]
pub(crate) struct TierController {
    pub config: EngineConfig,
    pub jump: JumpState,
    pub batch: BatchState,
    /// Step count at which the next tier review (jump probe, batch
    /// engage/disengage, compaction check) runs.
    pub review_at: u64,
    /// Per-tier interaction counters (snapshot-persistent since format v3).
    pub usage: TierUsage,
}

impl TierController {
    pub(crate) fn new(config: EngineConfig) -> Self {
        Self {
            config: config.validated(),
            jump: JumpState::new(),
            batch: BatchState::new(),
            review_at: 0,
            usage: TierUsage::default(),
        }
    }
}

/// Expected length of a collision-free run at population `n`: the birthday
/// bound gives `E ≈ √(πn/8) ≈ 0.627·√n`; the integer `5·√n/8` is within 1%
/// and exact-integer cheap. Floored at 1.
pub(crate) fn expected_run_length(n: u64) -> u64 {
    (isqrt(n) * 5 / 8).max(1)
}

/// Integer square root (`⌊√n⌋`); `u64::isqrt` needs a newer MSRV than the
/// workspace's 1.75. The f64 estimate is exact for n < 2^52 and the two
/// correction steps make it exact everywhere.
fn isqrt(n: u64) -> u64 {
    let mut root = (n as f64).sqrt() as u64;
    while root > 0 && root.checked_mul(root).map_or(true, |sq| sq > n) {
        root -= 1;
    }
    while (root + 1).checked_mul(root + 1).is_some_and(|sq| sq <= n) {
        root += 1;
    }
    root
}

/// The batch tier's population ceiling, shared with the jump scheduler's:
/// the collision round's exact integer category weights are bounded by
/// `n(n−1)`, which must fit a `u64`. Beyond the cap the heuristics simply
/// never engage and execution stays per-step.
pub(crate) const BATCH_MAX_POPULATION: u64 = u32::MAX as u64;

/// Batch-tier engage rule (see [`EngineConfig::batch_support_divisor`]).
pub(crate) fn batch_engages(support: usize, n: u64, config: &EngineConfig) -> bool {
    n >= config.batch_min_population
        && n <= BATCH_MAX_POPULATION
        && (support as u64).saturating_mul(config.batch_support_divisor) <= expected_run_length(n)
}

/// Batch-tier exit rule: the engage inequality failed by more than the
/// factor-2 hysteresis band.
pub(crate) fn batch_exits(support: usize, n: u64, config: &EngineConfig) -> bool {
    n < config.batch_min_population
        || n > BATCH_MAX_POPULATION
        || (support as u64).saturating_mul(config.batch_support_divisor)
            > 2 * expected_run_length(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_historical_constants() {
        let c = EngineConfig::default();
        assert_eq!(c.max_compiled_states, 4096);
        assert_eq!(c.jump_engage_factor, 8);
        assert_eq!(c.jump_exit_factor, 4);
        assert!(c.compaction);
        assert_eq!(c.law_mode, LawMode::SequenceExpansion);
    }

    #[test]
    fn validation_clamps_out_of_range_fields() {
        let c = EngineConfig {
            max_compiled_states: 1 << 20,
            jump_engage_factor: 0,
            jump_exit_factor: 99,
            batch_support_divisor: 0,
            batch_min_population: 0,
            compaction: false,
            law_mode: LawMode::SequenceExpansion,
        }
        .validated();
        assert_eq!(c.max_compiled_states, compiled::MAX_COMPILED_STATES);
        assert_eq!(c.jump_engage_factor, 2);
        assert_eq!(c.jump_exit_factor, 2, "exit cannot exceed engage");
        assert_eq!(c.batch_support_divisor, 1);
        assert_eq!(c.batch_min_population, 2);
    }

    #[test]
    fn expected_run_tracks_sqrt() {
        assert_eq!(expected_run_length(1 << 20), 640);
        assert_eq!(expected_run_length(4), 1);
        // Within 2% of √(πn/8) across the practical range.
        for shift in [12u32, 16, 20, 24, 30] {
            let n = 1u64 << shift;
            let exact = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
            let got = expected_run_length(n) as f64;
            assert!(
                (got / exact - 1.0).abs() < 0.02,
                "n=2^{shift}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn batch_rules_have_hysteresis() {
        let c = EngineConfig::default();
        let n = 1u64 << 20; // expected run 640
        assert!(batch_engages(213, n, &c)); // 213·3 = 639 ≤ 640
        assert!(!batch_engages(214, n, &c));
        assert!(!batch_exits(214, n, &c)); // inside the hysteresis band
        assert!(!batch_exits(426, n, &c)); // 426·3 = 1278 ≤ 1280
        assert!(batch_exits(427, n, &c));
        assert!(!batch_engages(2, 1024, &c), "below the population floor");
        assert!(batch_exits(2, 1024, &c));
    }

    #[test]
    fn tier_names_render() {
        assert_eq!(EngineTier::Batch.to_string(), "batch");
        assert_eq!(EngineTier::Reference.to_string(), "reference");
    }
}
