//! The **round-law pipeline**: pluggable structures for the batch tier's
//! collision-free rounds.
//!
//! The batch tier (see [`crate::batch`] for the statistical derivation)
//! advances a simulation by whole collision-free runs: sample the run
//! length, sample *which* states interact, apply the interactions through
//! the compiled cache, resolve the terminating collision. Everything
//! except "which states interact, in what representation" is shared; this
//! module factors that varying part into a [`RoundLaw`] and owns the
//! machinery every law builds on — the urn scratch ([`BatchScratch`]), the
//! run-length inversion ([`collision_free_prefix_from`]), and the
//! descending-count order maintenance the engines use for draw
//! decompositions and compaction alike.
//!
//! Three laws, selected by [`LawMode`] in
//! [`EngineConfig`](crate::EngineConfig):
//!
//! * [`SequenceExpansionLaw`] (default) — the historical round: expand both
//!   multisets into sequences, Fisher–Yates the responders, pair
//!   positionally. **Bit-identical** to the pre-refactor batch tier: same
//!   RNG stream, same draws, same state.
//! * [`ContingencyLaw`] — draw the per-ordered-pair contingency table
//!   directly (nested conditional hypergeometric rows, the law of
//!   [`pp_rand::contingency_table`]) and apply each cell as one bulk count
//!   delta. Skips the `Θ(√n)` responder shuffle and the per-interaction
//!   apply loop whenever the table is smaller than the round
//!   (`support² ≪ √n` — two-state epidemics, Fratricide); falls back to
//!   sequence expansion, per segment, when the table would cost more draws
//!   than it saves. **Law-equal**, not bit-identical: the executions equal
//!   the reference tier in distribution (chi-square-pinned by
//!   `tests/round_law.rs`) but consume the RNG stream differently.
//! * [`MultiRoundLaw`] — contingency segments chained through up to
//!   [`MULTI_ROUND_SEGMENTS`] collisions per episode, keeping the
//!   fresh/used urn split alive across segments so the `O(#states)`
//!   begin/merge bookkeeping amortizes over several rounds. The
//!   continuation run-length law conditions on the agents already used
//!   (`collision_free_prefix_from`); each segment's bulk is disjoint from
//!   everything executed since the episode began, so segment interactions
//!   still commute and the two-urn collision resolution stays exact.
//!   **Law-equal**; the win is at small `n`, where `√n` rounds are short
//!   and per-round fixed costs dominate.
//!
//! The wide engine's `WideTierPolicy::LawOnly` builds on the same
//! machinery: one shared run-length inversion for the whole lane set (see
//! [`invert_prefix`]) plus per-lane contingency rounds, trading per-lane
//! bit-identity for amortized sampling — the cross-lane analogue of the
//! scalar law modes.

use crate::batch::BatchStats;
use pp_rand::{Hypergeometric, Rng64};
use std::cmp::Reverse;

/// Which law the batch tier draws its collision-free rounds from. See the
/// module docs for the contract: `SequenceExpansion` is bit-identical to
/// the historical batch tier, the others are law-equal (same distribution,
/// different RNG stream), pinned by the chi-square suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LawMode {
    /// Expanded multiset sequences paired by a responder shuffle — the
    /// bit-identical default.
    #[default]
    SequenceExpansion,
    /// Per-ordered-pair contingency table, shuffle-free when the support
    /// is small; falls back to sequence expansion per segment otherwise.
    Contingency,
    /// Contingency segments chained across several collisions per
    /// episode, amortizing round setup at small `n`.
    MultiRound,
}

impl LawMode {
    /// Stable wire encoding, shared by engine snapshots and checkpoint
    /// fingerprints (additions append; values never change).
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            LawMode::SequenceExpansion => 0,
            LawMode::Contingency => 1,
            LawMode::MultiRound => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => LawMode::SequenceExpansion,
            1 => LawMode::Contingency,
            2 => LawMode::MultiRound,
            _ => return None,
        })
    }
}

impl std::fmt::Display for LawMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LawMode::SequenceExpansion => "sequence",
            LawMode::Contingency => "contingency",
            LawMode::MultiRound => "multiround",
        })
    }
}

/// Maximal collision-free segments chained into one [`MultiRoundLaw`]
/// episode. Segment lengths shrink as the used urn grows (the continuation
/// law conditions on every agent touched since `begin`), so chaining far
/// past this point buys little bulk for full per-segment sampling cost.
pub(crate) const MULTI_ROUND_SEGMENTS: u32 = 6;

/// A contingency segment falls back to sequence expansion when the table
/// could cost more than this many conditional draws per bulk interaction —
/// past that, the `Θ(bulk)` shuffle it replaces is the cheaper structure.
pub(crate) const CELL_FALLBACK_FACTOR: u64 = 1;

/// Rows with margins below this cutoff are drawn as sequential weighted
/// picks (one `O(support)` scan each) instead of a full conditional
/// hypergeometric sweep across every column — same law, fewer draws for
/// the long tail of near-empty rows.
const ROW_WEIGHTED_CUTOFF: u64 = 4;

// ---------------------------------------------------------------------------
// Descending-count order maintenance (shared by the batch scratch, the
// scalar engine's state compaction, and the wide engine's lane/global
// compaction).
// ---------------------------------------------------------------------------

/// The canonical visiting order of the engines: the total order
/// `(count desc, id asc)`. A pure function of the counts, so *how* a list
/// is brought into it can never change a draw or a compacted layout.
#[inline]
pub(crate) fn descending_key(count: u64, id: u32) -> (Reverse<u64>, u32) {
    (Reverse(count), id)
}

/// Sorts `ids` into [`descending_key`] order from scratch.
pub(crate) fn sort_descending(ids: &mut [u32], key: impl Fn(u32) -> u64) {
    ids.sort_unstable_by_key(|&id| descending_key(key(id), id));
}

/// Repairs an almost-sorted `ids` into [`descending_key`] order by
/// insertion sort — `O(len + displacements)`, the hot-path variant for
/// orders carried over between consecutive rounds. Produces exactly the
/// permutation [`sort_descending`] would (the key is a total order), which
/// the permutation-identity regression test pins.
pub(crate) fn repair_descending(ids: &mut [u32], key: impl Fn(u32) -> u64) {
    for i in 1..ids.len() {
        let id = ids[i];
        let k = descending_key(key(id), id);
        let mut j = i;
        while j > 0 {
            let prev = ids[j - 1];
            if descending_key(key(prev), prev) <= k {
                break;
            }
            ids[j] = prev;
            j -= 1;
        }
        ids[j] = id;
    }
}

// ---------------------------------------------------------------------------
// Run-length inversion.
// ---------------------------------------------------------------------------

/// Samples the length of the maximal collision-free interaction prefix,
/// capped at `budget`: returns `(min(L, budget), L < budget)` where the
/// flag says a collision interaction terminates the run inside the budget.
///
/// Exact single-uniform inversion of `P(L ≥ m) = Π_{j<m}
/// (n−used−2j)(n−used−2j−1) / (n(n−1))`, the continuation law of a round
/// already in progress: `used` agents have interacted since the urns were
/// seeded, and each successive interaction must avoid every one of them,
/// not just this segment's. The product is accumulated incrementally, so
/// the cost is `O(min(L, budget))` multiplications.
///
/// With `used = 0` this is bit-identical to the original fresh-round
/// sampler (same uniform, same f64 product sequence), and the first step
/// is always collision-free (`P(L ≥ 1) = 1`), so the returned length is at
/// least 1 for any positive budget. With `used > 0` the first step can
/// already collide, so the returned length may be 0.
pub(crate) fn collision_free_prefix_from<R: Rng64 + ?Sized>(
    rng: &mut R,
    n: u64,
    used: u64,
    budget: u64,
) -> (u64, bool) {
    debug_assert!(n >= 2 && budget >= 1 && used <= n);
    let u = rng.unit_f64();
    invert_prefix(u, n, used, budget)
}

/// The deterministic inversion behind [`collision_free_prefix_from`]:
/// walks the survival product for the single uniform `u`. Split out so the
/// wide engine's law-only mode can draw *one* uniform for the whole lane
/// set and invert it against each lane's budget.
///
/// The product multiplies factors in `[0, 1]`, so it is monotone
/// non-increasing even in f64, and it reaches exact `0.0` once the fresh
/// urn drops below 2 agents — the loop terminates for any `u`, including
/// `u = 0`, after at most `(n − used)/2 + 1` steps.
pub(crate) fn invert_prefix(u: f64, n: u64, used: u64, budget: u64) -> (u64, bool) {
    let denom = n as f64 * (n - 1) as f64;
    let mut survive = 1.0f64;
    let mut m = 0u64;
    loop {
        if m == budget {
            return (budget, false);
        }
        let fresh = (n - used).saturating_sub(2 * m);
        let step = if fresh >= 2 {
            fresh as f64 * (fresh - 1) as f64 / denom
        } else {
            0.0
        };
        survive *= step;
        if u >= survive {
            // The first m steps are collision-free; step m+1 collides.
            return (m, true);
        }
        m += 1;
    }
}

// ---------------------------------------------------------------------------
// Urn scratch.
// ---------------------------------------------------------------------------

/// Reusable per-round urn state: the **fresh** urn (agents untouched this
/// round, initialized from the engine counts) and the **used** urn (agents
/// that already interacted this round, holding their *post*-transition
/// states), plus the expansion buffers of the initiator/responder
/// sequences and the margin/cell buffers of the contingency law.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchScratch {
    /// Per-state counts of untouched agents.
    pub fresh: Vec<u64>,
    /// Per-state counts of agents already used this round.
    pub used: Vec<u64>,
    pub fresh_total: u64,
    pub used_total: u64,
    /// Occupied state ids in descending-count order (the decomposition
    /// visiting order; any pre-round-measurable order is law-correct, and
    /// largest-first exhausts the draws soonest).
    order: Vec<u32>,
    /// Initiator state sequence of the round (expanded multiset).
    pub init_seq: Vec<u32>,
    /// Responder state sequence of the round (expanded multiset).
    pub resp_seq: Vec<u32>,
    /// Initiator margins `(state, count)` of a contingency segment, in
    /// visiting order.
    pub init_margin: Vec<(u32, u64)>,
    /// Responder margins `(state, count)` of a contingency segment.
    pub resp_margin: Vec<(u32, u64)>,
    /// Remaining responder margins while cells are drawn (parallel to
    /// `resp_margin`).
    resp_rem: Vec<u64>,
    /// Contingency cells `(initiator, responder, multiplicity)`.
    pub cells: Vec<(u32, u32, u64)>,
}

impl BatchScratch {
    /// Resets the urns for a new round over the given per-state counts.
    ///
    /// The visiting order is the total order `(count desc, id asc)` — a
    /// pure function of the counts, so *how* it is sorted can never change
    /// a draw. Counts move little between consecutive rounds, which makes
    /// the previous round's order an almost-sorted starting point:
    /// carrying it over and repairing with insertion sort (`O(classes +
    /// displacements)`) replaces the full re-sort on the hot path.
    pub(crate) fn begin(&mut self, counts: &[u64]) {
        self.fresh.clear();
        self.fresh.extend_from_slice(counts);
        self.used.clear();
        self.used.resize(counts.len(), 0);
        self.fresh_total = counts.iter().sum();
        self.used_total = 0;
        // Rebuild the candidate list seeded by the previous order: retain
        // its still-occupied ids, then append newly occupied ids (tracked
        // via the used urn, zeroed above, as a scratch membership flag).
        for &id in &self.order {
            if let Some(f) = self.used.get_mut(id as usize) {
                *f = 1;
            }
        }
        {
            let fresh = &self.fresh;
            self.order
                .retain(|&id| fresh.get(id as usize).copied().unwrap_or(0) > 0);
        }
        for (id, &c) in counts.iter().enumerate() {
            if c > 0 && self.used[id] == 0 {
                self.order.push(id as u32);
            }
        }
        self.used[..counts.len()].fill(0);
        let fresh = &self.fresh;
        repair_descending(&mut self.order, |id| fresh[id as usize]);
        self.init_seq.clear();
        self.resp_seq.clear();
        self.cells.clear();
    }

    /// Grows the urns after mid-round interning of fresh states.
    pub(crate) fn ensure_states(&mut self, states: usize) {
        if self.fresh.len() < states {
            self.fresh.resize(states, 0);
            self.used.resize(states, 0);
        }
    }

    /// Draws a `draws`-element multiset from the fresh urn (without
    /// replacement) by conditional hypergeometric decomposition, appending
    /// the expanded state sequence to `init_seq` or `resp_seq` and removing
    /// the drawn agents from the urn.
    pub(crate) fn draw_multiset<R: Rng64 + ?Sized>(
        &mut self,
        rng: &mut R,
        draws: u64,
        responders: bool,
    ) {
        debug_assert!(draws <= self.fresh_total);
        let seq = if responders {
            &mut self.resp_seq
        } else {
            &mut self.init_seq
        };
        let mut remaining = draws;
        // Classes not yet visited form the conditioning population.
        let mut pop = self.fresh_total;
        for &id in &self.order {
            if remaining == 0 {
                break;
            }
            let c = self.fresh[id as usize];
            if c == 0 {
                pop -= c;
                continue;
            }
            let x = if pop == c {
                remaining
            } else {
                Hypergeometric::new(pop, c, remaining)
                    .expect("class within remaining population")
                    .sample(rng)
            };
            // Run-length fill (no RNG involved; only the expansion speed).
            seq.resize(seq.len() + x as usize, id);
            self.fresh[id as usize] -= x;
            remaining -= x;
            pop -= c;
        }
        debug_assert_eq!(remaining, 0, "classes must exhaust the draws");
        self.fresh_total -= draws;
    }

    /// Draws a `draws`-element multiset from the fresh urn like
    /// [`draw_multiset`](Self::draw_multiset) — same decomposition, same
    /// law — but records it sparsely as `(state, count)` margins instead
    /// of expanding it, removing the drawn agents from the urn. The
    /// contingency law's entry point: margins feed
    /// [`draw_cells`](Self::draw_cells) or, on fallback, expand via
    /// [`expand_margins`](Self::expand_margins).
    pub(crate) fn draw_margins<R: Rng64 + ?Sized>(
        &mut self,
        rng: &mut R,
        draws: u64,
        responders: bool,
    ) {
        debug_assert!(draws <= self.fresh_total);
        let margin = if responders {
            &mut self.resp_margin
        } else {
            &mut self.init_margin
        };
        margin.clear();
        let mut remaining = draws;
        let mut pop = self.fresh_total;
        for &id in &self.order {
            if remaining == 0 {
                break;
            }
            let c = self.fresh[id as usize];
            if c == 0 {
                continue;
            }
            let x = if pop == c {
                remaining
            } else {
                Hypergeometric::new(pop, c, remaining)
                    .expect("class within remaining population")
                    .sample(rng)
            };
            if x > 0 {
                margin.push((id, x));
                self.fresh[id as usize] -= x;
                remaining -= x;
            }
            pop -= c;
        }
        debug_assert_eq!(remaining, 0, "classes must exhaust the draws");
        self.fresh_total -= draws;
    }

    /// Expands the margin lists of the current segment into `init_seq` /
    /// `resp_seq` (run-length, visiting order) — the fallback from a
    /// too-large contingency table back to the sequence representation.
    /// The caller still owes the responder shuffle.
    pub(crate) fn expand_margins(&mut self) {
        self.init_seq.clear();
        for &(id, c) in &self.init_margin {
            self.init_seq.resize(self.init_seq.len() + c as usize, id);
        }
        self.resp_seq.clear();
        for &(id, c) in &self.resp_margin {
            self.resp_seq.resize(self.resp_seq.len() + c as usize, id);
        }
    }

    /// Pairs the drawn margins into per-ordered-pair multiplicities
    /// (`cells`) by the row-conditional decomposition of the uniform
    /// matching — the engine-side twin of [`pp_rand::contingency_table`],
    /// drawing row `i` as a conditional multivariate hypergeometric over
    /// the remaining responder margins. Near-empty rows (margin below
    /// [`ROW_WEIGHTED_CUTOFF`]) are drawn as sequential weighted picks
    /// instead — same law, `O(margin)` draws instead of `O(columns)`.
    ///
    /// Returns the number of sampler invocations (the
    /// `contingency_draws` stat).
    pub(crate) fn draw_cells<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> u64 {
        self.cells.clear();
        self.resp_rem.clear();
        self.resp_rem
            .extend(self.resp_margin.iter().map(|&(_, c)| c));
        let mut pool: u64 = self.resp_rem.iter().sum();
        let mut draws = 0u64;
        for &(s, row) in &self.init_margin {
            if row < ROW_WEIGHTED_CUTOFF && self.resp_margin.len() > 1 {
                // Match the row's few agents one at a time: each partner is
                // uniform over the remaining responder pool.
                for _ in 0..row {
                    draws += 1;
                    let mut target = rng.below(pool);
                    let j = self
                        .resp_rem
                        .iter()
                        .position(|&c| {
                            if target < c {
                                true
                            } else {
                                target -= c;
                                false
                            }
                        })
                        .expect("target below the pool total");
                    self.resp_rem[j] -= 1;
                    pool -= 1;
                    let t = self.resp_margin[j].0;
                    match self.cells.last_mut() {
                        Some(cell) if cell.0 == s && cell.1 == t => cell.2 += 1,
                        _ => self.cells.push((s, t, 1)),
                    }
                }
                continue;
            }
            let mut remaining = row;
            let mut sub_pool = pool;
            for j in 0..self.resp_rem.len() {
                if remaining == 0 {
                    break;
                }
                let c = self.resp_rem[j];
                if c == 0 {
                    continue;
                }
                let x = if sub_pool == c {
                    remaining
                } else {
                    draws += 1;
                    Hypergeometric::new(sub_pool, c, remaining)
                        .expect("column margin within remaining pool")
                        .sample(rng)
                };
                if x > 0 {
                    self.cells.push((s, self.resp_margin[j].0, x));
                    self.resp_rem[j] -= x;
                    remaining -= x;
                }
                sub_pool -= c;
            }
            debug_assert_eq!(remaining, 0, "row margin must be exhausted");
            pool -= row;
        }
        draws
    }

    /// Draws one agent's state from the fresh or used urn (uniformly over
    /// the urn's agents) and removes it. `O(live support)` scan — collision
    /// handling only, never on the bulk path.
    pub(crate) fn draw_one<R: Rng64 + ?Sized>(&mut self, rng: &mut R, from_used: bool) -> usize {
        let (urn, total) = if from_used {
            (&mut self.used, &mut self.used_total)
        } else {
            (&mut self.fresh, &mut self.fresh_total)
        };
        debug_assert!(*total > 0);
        let mut target = rng.below(*total);
        for (id, c) in urn.iter_mut().enumerate() {
            if target < *c {
                *c -= 1;
                *total -= 1;
                return id;
            }
            target -= *c;
        }
        unreachable!("target below the urn total");
    }

    /// Adds one agent in state `id` to the used urn.
    pub(crate) fn add_used(&mut self, id: usize) {
        self.used[id] += 1;
        self.used_total += 1;
    }

    /// Adds `k` agents in state `id` to the used urn at once — the bulk
    /// apply of contingency cells and the wide engine's
    /// category-deduplicated rounds (`k` identical interactions collapse to
    /// one cache lookup and one urn update).
    pub(crate) fn add_used_n(&mut self, id: usize, k: u64) {
        self.used[id] += k;
        self.used_total += k;
    }

    /// Returns one reserved-but-unexecuted agent to the fresh urn (exact
    /// walks that hit convergence mid-round put the tail draws back).
    pub(crate) fn return_fresh(&mut self, id: usize) {
        self.fresh[id] += 1;
        self.fresh_total += 1;
    }
}

// ---------------------------------------------------------------------------
// Laws.
// ---------------------------------------------------------------------------

/// How a segment's interaction structure is represented for the apply
/// loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentDraw {
    /// `init_seq[i]` interacts with `resp_seq[i]`, in order — required by
    /// exact walks, which need a uniformly interleaved sequence.
    Sequences,
    /// `cells` holds `(initiator, responder, multiplicity)` aggregates;
    /// order-free bulk apply.
    Cells,
}

/// One law for drawing a collision-free segment's interaction structure
/// out of the fresh urn. The host (`CountSimulation::batch_episode` and
/// the wide engine's law-only rounds) owns everything else: run lengths,
/// the apply loop, collision resolution, urn merging.
///
/// Contract: `draw_segment` removes exactly `2·bulk` agents from the fresh
/// urn and returns the representation it filled. With `walk` set the host
/// needs a uniformly interleaved pair *sequence* (both sides shuffled), so
/// every law must return [`SegmentDraw::Sequences`] there.
pub(crate) trait RoundLaw {
    /// Maximal collision-free segments one episode chains through.
    const SEGMENTS: u32;

    /// Draws one segment's structure. See the trait docs for the
    /// contract.
    fn draw_segment<R: Rng64>(
        scratch: &mut BatchScratch,
        rng: &mut R,
        bulk: u64,
        walk: bool,
        stats: &mut BatchStats,
    ) -> SegmentDraw;
}

/// The bit-identical default law (see the module docs).
pub(crate) struct SequenceExpansionLaw;

impl RoundLaw for SequenceExpansionLaw {
    const SEGMENTS: u32 = 1;

    fn draw_segment<R: Rng64>(
        scratch: &mut BatchScratch,
        rng: &mut R,
        bulk: u64,
        walk: bool,
        _stats: &mut BatchStats,
    ) -> SegmentDraw {
        scratch.init_seq.clear();
        scratch.resp_seq.clear();
        scratch.draw_multiset(rng, bulk, false);
        scratch.draw_multiset(rng, bulk, true);
        // Pairing: a uniformly permuted responder sequence against the
        // initiators realizes the uniformly random matching.
        rng.shuffle(&mut scratch.resp_seq);
        if walk {
            // Both sequences uniformly permuted makes the round's pair
            // sequence a uniformly random interleaving — the conditional
            // law of the true process given the drawn multisets.
            rng.shuffle(&mut scratch.init_seq);
        }
        SegmentDraw::Sequences
    }
}

/// The shuffle-free contingency law (see the module docs).
pub(crate) struct ContingencyLaw;

impl RoundLaw for ContingencyLaw {
    const SEGMENTS: u32 = 1;

    fn draw_segment<R: Rng64>(
        scratch: &mut BatchScratch,
        rng: &mut R,
        bulk: u64,
        walk: bool,
        stats: &mut BatchStats,
    ) -> SegmentDraw {
        if walk {
            // Exact walks need an ordered interleaving; the table holds
            // only aggregates.
            return SequenceExpansionLaw::draw_segment(scratch, rng, bulk, walk, stats);
        }
        scratch.draw_margins(rng, bulk, false);
        scratch.draw_margins(rng, bulk, true);
        let table = scratch.init_margin.len() as u64 * scratch.resp_margin.len() as u64;
        if table > CELL_FALLBACK_FACTOR * bulk {
            // The table would cost more conditional draws than the shuffle
            // it replaces: expand the margins back out and pair by
            // permutation instead.
            scratch.expand_margins();
            rng.shuffle(&mut scratch.resp_seq);
            return SegmentDraw::Sequences;
        }
        let draws = scratch.draw_cells(rng);
        stats.contingency_draws += draws;
        stats.shuffle_skips += 1;
        SegmentDraw::Cells
    }
}

/// The multi-segment episode law (see the module docs).
pub(crate) struct MultiRoundLaw;

impl RoundLaw for MultiRoundLaw {
    const SEGMENTS: u32 = MULTI_ROUND_SEGMENTS;

    fn draw_segment<R: Rng64>(
        scratch: &mut BatchScratch,
        rng: &mut R,
        bulk: u64,
        walk: bool,
        stats: &mut BatchStats,
    ) -> SegmentDraw {
        ContingencyLaw::draw_segment(scratch, rng, bulk, walk, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rand::Xoshiro256PlusPlus;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn prefix_always_at_least_one_step() {
        let mut r = rng(1);
        for n in [2u64, 3, 10, 1 << 20] {
            for budget in [1u64, 5, 1000] {
                let (len, collide) = collision_free_prefix_from(&mut r, n, 0, budget);
                assert!((1..=budget).contains(&len), "n={n} budget={budget}: {len}");
                if collide {
                    assert!(len < budget);
                }
            }
        }
    }

    #[test]
    fn prefix_never_exceeds_half_the_population() {
        // With all agents used a collision is certain: L ≤ n/2.
        let mut r = rng(2);
        for _ in 0..500 {
            let (len, collide) = collision_free_prefix_from(&mut r, 10, 0, 1000);
            assert!(len <= 5);
            assert!(collide);
        }
    }

    #[test]
    fn prefix_law_matches_brute_force_at_n4() {
        // P(L ≥ 2) = (2·1)/(4·3) = 1/6; budget 2 makes len ∈ {1, 2}.
        let mut r = rng(3);
        let runs = 200_000;
        let mut two = 0u64;
        for _ in 0..runs {
            let (len, _) = collision_free_prefix_from(&mut r, 4, 0, 2);
            if len == 2 {
                two += 1;
            }
        }
        let p = two as f64 / runs as f64;
        assert!((p - 1.0 / 6.0).abs() < 0.005, "P(L >= 2) = {p}");
    }

    #[test]
    fn prefix_mean_matches_birthday_bound() {
        let n = 1u64 << 16;
        let mut r = rng(4);
        let runs = 2000;
        let total: u64 = (0..runs)
            .map(|_| collision_free_prefix_from(&mut r, n, 0, u64::MAX).0)
            .sum();
        let mean = total as f64 / runs as f64;
        let expect = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
        assert!(
            (mean / expect - 1.0).abs() < 0.1,
            "mean {mean} vs birthday {expect}"
        );
    }

    #[test]
    fn continuation_prefix_law_matches_closed_form() {
        // With u0 agents already used, P(L ≥ 1) = (n−u0)(n−u0−1)/(n(n−1)).
        // n = 6, u0 = 2: P(L ≥ 1) = 4·3/30 = 2/5.
        let mut r = rng(5);
        let runs = 200_000;
        let mut at_least_one = 0u64;
        for _ in 0..runs {
            let (len, collide) = collision_free_prefix_from(&mut r, 6, 2, 10);
            assert!(len <= 2, "4 fresh agents cap the run at 2");
            assert!(collide);
            if len >= 1 {
                at_least_one += 1;
            }
        }
        let p = at_least_one as f64 / runs as f64;
        assert!((p - 0.4).abs() < 0.005, "P(L >= 1 | u0=2) = {p}");
    }

    #[test]
    fn continuation_prefix_can_return_zero_and_respects_fresh_cap() {
        let mut r = rng(6);
        let n = 1u64 << 10;
        let used = n - 4;
        let mut zeros = 0;
        for _ in 0..200 {
            let (len, collide) = collision_free_prefix_from(&mut r, n, used, 100);
            assert!(len <= 2, "only 4 fresh agents remain");
            assert!(collide);
            zeros += u64::from(len == 0);
        }
        // P(L = 0) = 1 − 4·3/(n(n−1)) ≈ 1: effectively every draw is 0.
        assert!(zeros >= 199, "{zeros}");
    }

    /// The PR 3 `Geometric` `ln_1p` bug class: f64 accumulation in the
    /// inversion loop silently truncating run lengths at huge `n`. Pin the
    /// linear-product inversion against an independent log-space inversion
    /// at n ≥ 2^30, at crafted uniforms near both ends of the scale and
    /// near the fresh-urn boundary.
    #[test]
    fn prefix_inversion_matches_log_space_at_huge_n() {
        let n: u64 = 1 << 30;
        // Uniforms span the full range `unit_f64` can produce (granularity
        // 2^-53; smaller values never occur, so the subnormal product tail
        // is outside the sampler's contract).
        for &(used, u) in &[
            (0u64, 1.0 - f64::EPSILON), // earliest representable stop
            (0, 0.5),                   // the median
            (0, 1e-9),                  // deep tail
            (0, f64::powi(2.0, -53)),   // the smallest nonzero uniform
            (n - (1 << 16), 0.5),       // near the fresh-urn boundary
            ((1 << 20) - 2, 1e-6),      // heavy continuation conditioning
        ] {
            let (m_lin, collide) = invert_prefix(u, n, used, u64::MAX);
            assert!(collide);
            // Independent inversion: accumulate ln(step) via ln_1p of the
            // per-step deficit, stopping where the log-survival crosses
            // ln(u). The two walks may disagree only where rounding moves
            // the crossing by a step or two — never by the orders of
            // magnitude an underflow truncation (the bug class) causes.
            let ln_u = u.ln();
            let denom = (n as f64).ln() + ((n - 1) as f64).ln();
            let mut log_survive = 0.0f64;
            let mut m_log = 0u64;
            loop {
                let fresh = (n - used).saturating_sub(2 * m_log);
                if fresh < 2 {
                    break;
                }
                log_survive += (fresh as f64).ln() + ((fresh - 1) as f64).ln() - denom;
                if ln_u >= log_survive {
                    break;
                }
                m_log += 1;
            }
            let tol = 2.0 + m_log as f64 * 1e-6;
            assert!(
                (m_lin as f64 - m_log as f64).abs() <= tol,
                "n={n} used={used} u={u:e}: linear {m_lin} vs log-space {m_log}"
            );
        }
    }

    #[test]
    fn prefix_mean_matches_birthday_bound_at_2_30() {
        // The satellite regression regime: n = 2^30, where each survival
        // factor is within 4e-9 of 1 and the product crosses u only after
        // ~20k steps of accumulated rounding.
        let n = 1u64 << 30;
        let mut r = rng(7);
        let runs = 60;
        let total: u64 = (0..runs)
            .map(|_| collision_free_prefix_from(&mut r, n, 0, u64::MAX).0)
            .sum();
        let mean = total as f64 / runs as f64;
        let expect = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
        // σ/√runs ≈ 0.52·E/√60 ≈ 0.07·E: a 3σ-ish window.
        assert!(
            (mean / expect - 1.0).abs() < 0.2,
            "mean {mean} vs birthday {expect}"
        );
    }

    #[test]
    fn repair_matches_full_sort_permutation_identity() {
        // The satellite regression: the insertion repair and the full sort
        // must produce the identical permutation for any key assignment —
        // including heavy duplicate counts, where only the id tiebreak
        // orders entries.
        let mut r = rng(8);
        for trial in 0..200 {
            let len = 1 + (trial % 50) as usize;
            let counts: Vec<u64> = (0..len as u64).map(|_| r.below(6)).collect();
            let mut ids: Vec<u32> = (0..len as u32).collect();
            // Random starting permutation via Fisher–Yates.
            r.shuffle(&mut ids);
            let mut repaired = ids.clone();
            repair_descending(&mut repaired, |id| counts[id as usize]);
            let mut sorted = ids.clone();
            sort_descending(&mut sorted, |id| counts[id as usize]);
            assert_eq!(repaired, sorted, "trial {trial}: counts {counts:?}");
            // Idempotence: repairing sorted input is a no-op.
            let again = repaired.clone();
            repair_descending(&mut repaired, |id| counts[id as usize]);
            assert_eq!(repaired, again);
        }
    }

    #[test]
    fn multiset_draws_partition_the_round() {
        let counts = [100u64, 50, 0, 25];
        let mut s = BatchScratch::default();
        let mut r = rng(9);
        for _ in 0..200 {
            s.begin(&counts);
            s.draw_multiset(&mut r, 40, false);
            s.draw_multiset(&mut r, 40, true);
            assert_eq!(s.init_seq.len(), 40);
            assert_eq!(s.resp_seq.len(), 40);
            assert_eq!(s.fresh_total, 175 - 80);
            // Drawn + remaining reconstruct the original counts.
            let mut back = s.fresh.clone();
            for &id in s.init_seq.iter().chain(&s.resp_seq) {
                back[id as usize] += 1;
            }
            assert_eq!(&back[..], &counts[..]);
            assert!(s.init_seq.iter().all(|&id| id != 2), "empty class drawn");
        }
    }

    #[test]
    fn draw_one_moves_between_urns() {
        let mut s = BatchScratch::default();
        s.begin(&[3, 2]);
        let mut r = rng(10);
        s.draw_multiset(&mut r, 2, false);
        s.add_used(0);
        s.add_used(1);
        assert_eq!(s.used_total, 2);
        assert_eq!(s.fresh_total, 3);
        let id = s.draw_one(&mut r, true);
        assert!(id < 2);
        assert_eq!(s.used_total, 1);
        let id = s.draw_one(&mut r, false);
        assert!(id < 2);
        assert_eq!(s.fresh_total, 2);
        s.return_fresh(id);
        assert_eq!(s.fresh_total, 3);
    }

    #[test]
    fn draw_multiset_matches_reference_decomposition_draw_for_draw() {
        // `draw_multiset` inlines (order-optimized) the conditional
        // decomposition that `pp_rand::multivariate_hypergeometric` is the
        // reference implementation of. With counts already in descending
        // order the visiting orders coincide, so the same RNG stream must
        // produce the exact same per-class counts — pinning the two
        // implementations against drifting apart.
        use pp_rand::multivariate_hypergeometric;
        let counts = [500u64, 300, 200, 200, 7, 1, 0];
        let mut s = BatchScratch::default();
        for seed in 0..50 {
            let mut r1 = rng(seed);
            let mut r2 = rng(seed);
            let draws = 1 + (seed % 200);
            s.begin(&counts);
            s.draw_multiset(&mut r1, draws, false);
            let mut drawn = vec![0u64; counts.len()];
            for &id in &s.init_seq {
                drawn[id as usize] += 1;
            }
            let mut reference = vec![0u64; counts.len()];
            multivariate_hypergeometric(&mut r2, &counts, draws, &mut reference);
            assert_eq!(drawn, reference, "seed {seed}");
        }
    }

    #[test]
    fn multiset_marginals_match_hypergeometric_means() {
        let counts = [500u64, 300, 200];
        let draws = 100u64;
        let mut s = BatchScratch::default();
        let mut r = rng(11);
        let runs = 5000;
        let mut sums = [0u64; 3];
        for _ in 0..runs {
            s.begin(&counts);
            s.draw_multiset(&mut r, draws, false);
            for &id in &s.init_seq {
                sums[id as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = runs as f64 * draws as f64 * c as f64 / 1000.0;
            let got = sums[i] as f64;
            assert!(
                (got / expect - 1.0).abs() < 0.05,
                "class {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn margins_match_multiset_law() {
        // draw_margins is draw_multiset without the expansion: same
        // decomposition, same stream, so identical per-class counts.
        let counts = [500u64, 300, 200, 200, 7, 1, 0];
        let mut s1 = BatchScratch::default();
        let mut s2 = BatchScratch::default();
        for seed in 0..50 {
            let mut r1 = rng(seed);
            let mut r2 = rng(seed);
            let draws = 1 + (seed % 200);
            s1.begin(&counts);
            s1.draw_multiset(&mut r1, draws, false);
            s2.begin(&counts);
            s2.draw_margins(&mut r2, draws, false);
            let mut expanded = vec![0u64; counts.len()];
            for &id in &s1.init_seq {
                expanded[id as usize] += 1;
            }
            let mut sparse = vec![0u64; counts.len()];
            for &(id, c) in &s2.init_margin {
                sparse[id as usize] += c;
            }
            assert_eq!(expanded, sparse, "seed {seed}");
            assert_eq!(s1.fresh, s2.fresh, "seed {seed}: urns diverged");
        }
    }

    #[test]
    fn cells_preserve_margins_and_partition_the_round() {
        let counts = [400u64, 250, 100, 40, 3];
        let mut s = BatchScratch::default();
        let mut r = rng(12);
        let mut stats = BatchStats::default();
        for trial in 0..300 {
            s.begin(&counts);
            let bulk = 20 + (trial % 150);
            let draw = ContingencyLaw::draw_segment(&mut s, &mut r, bulk, false, &mut stats);
            let (mut init, mut resp) = (vec![0u64; 5], vec![0u64; 5]);
            match draw {
                SegmentDraw::Cells => {
                    for &(a, b, c) in &s.cells {
                        init[a as usize] += c;
                        resp[b as usize] += c;
                    }
                }
                SegmentDraw::Sequences => {
                    for &id in &s.init_seq {
                        init[id as usize] += 1;
                    }
                    for &id in &s.resp_seq {
                        resp[id as usize] += 1;
                    }
                }
            }
            assert_eq!(init.iter().sum::<u64>(), bulk, "trial {trial}");
            assert_eq!(resp.iter().sum::<u64>(), bulk, "trial {trial}");
            // Drawn + remaining fresh reconstruct the original counts.
            for id in 0..5 {
                assert_eq!(
                    s.fresh[id] + init[id] + resp[id],
                    counts[id],
                    "trial {trial} class {id}"
                );
            }
            assert_eq!(s.fresh_total + 2 * bulk, counts.iter().sum::<u64>());
        }
        assert!(stats.shuffle_skips > 0, "cells path never engaged");
    }

    #[test]
    fn cells_match_contingency_table_law_on_corner_cell() {
        // Two classes, counts [6, 4]; draw 5 initiators + 5 responders and
        // pin P(cell(0,0) = k) against pp_rand::contingency_table on the
        // same margins, accumulated over the margin randomness: both
        // decompositions must agree in distribution because they sample
        // the same uniform-matching law.
        let counts = [6u64, 4];
        let mut s = BatchScratch::default();
        let mut r1 = rng(13);
        let mut r2 = rng(14);
        let mut stats = BatchStats::default();
        let runs = 60_000;
        let mut engine_hist = [0u64; 6];
        let mut reference_hist = [0u64; 6];
        for _ in 0..runs {
            s.begin(&counts);
            let draw = ContingencyLaw::draw_segment(&mut s, &mut r1, 5, false, &mut stats);
            assert_eq!(draw, SegmentDraw::Cells);
            let c00: u64 = s
                .cells
                .iter()
                .filter(|&&(a, b, _)| a == 0 && b == 0)
                .map(|&(_, _, c)| c)
                .sum();
            engine_hist[c00 as usize] += 1;

            // Reference: same margin law (two multiset draws from the urn)
            // paired by pp_rand's table sampler.
            s.begin(&counts);
            s.draw_margins(&mut r2, 5, false);
            s.draw_margins(&mut r2, 5, true);
            let mut rows = [0u64; 2];
            let mut cols = [0u64; 2];
            for &(id, c) in &s.init_margin {
                rows[id as usize] += c;
            }
            for &(id, c) in &s.resp_margin {
                cols[id as usize] += c;
            }
            let mut table = [0u64; 4];
            pp_rand::contingency_table(&mut r2, &rows, &cols, &mut table);
            reference_hist[table[0] as usize] += 1;
        }
        for k in 0..6 {
            let pe = engine_hist[k] as f64 / runs as f64;
            let pr = reference_hist[k] as f64 / runs as f64;
            assert!(
                (pe - pr).abs() < 0.01,
                "P(c00 = {k}): engine {pe} vs reference {pr}"
            );
        }
    }

    #[test]
    fn contingency_falls_back_on_wide_support() {
        // 40 distinct classes and a bulk of 30: the 1600-cell table loses
        // to the shuffle, so the law must expand instead.
        let counts: Vec<u64> = (0..40).map(|_| 50u64).collect();
        let mut s = BatchScratch::default();
        let mut r = rng(15);
        let mut stats = BatchStats::default();
        s.begin(&counts);
        let draw = ContingencyLaw::draw_segment(&mut s, &mut r, 30, false, &mut stats);
        assert_eq!(draw, SegmentDraw::Sequences);
        assert_eq!(s.init_seq.len(), 30);
        assert_eq!(s.resp_seq.len(), 30);
        assert_eq!(stats.shuffle_skips, 0);
    }

    #[test]
    fn walk_segments_always_produce_sequences() {
        let counts = [100u64, 50];
        let mut s = BatchScratch::default();
        let mut r = rng(16);
        let mut stats = BatchStats::default();
        s.begin(&counts);
        let draw = ContingencyLaw::draw_segment(&mut s, &mut r, 20, true, &mut stats);
        assert_eq!(draw, SegmentDraw::Sequences);
        assert_eq!(s.init_seq.len(), 20);
        assert_eq!(stats.shuffle_skips, 0);
    }

    #[test]
    fn law_mode_tags_round_trip() {
        for mode in [
            LawMode::SequenceExpansion,
            LawMode::Contingency,
            LawMode::MultiRound,
        ] {
            assert_eq!(LawMode::from_tag(mode.tag()), Some(mode));
        }
        assert_eq!(LawMode::from_tag(3), None);
    }
}
