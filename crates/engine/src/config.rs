//! Configurations: mappings from agents to states.

use crate::{EngineError, Interaction, LeaderElection, Protocol, Role};
use std::collections::HashMap;

/// A configuration `C : V → Q` of a population of `n` agents.
///
/// The engines ([`Simulation`](crate::Simulation),
/// [`CountSimulation`](crate::CountSimulation)) keep their own optimized
/// state storage; `Configuration` is the *semantic* representation used by
/// tests, the verifier, and experiment code that applies deterministic
/// schedules or inspects states directly.
///
/// # Example
///
/// ```
/// use pp_engine::{Configuration, Interaction, Protocol};
///
/// struct MaxProto;
/// impl Protocol for MaxProto {
///     type State = u32;
///     type Output = u32;
///     fn initial_state(&self) -> u32 { 0 }
///     fn transition(&self, a: &u32, b: &u32) -> (u32, u32) {
///         let m = *a.max(b);
///         (m, m)
///     }
///     fn output(&self, s: &u32) -> u32 { *s }
/// }
///
/// let mut c = Configuration::from_states(vec![3, 1, 2]).unwrap();
/// c.apply(&MaxProto, Interaction::new(0, 1)).unwrap();
/// assert_eq!(c.states(), &[3, 3, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration<S> {
    states: Vec<S>,
}

impl<S: Clone + Eq + std::hash::Hash + std::fmt::Debug> Configuration<S> {
    /// Creates the initial configuration `C_init,P` of `protocol` for `n`
    /// agents: every agent in the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn initial<P>(protocol: &P, n: usize) -> Result<Self, EngineError>
    where
        P: Protocol<State = S>,
    {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        Ok(Self {
            states: vec![protocol.initial_state(); n],
        })
    }

    /// Creates a configuration from explicit per-agent states.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when fewer than two states
    /// are given.
    pub fn from_states(states: Vec<S>) -> Result<Self, EngineError> {
        if states.len() < 2 {
            return Err(EngineError::PopulationTooSmall { n: states.len() });
        }
        Ok(Self { states })
    }

    /// The number of agents `n`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The per-agent states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The state of one agent.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AgentOutOfBounds`] for an invalid index.
    pub fn state(&self, agent: usize) -> Result<&S, EngineError> {
        self.states.get(agent).ok_or(EngineError::AgentOutOfBounds {
            agent,
            n: self.states.len(),
        })
    }

    /// Overwrites the state of one agent (for adversarial test setups).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AgentOutOfBounds`] for an invalid index.
    pub fn set_state(&mut self, agent: usize, state: S) -> Result<(), EngineError> {
        let n = self.states.len();
        match self.states.get_mut(agent) {
            Some(slot) => {
                *slot = state;
                Ok(())
            }
            None => Err(EngineError::AgentOutOfBounds { agent, n }),
        }
    }

    /// Applies one interaction under `protocol`: `C —e→ C'` in place.
    ///
    /// Returns `true` if either participant's state changed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AgentOutOfBounds`] or
    /// [`EngineError::SelfInteraction`] for malformed interactions.
    pub fn apply<P>(&mut self, protocol: &P, interaction: Interaction) -> Result<bool, EngineError>
    where
        P: Protocol<State = S>,
    {
        let n = self.states.len();
        let (u, v) = (interaction.initiator, interaction.responder);
        if u == v {
            return Err(EngineError::SelfInteraction { agent: u });
        }
        if u >= n {
            return Err(EngineError::AgentOutOfBounds { agent: u, n });
        }
        if v >= n {
            return Err(EngineError::AgentOutOfBounds { agent: v, n });
        }
        let (nu, nv) = protocol.transition(&self.states[u], &self.states[v]);
        let changed = nu != self.states[u] || nv != self.states[v];
        self.states[u] = nu;
        self.states[v] = nv;
        Ok(changed)
    }

    /// Applies a finite schedule in order, returning the number of
    /// interactions that changed at least one state.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`apply`](Configuration::apply).
    pub fn apply_schedule<P, I>(&mut self, protocol: &P, schedule: I) -> Result<u64, EngineError>
    where
        P: Protocol<State = S>,
        I: IntoIterator<Item = Interaction>,
    {
        let mut changed = 0;
        for step in schedule {
            if self.apply(protocol, step)? {
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Counts agents per state — the multiset view under which anonymous
    /// populations on complete graphs are exactly equivalent.
    pub fn state_counts(&self) -> HashMap<S, usize> {
        let mut counts = HashMap::new();
        for s in &self.states {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Counts agents per output symbol.
    pub fn output_counts<P>(&self, protocol: &P) -> HashMap<P::Output, usize>
    where
        P: Protocol<State = S>,
    {
        let mut counts = HashMap::new();
        for s in &self.states {
            *counts.entry(protocol.output(s)).or_insert(0) += 1;
        }
        counts
    }

    /// Counts the agents outputting [`Role::Leader`].
    pub fn leader_count<P>(&self, protocol: &P) -> usize
    where
        P: LeaderElection<State = S>,
    {
        self.states
            .iter()
            .filter(|s| protocol.output(s) == Role::Leader)
            .count()
    }

    /// Consumes the configuration, returning the state vector.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Role;

    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {}

    #[test]
    fn initial_configuration_is_uniform() {
        let c = Configuration::initial(&Frat, 5).unwrap();
        assert_eq!(c.len(), 5);
        assert!(c.states().iter().all(|&s| s));
        assert_eq!(c.leader_count(&Frat), 5);
    }

    #[test]
    fn too_small_population_rejected() {
        assert!(matches!(
            Configuration::initial(&Frat, 1),
            Err(EngineError::PopulationTooSmall { n: 1 })
        ));
        assert!(Configuration::<bool>::from_states(vec![true]).is_err());
    }

    #[test]
    fn apply_reports_change() {
        let mut c = Configuration::initial(&Frat, 3).unwrap();
        assert!(c.apply(&Frat, Interaction::new(0, 1)).unwrap());
        // (leader, follower) is now a no-op pair under Frat.
        assert!(!c.apply(&Frat, Interaction::new(0, 1)).unwrap());
        assert_eq!(c.leader_count(&Frat), 2);
    }

    #[test]
    fn apply_checks_bounds_and_self_interaction() {
        let mut c = Configuration::initial(&Frat, 3).unwrap();
        assert!(matches!(
            c.apply(
                &Frat,
                Interaction {
                    initiator: 0,
                    responder: 0
                }
            ),
            Err(EngineError::SelfInteraction { agent: 0 })
        ));
        assert!(matches!(
            c.apply(
                &Frat,
                Interaction {
                    initiator: 0,
                    responder: 9
                }
            ),
            Err(EngineError::AgentOutOfBounds { agent: 9, n: 3 })
        ));
    }

    #[test]
    fn schedule_application_counts_effective_steps() {
        let mut c = Configuration::initial(&Frat, 4).unwrap();
        let schedule = vec![
            Interaction::new(0, 1), // demotes 1
            Interaction::new(0, 1), // no-op
            Interaction::new(2, 3), // demotes 3
            Interaction::new(0, 2), // demotes 2
        ];
        let changed = c.apply_schedule(&Frat, schedule).unwrap();
        assert_eq!(changed, 3);
        assert_eq!(c.leader_count(&Frat), 1);
    }

    #[test]
    fn counts_views_agree() {
        let c = Configuration::from_states(vec![true, false, false]).unwrap();
        let sc = c.state_counts();
        assert_eq!(sc[&true], 1);
        assert_eq!(sc[&false], 2);
        let oc = c.output_counts(&Frat);
        assert_eq!(oc[&Role::Leader], 1);
        assert_eq!(oc[&Role::Follower], 2);
    }

    #[test]
    fn set_state_and_accessors() {
        let mut c = Configuration::initial(&Frat, 3).unwrap();
        c.set_state(1, false).unwrap();
        assert!(!*c.state(1).unwrap());
        assert!(c.state(7).is_err());
        assert!(c.set_state(7, true).is_err());
        assert_eq!(c.into_states(), vec![true, false, true]);
    }
}
